//! The SPARC-V9 code generator.
//!
//! Per the paper (§5.2), "the Sparc back-end produces higher quality
//! code, but requires more instructions because of the RISC
//! architecture". Quality: a use-count register assignment keeps hot
//! SSA values in the 14 callee-saved registers `%l0`–`%l7`/`%i0`–`%i5`
//! (flat registers here — no register windows, see DESIGN.md), sparing
//! the reload traffic the x86 back end generates. RISC cost: constants
//! beyond 13 bits need `sethi`/`or` pairs, address constants need
//! relocation pairs, and narrow arithmetic needs explicit shift-pair
//! normalization.
//!
//! Frame discipline: `%fp` holds the caller's stack pointer; spill
//! slots, phi staging slots, preallocated `alloca`s and the saved
//! registers live at negative `%fp` offsets; outgoing argument overflow
//! lives at `[%sp + 8j]`; incoming overflow at `[%fp + 8j]`.

use crate::common::{
    access_of, canonical_const, classify, fused_compares, inst_defining, intrinsic_target,
    use_counts, ValClass,
};
use llva_core::function::{BlockId, Function};
use llva_core::instruction::{InstId, Opcode};
use llva_core::module::{FuncId, Module};
use llva_core::types::{TypeId, TypeKind};
use llva_core::value::{Constant, ValueId};
use llva_machine::common::Sym;
use llva_machine::sparc::{
    fits_imm13, AluOp, Cond, FReg, Reg, RegOrImm, SparcInst, G0, G1, G2, G3, G4, O0, SP,
};
use std::collections::{HashMap, HashSet};

/// The frame pointer register (`%i6`).
pub const FP: Reg = Reg(30);

/// Compiles one function to SPARC code. The module must verify.
pub fn compile_sparc(module: &Module, fid: FuncId) -> Vec<SparcInst> {
    let func = module.function(fid);
    assert!(!func.is_declaration(), "cannot compile a declaration");
    let mut cg = CodeGen::new(module, func);
    cg.run();
    cg.finish()
}

/// Allocatable callee-saved registers: `%l0..%l7`, `%i0..%i5`.
const ALLOCATABLE: [Reg; 14] = [
    Reg(16),
    Reg(17),
    Reg(18),
    Reg(19),
    Reg(20),
    Reg(21),
    Reg(22),
    Reg(23),
    Reg(24),
    Reg(25),
    Reg(26),
    Reg(27),
    Reg(28),
    Reg(29),
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(Reg),
    Slot(i32), // negative offset from %fp
}

struct CodeGen<'a> {
    module: &'a Module,
    func: &'a Function,
    code: Vec<SparcInst>,
    locs: HashMap<ValueId, Loc>,
    staging: HashMap<InstId, i32>,
    alloca_home: HashMap<InstId, i32>,
    save_slots: HashMap<Reg, i32>,
    frame_size: i32,
    used_saved: Vec<Reg>,
    fused: HashSet<InstId>,
    block_starts: HashMap<BlockId, u32>,
    fixups: Vec<(usize, BlockId)>,
    bool_ty: TypeId,
    out_area: i32,
}

impl<'a> CodeGen<'a> {
    fn new(module: &'a Module, func: &'a Function) -> CodeGen<'a> {
        let bool_ty = module
            .types()
            .iter()
            .find_map(|(id, k)| matches!(k, TypeKind::Bool).then_some(id))
            .unwrap_or_else(|| TypeId::from_index((u32::MAX - 1) as usize));
        let mut cg = CodeGen {
            module,
            func,
            code: Vec::new(),
            locs: HashMap::new(),
            staging: HashMap::new(),
            alloca_home: HashMap::new(),
            save_slots: HashMap::new(),
            // fp-8 = saved old fp; saved regs and slots grow below
            frame_size: 8,
            used_saved: Vec::new(),
            fused: fused_compares(func),
            block_starts: HashMap::new(),
            fixups: Vec::new(),
            bool_ty,
            out_area: 0,
        };
        cg.assign_locations();
        cg
    }

    fn new_slot(&mut self) -> i32 {
        self.frame_size += 8;
        -self.frame_size
    }

    fn assign_locations(&mut self) {
        let counts = use_counts(self.func);
        // candidates: int-class args + int-class instruction results
        let mut candidates: Vec<(usize, ValueId)> = Vec::new();
        for &a in self.func.args() {
            if classify(self.module, self.func.value_type(a, self.bool_ty)) == ValClass::Int {
                candidates.push((counts.get(&a).copied().unwrap_or(0) + 1, a));
            }
        }
        for (_, inst_id) in self.func.inst_iter() {
            if let Some(r) = self.func.inst_result(inst_id) {
                if classify(self.module, self.func.value_type(r, self.bool_ty)) == ValClass::Int {
                    candidates.push((counts.get(&r).copied().unwrap_or(0), r));
                }
            }
        }
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for ((_, v), &reg) in candidates.iter().zip(ALLOCATABLE.iter()) {
            self.locs.insert(*v, Loc::Reg(reg));
            if !self.used_saved.contains(&reg) {
                self.used_saved.push(reg);
                let slot = self.new_slot();
                self.save_slots.insert(reg, slot);
            }
        }
        // everything else gets a slot
        for a in self.func.args().to_vec() {
            if !self.locs.contains_key(&a) {
                let s = self.new_slot();
                self.locs.insert(a, Loc::Slot(s));
            }
        }
        for (_, inst_id) in self.func.inst_iter().collect::<Vec<_>>() {
            if let Some(r) = self.func.inst_result(inst_id) {
                if !self.locs.contains_key(&r) {
                    let s = self.new_slot();
                    self.locs.insert(r, Loc::Slot(s));
                }
            }
            let inst = self.func.inst(inst_id);
            if inst.opcode() == Opcode::Phi {
                let s = self.new_slot();
                self.staging.insert(inst_id, s);
            }
            if inst.opcode() == Opcode::Alloca && inst.operands().is_empty() {
                let pointee = self
                    .module
                    .types()
                    .pointee(inst.result_type())
                    .expect("alloca yields a pointer");
                let size = self.module.target().size_of(self.module.types(), pointee);
                let size = ((size + 7) & !7) as i32;
                self.frame_size += size;
                self.alloca_home.insert(inst_id, -self.frame_size);
            }
            if matches!(inst.opcode(), Opcode::Call | Opcode::Invoke) {
                let extra = inst.operands().len().saturating_sub(1).saturating_sub(6) as i32;
                self.out_area = self.out_area.max(extra * 8);
            }
        }
    }

    fn finish(self) -> Vec<SparcInst> {
        self.code
    }

    fn vty(&self, v: ValueId) -> TypeId {
        self.func.value_type(v, self.bool_ty)
    }

    fn emit(&mut self, inst: SparcInst) {
        self.code.push(inst);
    }

    fn mov(&mut self, dst: Reg, src: Reg) {
        if dst != src {
            self.emit(SparcInst::Alu {
                op: AluOp::Or,
                rs1: src,
                rhs: RegOrImm::Imm(0),
                rd: dst,
                trapping: false,
            });
        }
    }

    /// Materializes an integer constant into `dst`.
    fn mat_const(&mut self, bits: u64, dst: Reg) {
        let v = bits as i64;
        if v == 0 {
            self.mov(dst, G0);
            return;
        }
        if fits_imm13(v) {
            self.emit(SparcInst::Alu {
                op: AluOp::Or,
                rs1: G0,
                rhs: RegOrImm::Imm(v as i16),
                rd: dst,
                trapping: false,
            });
            return;
        }
        let low32 = bits & 0xFFFF_FFFF;
        let high32 = bits >> 32;
        self.emit(SparcInst::Sethi {
            imm22: (low32 >> 10) as u32,
            rd: dst,
        });
        if low32 & 0x3FF != 0 {
            self.emit(SparcInst::Alu {
                op: AluOp::Or,
                rs1: dst,
                rhs: RegOrImm::Imm((low32 & 0x3FF) as i16),
                rd: dst,
                trapping: false,
            });
        }
        if high32 != 0 && high32 != 0xFFFF_FFFF {
            self.emit(SparcInst::Sethi {
                imm22: (high32 >> 10) as u32,
                rd: G4,
            });
            if high32 & 0x3FF != 0 {
                self.emit(SparcInst::Alu {
                    op: AluOp::Or,
                    rs1: G4,
                    rhs: RegOrImm::Imm((high32 & 0x3FF) as i16),
                    rd: G4,
                    trapping: false,
                });
            }
            self.emit(SparcInst::Alu {
                op: AluOp::Sll,
                rs1: G4,
                rhs: RegOrImm::Imm(32),
                rd: G4,
                trapping: false,
            });
            self.emit(SparcInst::Alu {
                op: AluOp::Or,
                rs1: dst,
                rhs: RegOrImm::Reg(G4),
                rd: dst,
                trapping: false,
            });
        } else if high32 == 0xFFFF_FFFF {
            self.emit(SparcInst::Alu {
                op: AluOp::Sll,
                rs1: dst,
                rhs: RegOrImm::Imm(32),
                rd: dst,
                trapping: false,
            });
            self.emit(SparcInst::Alu {
                op: AluOp::Sra,
                rs1: dst,
                rhs: RegOrImm::Imm(32),
                rd: dst,
                trapping: false,
            });
        }
    }

    /// A (base, offset) pair addressing `%fp + off`, routing wide
    /// offsets through `%g4`.
    fn fp_mem(&mut self, off: i32) -> (Reg, RegOrImm) {
        if fits_imm13(i64::from(off)) {
            (FP, RegOrImm::Imm(off as i16))
        } else {
            self.mat_const(off as i64 as u64, G4);
            (FP, RegOrImm::Reg(G4))
        }
    }

    /// Ensures `v` is in a register, loading/materializing into
    /// `scratch` when needed. Returns the register actually holding it.
    fn reg_of(&mut self, v: ValueId, scratch: Reg) -> Reg {
        if let Some(c) = self.func.value_as_const(v) {
            match c {
                Constant::GlobalAddr { global, .. } => {
                    self.emit(SparcInst::MovSym {
                        rd: scratch,
                        sym: Sym::Global(global.index() as u32),
                    });
                }
                Constant::FunctionAddr { func, .. } => {
                    self.emit(SparcInst::MovSym {
                        rd: scratch,
                        sym: Sym::Function(func.index() as u32),
                    });
                }
                _ => {
                    let bits = canonical_const(self.module, c);
                    if bits == 0 {
                        return G0;
                    }
                    self.mat_const(bits, scratch);
                }
            }
            return scratch;
        }
        match self.locs[&v] {
            Loc::Reg(r) => r,
            Loc::Slot(off) => {
                let (base, o) = self.fp_mem(off);
                self.emit(SparcInst::Ld {
                    rd: scratch,
                    rs1: base,
                    off: o,
                    width: llva_machine::Width::B8,
                    signed: false,
                });
                scratch
            }
        }
    }

    /// The second-operand form: a 13-bit immediate when possible.
    fn rhs_of(&mut self, v: ValueId, scratch: Reg) -> RegOrImm {
        if let Some(c) = self.func.value_as_const(v) {
            if !matches!(
                c,
                Constant::GlobalAddr { .. } | Constant::FunctionAddr { .. }
            ) {
                let bits = canonical_const(self.module, c) as i64;
                if fits_imm13(bits) {
                    return RegOrImm::Imm(bits as i16);
                }
            }
        }
        RegOrImm::Reg(self.reg_of(v, scratch))
    }

    /// Where to compute a result: directly into its home register, or
    /// into `scratch` followed by a store.
    fn dst_of(&mut self, inst: InstId, scratch: Reg) -> (Reg, Option<i32>) {
        let v = self.func.inst_result(inst).expect("has result");
        match self.locs[&v] {
            Loc::Reg(r) => (r, None),
            Loc::Slot(off) => (scratch, Some(off)),
        }
    }

    fn finish_dst(&mut self, reg: Reg, spill: Option<i32>) {
        if let Some(off) = spill {
            let (base, o) = self.fp_mem(off);
            self.emit(SparcInst::St {
                rs: reg,
                rs1: base,
                off: o,
                width: llva_machine::Width::B8,
            });
        }
    }

    /// Loads a float value into `f`.
    fn freg_of(&mut self, v: ValueId, f: FReg) {
        if let Some(c) = self.func.value_as_const(v) {
            let bits = canonical_const(self.module, c);
            self.mat_const(bits, G1);
            self.emit(SparcInst::MovFG(f, G1));
            return;
        }
        match self.locs[&v] {
            Loc::Reg(r) => self.emit(SparcInst::MovFG(f, r)),
            Loc::Slot(off) => {
                let (base, o) = self.fp_mem(off);
                self.emit(SparcInst::LdF {
                    fd: f,
                    rs1: base,
                    off: o,
                    is32: false,
                });
            }
        }
    }

    fn fstore_result(&mut self, inst: InstId, f: FReg) {
        let v = self.func.inst_result(inst).expect("has result");
        match self.locs[&v] {
            Loc::Reg(r) => self.emit(SparcInst::MovGF(r, f)),
            Loc::Slot(off) => {
                let (base, o) = self.fp_mem(off);
                self.emit(SparcInst::StF {
                    fs: f,
                    rs1: base,
                    off: o,
                    is32: false,
                });
            }
        }
    }

    /// Normalizes `r` to the canonical form of a narrow integer type
    /// using a shift pair.
    fn normalize(&mut self, r: Reg, ty: TypeId) {
        let tt = self.module.types();
        if let Some(w) = tt.int_bits(ty) {
            if w < 64 {
                let sh = (64 - w.max(8)) as i16;
                self.emit(SparcInst::Alu {
                    op: AluOp::Sll,
                    rs1: r,
                    rhs: RegOrImm::Imm(sh),
                    rd: r,
                    trapping: false,
                });
                self.emit(SparcInst::Alu {
                    op: if tt.is_signed_integer(ty) {
                        AluOp::Sra
                    } else {
                        AluOp::Srl
                    },
                    rs1: r,
                    rhs: RegOrImm::Imm(sh),
                    rd: r,
                    trapping: false,
                });
            }
        }
    }

    fn jump(&mut self, target: BlockId) {
        self.fixups.push((self.code.len(), target));
        self.emit(SparcInst::Ba { target: 0 });
    }

    fn jcc(&mut self, cond: Cond, target: BlockId) {
        self.fixups.push((self.code.len(), target));
        self.emit(SparcInst::Br { cond, target: 0 });
    }

    fn cond_for(&self, op: Opcode, ty: TypeId) -> Cond {
        let tt = self.module.types();
        let signed = tt.is_signed_integer(ty) || tt.is_float(ty);
        match (op, signed) {
            (Opcode::SetEq, _) => Cond::E,
            (Opcode::SetNe, _) => Cond::Ne,
            (Opcode::SetLt, true) => Cond::L,
            (Opcode::SetLt, false) => Cond::Lu,
            (Opcode::SetGt, true) => Cond::G,
            (Opcode::SetGt, false) => Cond::Gu,
            (Opcode::SetLe, true) => Cond::Le,
            (Opcode::SetLe, false) => Cond::Leu,
            (Opcode::SetGe, true) => Cond::Ge,
            (Opcode::SetGe, false) => Cond::Geu,
            _ => unreachable!("not a comparison"),
        }
    }

    fn emit_compare_flags(&mut self, inst_id: InstId) {
        let inst = self.func.inst(inst_id);
        let (a, b) = (inst.operands()[0], inst.operands()[1]);
        let ty = self.vty(a);
        match classify(self.module, ty) {
            ValClass::Int => {
                let ra = self.reg_of(a, G1);
                let rb = self.rhs_of(b, G2);
                self.emit(SparcInst::Cmp { rs1: ra, rhs: rb });
            }
            class => {
                self.freg_of(a, FReg(0));
                self.freg_of(b, FReg(1));
                self.emit(SparcInst::FCmp {
                    fs1: FReg(0),
                    fs2: FReg(1),
                    is32: class == ValClass::F32,
                });
            }
        }
    }

    fn run(&mut self) {
        self.emit_prologue();
        let order = self.func.block_order().to_vec();
        for (bi, &block) in order.iter().enumerate() {
            self.block_starts.insert(block, self.code.len() as u32);
            let next_block = order.get(bi + 1).copied();
            let insts = self.func.block(block).insts().to_vec();
            for &inst_id in &insts {
                self.emit_inst(block, inst_id, next_block);
            }
        }
        for (idx, block) in std::mem::take(&mut self.fixups) {
            let target = self.block_starts[&block];
            match &mut self.code[idx] {
                SparcInst::Ba { target: t } | SparcInst::Br { target: t, .. } => *t = target,
                SparcInst::Call { unwind, .. } | SparcInst::CallIndirect { unwind, .. } => {
                    *unwind = Some(target);
                }
                other => unreachable!("fixup on {other:?}"),
            }
        }
    }

    fn emit_prologue(&mut self) {
        let frame = (self.frame_size + self.out_area + 15) & !15;
        // g1 = old sp
        self.mov(G1, SP);
        if fits_imm13(i64::from(frame)) {
            self.emit(SparcInst::Alu {
                op: AluOp::Sub,
                rs1: SP,
                rhs: RegOrImm::Imm(frame as i16),
                rd: SP,
                trapping: false,
            });
        } else {
            self.mat_const(frame as u64, G2);
            self.emit(SparcInst::Alu {
                op: AluOp::Sub,
                rs1: SP,
                rhs: RegOrImm::Reg(G2),
                rd: SP,
                trapping: false,
            });
        }
        // save old fp at [g1 - 8]; fp = old sp
        self.emit(SparcInst::St {
            rs: FP,
            rs1: G1,
            off: RegOrImm::Imm(-8),
            width: llva_machine::Width::B8,
        });
        self.mov(FP, G1);
        // save used callee-saved registers
        let saves: Vec<(Reg, i32)> = self
            .used_saved
            .iter()
            .map(|r| (*r, self.save_slots[r]))
            .collect();
        for (r, off) in saves {
            let (base, o) = self.fp_mem(off);
            self.emit(SparcInst::St {
                rs: r,
                rs1: base,
                off: o,
                width: llva_machine::Width::B8,
            });
        }
        // move incoming arguments to their homes
        let args = self.func.args().to_vec();
        for (i, &a) in args.iter().enumerate() {
            if i < 6 {
                let src = Reg(8 + i as u8);
                match self.locs[&a] {
                    Loc::Reg(r) => self.mov(r, src),
                    Loc::Slot(off) => {
                        let (base, o) = self.fp_mem(off);
                        self.emit(SparcInst::St {
                            rs: src,
                            rs1: base,
                            off: o,
                            width: llva_machine::Width::B8,
                        });
                    }
                }
            } else {
                // incoming overflow at [fp + 8*(i-6)]
                let off = 8 * (i as i32 - 6);
                self.emit(SparcInst::Ld {
                    rd: G1,
                    rs1: FP,
                    off: RegOrImm::Imm(off as i16),
                    width: llva_machine::Width::B8,
                    signed: false,
                });
                match self.locs[&a] {
                    Loc::Reg(r) => self.mov(r, G1),
                    Loc::Slot(soff) => {
                        let (base, o) = self.fp_mem(soff);
                        self.emit(SparcInst::St {
                            rs: G1,
                            rs1: base,
                            off: o,
                            width: llva_machine::Width::B8,
                        });
                    }
                }
            }
        }
    }

    fn emit_epilogue(&mut self) {
        let saves: Vec<(Reg, i32)> = self
            .used_saved
            .iter()
            .map(|r| (*r, self.save_slots[r]))
            .collect();
        for (r, off) in saves {
            let (base, o) = self.fp_mem(off);
            self.emit(SparcInst::Ld {
                rd: r,
                rs1: base,
                off: o,
                width: llva_machine::Width::B8,
                signed: false,
            });
        }
        // old fp at [fp - 8]; sp = fp
        self.emit(SparcInst::Ld {
            rd: G1,
            rs1: FP,
            off: RegOrImm::Imm(-8),
            width: llva_machine::Width::B8,
            signed: false,
        });
        self.mov(SP, FP);
        self.mov(FP, G1);
        self.emit(SparcInst::Ret);
    }

    fn emit_phi_copies(&mut self, block: BlockId, succ: BlockId) {
        let phis: Vec<InstId> = self
            .func
            .block(succ)
            .insts()
            .iter()
            .copied()
            .filter(|&i| self.func.inst(i).opcode() == Opcode::Phi)
            .collect();
        for phi in phis {
            let Some(incoming) = self.func.phi_incoming(phi, block) else {
                continue;
            };
            let off = self.staging[&phi];
            let r = self.reg_of(incoming, G1);
            let (base, o) = self.fp_mem(off);
            self.emit(SparcInst::St {
                rs: r,
                rs1: base,
                off: o,
                width: llva_machine::Width::B8,
            });
        }
    }

    fn emit_all_phi_copies(&mut self, block: BlockId) {
        for succ in self.func.successors(block) {
            self.emit_phi_copies(block, succ);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn emit_inst(&mut self, block: BlockId, inst_id: InstId, next_block: Option<BlockId>) {
        let inst = self.func.inst(inst_id).clone();
        let op = inst.opcode();
        let ops = inst.operands().to_vec();
        let blocks = inst.block_operands().to_vec();
        let tt = self.module.types();

        if self.fused.contains(&inst_id) {
            return;
        }

        match op {
            _ if op.is_binary() => {
                let ty = inst.result_type();
                match classify(self.module, ty) {
                    ValClass::Int => {
                        let signed = tt.is_signed_integer(ty);
                        let alu = match op {
                            Opcode::Add => AluOp::Add,
                            Opcode::Sub => AluOp::Sub,
                            Opcode::Mul => AluOp::Mul,
                            Opcode::Div => {
                                if signed {
                                    AluOp::Sdiv
                                } else {
                                    AluOp::Udiv
                                }
                            }
                            Opcode::Rem => {
                                if signed {
                                    AluOp::Srem
                                } else {
                                    AluOp::Urem
                                }
                            }
                            Opcode::And => AluOp::And,
                            Opcode::Or => AluOp::Or,
                            Opcode::Xor => AluOp::Xor,
                            Opcode::Shl => AluOp::Sll,
                            Opcode::Shr => {
                                if signed {
                                    AluOp::Sra
                                } else {
                                    AluOp::Srl
                                }
                            }
                            _ => unreachable!(),
                        };
                        let ra = self.reg_of(ops[0], G1);
                        let rb = self.rhs_of(ops[1], G2);
                        let (rd, spill) = self.dst_of(inst_id, G3);
                        self.emit(SparcInst::Alu {
                            op: alu,
                            rs1: ra,
                            rhs: rb,
                            rd,
                            trapping: inst.exceptions_enabled(),
                        });
                        if matches!(
                            op,
                            Opcode::Add
                                | Opcode::Sub
                                | Opcode::Mul
                                | Opcode::Shl
                                | Opcode::Div
                                | Opcode::Rem
                        ) {
                            self.normalize(rd, ty);
                        }
                        self.finish_dst(rd, spill);
                    }
                    class => {
                        let is32 = class == ValClass::F32;
                        self.freg_of(ops[0], FReg(0));
                        self.freg_of(ops[1], FReg(1));
                        let fop = match op {
                            Opcode::Add => llva_machine::sparc::FpOp::Add,
                            Opcode::Sub => llva_machine::sparc::FpOp::Sub,
                            Opcode::Mul => llva_machine::sparc::FpOp::Mul,
                            Opcode::Div | Opcode::Rem => llva_machine::sparc::FpOp::Div,
                            _ => panic!("bitwise op on float"),
                        };
                        if op == Opcode::Rem {
                            self.emit(SparcInst::FAlu {
                                op: llva_machine::sparc::FpOp::Div,
                                fs1: FReg(0),
                                fs2: FReg(1),
                                fd: FReg(2),
                                is32,
                            });
                            self.emit(SparcInst::CvtFI {
                                rd: G1,
                                fs: FReg(2),
                                from32: is32,
                                signed: true,
                            });
                            self.emit(SparcInst::CvtIF {
                                fd: FReg(2),
                                rs: G1,
                                to32: is32,
                                signed: true,
                            });
                            self.emit(SparcInst::FAlu {
                                op: llva_machine::sparc::FpOp::Mul,
                                fs1: FReg(2),
                                fs2: FReg(1),
                                fd: FReg(2),
                                is32,
                            });
                            self.emit(SparcInst::FAlu {
                                op: llva_machine::sparc::FpOp::Sub,
                                fs1: FReg(0),
                                fs2: FReg(2),
                                fd: FReg(0),
                                is32,
                            });
                        } else {
                            self.emit(SparcInst::FAlu {
                                op: fop,
                                fs1: FReg(0),
                                fs2: FReg(1),
                                fd: FReg(0),
                                is32,
                            });
                        }
                        self.fstore_result(inst_id, FReg(0));
                    }
                }
            }
            _ if op.is_comparison() => {
                self.emit_compare_flags(inst_id);
                let cond = self.cond_for(op, self.vty(ops[0]));
                let (rd, spill) = self.dst_of(inst_id, G3);
                self.mov(rd, G0);
                let skip = self.code.len() as u32 + 2;
                self.emit(SparcInst::Br {
                    cond: invert(cond),
                    target: skip,
                });
                self.emit(SparcInst::Alu {
                    op: AluOp::Or,
                    rs1: G0,
                    rhs: RegOrImm::Imm(1),
                    rd,
                    trapping: false,
                });
                self.finish_dst(rd, spill);
            }
            Opcode::Ret => {
                if let Some(&v) = ops.first() {
                    match classify(self.module, self.vty(v)) {
                        ValClass::Int => {
                            let r = self.reg_of(v, G1);
                            self.mov(O0, r);
                        }
                        _ => {
                            // float returns as raw bits in %o0
                            self.freg_of(v, FReg(0));
                            self.emit(SparcInst::MovGF(O0, FReg(0)));
                        }
                    }
                }
                self.emit_epilogue();
            }
            Opcode::Br => {
                self.emit_all_phi_copies(block);
                if ops.is_empty() {
                    if next_block != Some(blocks[0]) {
                        self.jump(blocks[0]);
                    }
                } else {
                    let cond_val = ops[0];
                    let cond = match inst_defining(self.func, cond_val) {
                        Some(def) if self.fused.contains(&def) => {
                            self.emit_compare_flags(def);
                            let def_inst = self.func.inst(def);
                            self.cond_for(def_inst.opcode(), self.vty(def_inst.operands()[0]))
                        }
                        _ => {
                            let r = self.reg_of(cond_val, G1);
                            self.emit(SparcInst::Cmp {
                                rs1: r,
                                rhs: RegOrImm::Imm(0),
                            });
                            Cond::Ne
                        }
                    };
                    self.jcc(cond, blocks[0]);
                    if next_block != Some(blocks[1]) {
                        self.jump(blocks[1]);
                    }
                }
            }
            Opcode::Mbr => {
                self.emit_all_phi_copies(block);
                let r = self.reg_of(ops[0], G1);
                for (i, &case) in ops[1..].iter().enumerate() {
                    let rb = self.rhs_of(case, G2);
                    self.emit(SparcInst::Cmp { rs1: r, rhs: rb });
                    self.jcc(Cond::E, blocks[1 + i]);
                }
                if next_block != Some(blocks[0]) {
                    self.jump(blocks[0]);
                }
            }
            Opcode::Call | Opcode::Invoke => {
                self.emit_call(block, inst_id, op, &ops, &blocks);
            }
            Opcode::Unwind => self.emit(SparcInst::Unwind),
            Opcode::Load => {
                let pointee = tt.pointee(self.vty(ops[0])).expect("pointer");
                let (width, signed) = access_of(self.module, pointee);
                let rp = self.reg_of(ops[0], G1);
                match classify(self.module, pointee) {
                    ValClass::Int => {
                        let (rd, spill) = self.dst_of(inst_id, G3);
                        self.emit(SparcInst::Ld {
                            rd,
                            rs1: rp,
                            off: RegOrImm::Imm(0),
                            width,
                            signed,
                        });
                        self.finish_dst(rd, spill);
                    }
                    class => {
                        self.emit(SparcInst::LdF {
                            fd: FReg(0),
                            rs1: rp,
                            off: RegOrImm::Imm(0),
                            is32: class == ValClass::F32,
                        });
                        self.fstore_result(inst_id, FReg(0));
                    }
                }
            }
            Opcode::Store => {
                let pointee = tt.pointee(self.vty(ops[1])).expect("pointer");
                let (width, _) = access_of(self.module, pointee);
                let rv = self.reg_of(ops[0], G1);
                let rp = self.reg_of(ops[1], G2);
                self.emit(SparcInst::St {
                    rs: rv,
                    rs1: rp,
                    off: RegOrImm::Imm(0),
                    width,
                });
            }
            Opcode::GetElementPtr => self.emit_gep(inst_id, &ops),
            Opcode::Alloca => {
                let (rd, spill) = self.dst_of(inst_id, G3);
                if ops.is_empty() {
                    let off = self.alloca_home[&inst_id];
                    if fits_imm13(i64::from(off)) {
                        self.emit(SparcInst::Alu {
                            op: AluOp::Add,
                            rs1: FP,
                            rhs: RegOrImm::Imm(off as i16),
                            rd,
                            trapping: false,
                        });
                    } else {
                        self.mat_const(off as i64 as u64, G4);
                        self.emit(SparcInst::Alu {
                            op: AluOp::Add,
                            rs1: FP,
                            rhs: RegOrImm::Reg(G4),
                            rd,
                            trapping: false,
                        });
                    }
                } else {
                    let pointee = tt.pointee(inst.result_type()).expect("pointer");
                    let size = self.module.target().size_of(tt, pointee).max(1);
                    let size = (size + 7) & !7;
                    let rc = self.reg_of(ops[0], G1);
                    self.mat_const(size, G2);
                    self.emit(SparcInst::Alu {
                        op: AluOp::Mul,
                        rs1: rc,
                        rhs: RegOrImm::Reg(G2),
                        rd: G1,
                        trapping: false,
                    });
                    self.emit(SparcInst::Alu {
                        op: AluOp::Sub,
                        rs1: SP,
                        rhs: RegOrImm::Reg(G1),
                        rd: SP,
                        trapping: false,
                    });
                    self.mov(rd, SP);
                }
                self.finish_dst(rd, spill);
            }
            Opcode::Cast => self.emit_cast(inst_id, ops[0], inst.result_type()),
            Opcode::Phi => {
                let off = self.staging[&inst_id];
                let (rd, spill) = self.dst_of(inst_id, G3);
                let (base, o) = self.fp_mem(off);
                self.emit(SparcInst::Ld {
                    rd,
                    rs1: base,
                    off: o,
                    width: llva_machine::Width::B8,
                    signed: false,
                });
                self.finish_dst(rd, spill);
            }
            _ => unreachable!("all opcodes covered"),
        }
    }

    fn emit_call(
        &mut self,
        block: BlockId,
        inst_id: InstId,
        op: Opcode,
        ops: &[ValueId],
        blocks: &[BlockId],
    ) {
        let args = &ops[1..];
        for (i, &a) in args.iter().take(6).enumerate() {
            let dst = Reg(8 + i as u8);
            match classify(self.module, self.vty(a)) {
                ValClass::Int => {
                    let r = self.reg_of(a, dst);
                    self.mov(dst, r);
                }
                _ => {
                    self.freg_of(a, FReg(0));
                    self.emit(SparcInst::MovGF(dst, FReg(0)));
                }
            }
        }
        for (j, &a) in args.iter().skip(6).enumerate() {
            let r = self.reg_of(a, G1);
            self.emit(SparcInst::St {
                rs: r,
                rs1: SP,
                off: RegOrImm::Imm((8 * j) as i16),
                width: llva_machine::Width::B8,
            });
        }
        let call_idx = self.code.len();
        if let Some(intr) = intrinsic_target(self.module, self.func, ops[0]) {
            self.emit(SparcInst::CallIntrinsic {
                which: intr,
                nargs: args.len().min(6) as u8,
            });
        } else if let Some(Constant::FunctionAddr { func, .. }) = self.func.value_as_const(ops[0])
        {
            self.emit(SparcInst::Call {
                func: func.index() as u32,
                unwind: None,
            });
        } else {
            let r = self.reg_of(ops[0], G1);
            self.emit(SparcInst::CallIndirect {
                rs: r,
                unwind: None,
            });
        }
        if let Some(result) = self.func.inst_result(inst_id) {
            match classify(self.module, self.func.inst(inst_id).result_type()) {
                ValClass::Int => match self.locs[&result] {
                    Loc::Reg(r) => self.mov(r, O0),
                    Loc::Slot(off) => {
                        let (base, o) = self.fp_mem(off);
                        self.emit(SparcInst::St {
                            rs: O0,
                            rs1: base,
                            off: o,
                            width: llva_machine::Width::B8,
                        });
                    }
                },
                _ => {
                    self.emit(SparcInst::MovFG(FReg(0), O0));
                    self.fstore_result(inst_id, FReg(0));
                }
            }
        }
        if op == Opcode::Invoke {
            self.emit_phi_copies(block, blocks[0]);
            self.jump(blocks[0]);
            let pad = self.code.len() as u32;
            self.emit_phi_copies(block, blocks[1]);
            self.jump(blocks[1]);
            match &mut self.code[call_idx] {
                SparcInst::Call { unwind, .. } | SparcInst::CallIndirect { unwind, .. } => {
                    *unwind = Some(pad);
                }
                _ => {}
            }
        }
    }

    fn emit_gep(&mut self, inst_id: InstId, ops: &[ValueId]) {
        let tt = self.module.types();
        let cfg = self.module.target();
        let base = self.reg_of(ops[0], G1);
        self.mov(G1, base);
        let mut cur = tt.pointee(self.vty(ops[0])).expect("pointer");
        let mut static_off: i64 = 0;
        for (i, &idx) in ops[1..].iter().enumerate() {
            let elem_size = if i == 0 {
                cfg.size_of(tt, cur)
            } else {
                match tt.kind(cur).clone() {
                    TypeKind::Array { elem, .. } => {
                        let s = cfg.size_of(tt, elem);
                        cur = elem;
                        s
                    }
                    TypeKind::LiteralStruct(_) | TypeKind::Struct(_) => {
                        let field = self
                            .func
                            .value_as_const(idx)
                            .and_then(Constant::as_int_bits)
                            .expect("struct index constant")
                            as usize;
                        static_off += cfg.field_offset(tt, cur, field) as i64;
                        cur = tt.struct_fields(cur).expect("defined")[field];
                        continue;
                    }
                    other => panic!("gep into {other:?}"),
                }
            };
            if let Some(k) = self
                .func
                .value_as_const(idx)
                .map(|c| canonical_const(self.module, c) as i64)
            {
                static_off += k * elem_size as i64;
            } else {
                let ri = self.reg_of(idx, G2);
                if elem_size.is_power_of_two() {
                    self.emit(SparcInst::Alu {
                        op: AluOp::Sll,
                        rs1: ri,
                        rhs: RegOrImm::Imm(elem_size.trailing_zeros() as i16),
                        rd: G2,
                        trapping: false,
                    });
                } else {
                    self.mat_const(elem_size, G3);
                    self.emit(SparcInst::Alu {
                        op: AluOp::Mul,
                        rs1: ri,
                        rhs: RegOrImm::Reg(G3),
                        rd: G2,
                        trapping: false,
                    });
                }
                self.emit(SparcInst::Alu {
                    op: AluOp::Add,
                    rs1: G1,
                    rhs: RegOrImm::Reg(G2),
                    rd: G1,
                    trapping: false,
                });
            }
        }
        let (rd, spill) = self.dst_of(inst_id, G3);
        if static_off != 0 {
            if fits_imm13(static_off) {
                self.emit(SparcInst::Alu {
                    op: AluOp::Add,
                    rs1: G1,
                    rhs: RegOrImm::Imm(static_off as i16),
                    rd,
                    trapping: false,
                });
            } else {
                self.mat_const(static_off as u64, G4);
                self.emit(SparcInst::Alu {
                    op: AluOp::Add,
                    rs1: G1,
                    rhs: RegOrImm::Reg(G4),
                    rd,
                    trapping: false,
                });
            }
        } else {
            self.mov(rd, G1);
        }
        self.finish_dst(rd, spill);
    }

    fn emit_cast(&mut self, inst_id: InstId, src: ValueId, to: TypeId) {
        let tt = self.module.types();
        let from = self.vty(src);
        let from_class = classify(self.module, from);
        let to_class = classify(self.module, to);
        match (from_class, to_class) {
            (ValClass::Int, ValClass::Int) => {
                let rs = self.reg_of(src, G1);
                let (rd, spill) = self.dst_of(inst_id, G3);
                if matches!(tt.kind(to), TypeKind::Bool) {
                    self.emit(SparcInst::Cmp {
                        rs1: rs,
                        rhs: RegOrImm::Imm(0),
                    });
                    self.mov(rd, G0);
                    let skip = self.code.len() as u32 + 2;
                    self.emit(SparcInst::Br {
                        cond: Cond::E,
                        target: skip,
                    });
                    self.emit(SparcInst::Alu {
                        op: AluOp::Or,
                        rs1: G0,
                        rhs: RegOrImm::Imm(1),
                        rd,
                        trapping: false,
                    });
                } else {
                    self.mov(rd, rs);
                    self.normalize(rd, to);
                }
                self.finish_dst(rd, spill);
            }
            (ValClass::Int, fc) => {
                let rs = self.reg_of(src, G1);
                self.emit(SparcInst::CvtIF {
                    fd: FReg(0),
                    rs,
                    to32: fc == ValClass::F32,
                    signed: tt.is_signed_integer(from) || matches!(tt.kind(from), TypeKind::Bool),
                });
                self.fstore_result(inst_id, FReg(0));
            }
            (fc, ValClass::Int) => {
                self.freg_of(src, FReg(0));
                let (rd, spill) = self.dst_of(inst_id, G3);
                if matches!(tt.kind(to), TypeKind::Bool) {
                    self.emit(SparcInst::MovFG(FReg(1), G0));
                    self.emit(SparcInst::FCmp {
                        fs1: FReg(0),
                        fs2: FReg(1),
                        is32: fc == ValClass::F32,
                    });
                    self.mov(rd, G0);
                    let skip = self.code.len() as u32 + 2;
                    self.emit(SparcInst::Br {
                        cond: Cond::E,
                        target: skip,
                    });
                    self.emit(SparcInst::Alu {
                        op: AluOp::Or,
                        rs1: G0,
                        rhs: RegOrImm::Imm(1),
                        rd,
                        trapping: false,
                    });
                } else {
                    self.emit(SparcInst::CvtFI {
                        rd,
                        fs: FReg(0),
                        from32: fc == ValClass::F32,
                        signed: tt.is_signed_integer(to),
                    });
                    self.normalize(rd, to);
                }
                self.finish_dst(rd, spill);
            }
            (fa, fb) => {
                self.freg_of(src, FReg(0));
                if fa != fb {
                    self.emit(SparcInst::CvtFF {
                        fd: FReg(0),
                        fs: FReg(0),
                        to32: fb == ValClass::F32,
                    });
                }
                self.fstore_result(inst_id, FReg(0));
            }
        }
    }
}

fn invert(c: Cond) -> Cond {
    match c {
        Cond::E => Cond::Ne,
        Cond::Ne => Cond::E,
        Cond::L => Cond::Ge,
        Cond::G => Cond::Le,
        Cond::Le => Cond::G,
        Cond::Ge => Cond::L,
        Cond::Lu => Cond::Geu,
        Cond::Gu => Cond::Leu,
        Cond::Leu => Cond::Gu,
        Cond::Geu => Cond::Lu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_machine::common::Exit;
    use llva_machine::memory::Memory;
    use llva_machine::sparc::{SparcMachine, SparcProgram};

    fn compile_and_run(src: &str, args: &[u64]) -> Exit {
        let mut m = llva_core::parser::parse_module(src).expect("parses");
        m.set_target(llva_core::layout::TargetConfig::sparc_v9());
        llva_core::verifier::verify_module(&m).expect("verifies");
        let image = crate::common::layout_globals(&m);
        let mut program = SparcProgram::new(m.num_functions(), image.addrs.clone());
        for (fid, f) in m.functions() {
            if !f.is_declaration() {
                program.install(fid.index() as u32, compile_sparc(&m, fid));
            }
        }
        let mut mem = Memory::new(1 << 22, image.heap_base, m.target().endianness);
        mem.write_bytes(llva_machine::memory::GLOBAL_BASE, &image.image)
            .expect("image fits");
        let mut machine = SparcMachine::new(mem);
        let main = m.function_by_name("main").expect("main");
        machine
            .call_entry(main.index() as u32, args)
            .expect("entry");
        machine.run(&program, 100_000_000)
    }

    #[test]
    fn arithmetic_pipeline() {
        let exit = compile_and_run(
            r#"
int %main(int %x) {
entry:
    %a = add int %x, 10
    %b = mul int %a, 3
    %c = sub int %b, 6
    %d = div int %c, 2
    ret int %d
}
"#,
            &[4],
        );
        assert_eq!(exit, Exit::Halt(18));
    }

    #[test]
    fn fib_recursive() {
        let exit = compile_and_run(
            r#"
int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}

int %main() {
entry:
    %r = call int %fib(int 10)
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(55));
    }

    #[test]
    fn loops_and_phis() {
        let exit = compile_and_run(
            r#"
int %main(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %s2 = add int %s, %i
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#,
            &[10],
        );
        assert_eq!(exit, Exit::Halt(45));
    }

    #[test]
    fn globals_and_memory_big_endian() {
        let exit = compile_and_run(
            r#"
@counter = global int 41

int %main() {
entry:
    %v = load int* @counter
    %v2 = add int %v, 1
    store int %v2, int* @counter
    %r = load int* @counter
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(42));
    }

    #[test]
    fn large_constants_need_sethi() {
        let exit = compile_and_run(
            r#"
long %main() {
entry:
    %a = add long 0, 305419896
    %b = add long %a, 1
    ret long %b
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(0x1234_5679));
    }

    #[test]
    fn many_args_spill_to_stack() {
        let exit = compile_and_run(
            r#"
int %sum8(int %a, int %b, int %c, int %d, int %e, int %f, int %g, int %h) {
entry:
    %s1 = add int %a, %b
    %s2 = add int %s1, %c
    %s3 = add int %s2, %d
    %s4 = add int %s3, %e
    %s5 = add int %s4, %f
    %s6 = add int %s5, %g
    %s7 = add int %s6, %h
    ret int %s7
}

int %main() {
entry:
    %r = call int %sum8(int 1, int 2, int 3, int 4, int 5, int 6, int 7, int 8)
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(36));
    }

    #[test]
    fn float_math_and_struct_gep() {
        let exit = compile_and_run(
            r#"
%P = type { double, double }

int %main() {
entry:
    %p = alloca %P
    %f0 = getelementptr %P* %p, long 0, ubyte 0
    %f1 = getelementptr %P* %p, long 0, ubyte 1
    %three = cast int 3 to double
    %four = cast int 4 to double
    store double %three, double* %f0
    store double %four, double* %f1
    %a = load double* %f0
    %b = load double* %f1
    %aa = mul double %a, %a
    %bb = mul double %b, %b
    %cc = add double %aa, %bb
    %r = cast double %cc to int
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(25));
    }

    #[test]
    fn invoke_unwind_flow() {
        let exit = compile_and_run(
            r#"
void %thrower(int %x) {
entry:
    %c = setgt int %x, 5
    br bool %c, label %throw, label %ok
throw:
    unwind
ok:
    ret void
}

int %main(int %x) {
entry:
    invoke void %thrower(int %x) to label %fine unwind label %caught
fine:
    ret int 0
caught:
    ret int 1
}
"#,
            &[9],
        );
        assert_eq!(exit, Exit::Halt(1));
    }

    #[test]
    fn sparc_ratio_exceeds_x86_for_constant_heavy_code() {
        // The paper's SPARC ratios (2.3–4.2) exceed x86 (2.2–3.3)
        // largely from constant materialization.
        let src = r#"
int %work(int %x) {
entry:
    %a = add int %x, 100000
    %b = mul int %a, 31337
    %c = div int %b, 127
    %d = rem int %c, 65537
    ret int %d
}
"#;
        let mut m = llva_core::parser::parse_module(src).expect("parses");
        m.set_target(llva_core::layout::TargetConfig::sparc_v9());
        let f = m.function_by_name("work").expect("work");
        let sparc_count: usize = compile_sparc(&m, f)
            .iter()
            .map(|i| i.weight() as usize)
            .sum();
        m.set_target(llva_core::layout::TargetConfig::ia32());
        let x86_count = crate::x86gen::compile_x86(&m, f).len();
        assert!(
            sparc_count >= x86_count,
            "sparc {sparc_count} >= x86 {x86_count}"
        );
    }

    #[test]
    fn mbr_dispatch() {
        for (x, expect) in [(0u64, 10u64), (1, 11), (7, 12)] {
            let exit = compile_and_run(
                r#"
int %main(int %x) {
entry:
    mbr int %x, label %other, [ int 0, label %zero ], [ int 1, label %one ]
zero:
    ret int 10
one:
    ret int 11
other:
    ret int 12
}
"#,
                &[x],
            );
            assert_eq!(exit, Exit::Halt(expect));
        }
    }

    #[test]
    fn indirect_call_through_table() {
        let exit = compile_and_run(
            r#"
int %double(int %x) {
entry:
    %r = add int %x, %x
    ret int %r
}

@table = global int (int)* %double

int %main() {
entry:
    %f = load int (int)** @table
    %r = call int %f(int 21)
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(42));
    }
}
