//! Property-based tests over randomly generated LLVA programs.
//!
//! A random "recipe" of arithmetic/compare/select steps is lowered
//! through the builder into a verified module; properties then assert
//! that every representation change (bytecode, assembly) and every
//! optimization preserves the interpreter's semantics, and that both
//! simulated processors agree with the interpreter.
//!
//! The build environment has no crates.io access, so instead of the
//! proptest crate these properties are driven by a small deterministic
//! xorshift generator: every run explores the same case set, and a
//! failing case is reproducible from the printed seed.

use llva::core::builder::FunctionBuilder;
use llva::core::layout::TargetConfig;
use llva::core::module::Module;
use llva::core::value::ValueId;
use llva::engine::llee::{ExecutionManager, TargetIsa};
use llva::engine::Interpreter;

/// Deterministic xorshift64* PRNG (no external deps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi);
        lo + (self.next() % (hi - lo) as u64) as i64
    }

    fn usize(&mut self, hi: usize) -> usize {
        (self.next() % hi as u64) as usize
    }
}

const CASES: u64 = 48;

/// One step of a generated program.
#[derive(Debug, Clone)]
enum Step {
    /// A fresh integer constant.
    Const(i32),
    /// A binary operation over two earlier values (by index).
    Bin(u8, usize, usize),
    /// `select(cond_value != 0, a, b)` lowered as a CFG diamond + phi.
    Select(usize, usize, usize),
}

fn gen_step(rng: &mut Rng) -> Step {
    match rng.usize(3) {
        0 => Step::Const(rng.range(-1000, 1000) as i32),
        1 => Step::Bin(rng.usize(8) as u8, rng.usize(64), rng.usize(64)),
        _ => Step::Select(rng.usize(64), rng.usize(64), rng.usize(64)),
    }
}

fn gen_steps(rng: &mut Rng, max_len: usize) -> Vec<Step> {
    let len = 1 + rng.usize(max_len - 1);
    (0..len).map(|_| gen_step(rng)).collect()
}

/// Builds a module `long f(long, long)` from a recipe; every operation
/// is total (division uses a guarded nonzero divisor).
fn build(steps: &[Step]) -> Module {
    let mut m = Module::new("prop", TargetConfig::default());
    let long = m.types_mut().long();
    let f = m.add_function("f", long, vec![long, long]);
    let mut b = FunctionBuilder::new(&mut m, f);
    let entry = b.block("entry");
    b.switch_to(entry);
    let mut vals: Vec<ValueId> = b.func().args().to_vec();
    for (si, step) in steps.iter().enumerate() {
        let pick = |i: usize| vals[i % vals.len()];
        let v = match step {
            Step::Const(c) => b.iconst(long, i64::from(*c)),
            Step::Bin(op, a, c) => {
                let (x, y) = (pick(*a), pick(*c));
                match op % 8 {
                    0 => b.add(x, y),
                    1 => b.sub(x, y),
                    2 => b.mul(x, y),
                    3 => {
                        // guarded division: divisor = (y | 1) so it is
                        // never zero, and the sign stays varied
                        let one = b.iconst(long, 1);
                        let nz = b.or(y, one);
                        b.div(x, nz)
                    }
                    4 => b.and(x, y),
                    5 => b.or(x, y),
                    6 => b.xor(x, y),
                    _ => {
                        // bounded shift: (y & 31)
                        let mask = b.iconst(long, 31);
                        let sh = b.and(y, mask);
                        b.shl(x, sh)
                    }
                }
            }
            Step::Select(c, a, d) => {
                let (cv, x, y) = (pick(*c), pick(*a), pick(*d));
                let zero = b.iconst(long, 0);
                let cond = b.setne(cv, zero);
                let tb = b.block(&format!("t{si}"));
                let eb = b.block(&format!("e{si}"));
                let jb = b.block(&format!("j{si}"));
                b.cond_br(cond, tb, eb);
                b.switch_to(tb);
                b.br(jb);
                b.switch_to(eb);
                b.br(jb);
                b.switch_to(jb);
                b.phi(long, vec![(x, tb), (y, eb)])
            }
        };
        vals.push(v);
    }
    let ret = *vals.last().expect("at least the args");
    b.ret(Some(ret));
    m
}

fn interp(m: &Module, args: &[u64]) -> u64 {
    let mut i = Interpreter::new(m);
    i.set_fuel(10_000_000);
    i.run("f", args).expect("random programs are total")
}

#[test]
fn generated_modules_verify() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xA11C_E000 + seed);
        let m = build(&gen_steps(&mut rng, 40));
        llva::core::verifier::verify_module(&m)
            .unwrap_or_else(|e| panic!("seed {seed}: generated module fails to verify: {e:?}"));
    }
}

#[test]
fn bytecode_round_trip_preserves_semantics() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xB17E_C0DE + seed);
        let m = build(&gen_steps(&mut rng, 30));
        let args = [rng.range(-500, 500) as u64, rng.range(-500, 500) as u64];
        let expected = interp(&m, &args);
        let bytes = llva::core::bytecode::encode_module(&m);
        let m2 = llva::core::bytecode::decode_module(&bytes).expect("decodes");
        assert_eq!(interp(&m2, &args), expected, "seed {seed}");
    }
}

#[test]
fn assembly_round_trip_preserves_semantics() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xA55E_3B1E + seed);
        let m = build(&gen_steps(&mut rng, 25));
        let args = [rng.range(-500, 500) as u64, rng.range(-500, 500) as u64];
        let expected = interp(&m, &args);
        let text = llva::core::printer::print_module(&m);
        let m2 = llva::core::parser::parse_module(&text).expect("parses");
        assert_eq!(interp(&m2, &args), expected, "seed {seed}");
    }
}

#[test]
fn optimizer_preserves_semantics() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x0071_CA7E + seed);
        let mut m = build(&gen_steps(&mut rng, 30));
        let args = [rng.range(-500, 500) as u64, rng.range(-500, 500) as u64];
        let expected = interp(&m, &args);
        let mut pm = llva::opt::standard_pipeline();
        pm.verify_after_each(true);
        pm.run(&mut m);
        assert_eq!(interp(&m, &args), expected, "seed {seed}");
    }
}

#[test]
fn both_processors_agree_with_interpreter() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x15A5_A5A5 + seed);
        let steps = gen_steps(&mut rng, 20);
        let m = build(&steps);
        let args = [rng.range(-200, 200) as u64, rng.range(-200, 200) as u64];
        let expected = interp(&m, &args);
        for isa in [TargetIsa::X86, TargetIsa::Sparc] {
            let mut mgr = ExecutionManager::new(build(&steps), isa);
            let out = mgr.run("f", &args).expect("runs");
            assert_eq!(out.value, expected, "seed {seed}: {isa} disagrees");
        }
    }
}

#[test]
fn constant_folding_agrees_with_runtime() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0xF01D_ED00 + seed);
        // feed constants for the arguments so folding can collapse a lot
        let steps = gen_steps(&mut rng, 25);
        let m = build(&steps);
        let expected = interp(&m, &[7u64, 13u64]);
        let mut folded = build(&steps);
        let mut pm = llva::opt::PassManager::new();
        pm.add(llva::opt::constfold::ConstFold::new())
            .add(llva::opt::dce::Dce::new())
            .verify_after_each(true);
        pm.run_to_fixpoint(&mut folded, 8);
        assert_eq!(interp(&folded, &[7u64, 13u64]), expected, "seed {seed}");
    }
}

#[test]
fn eval_matches_interpreter_for_binaries() {
    use llva::core::instruction::Opcode;
    let ops = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Rem,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Shr,
    ];
    for seed in 0..CASES * 4 {
        let mut rng = Rng::new(0xE7A1_0000 + seed);
        // mix full-range and small operands so div/rem edge cases and
        // ordinary arithmetic are both exercised
        let a = if seed % 3 == 0 {
            rng.next() as i64
        } else {
            rng.range(-1000, 1000)
        };
        let b = match seed % 5 {
            0 => 0,
            1 => -1,
            _ => rng.next() as i64,
        };
        let op = ops[rng.usize(ops.len())];
        let mut m = Module::new("e", TargetConfig::default());
        let long = m.types_mut().long();
        let f = m.add_function("f", long, vec![long, long]);
        let mut bb = FunctionBuilder::new(&mut m, f);
        let entry = bb.block("entry");
        bb.switch_to(entry);
        let (x, y) = (bb.func().args()[0], bb.func().args()[1]);
        let r = match op {
            Opcode::Add => bb.add(x, y),
            Opcode::Sub => bb.sub(x, y),
            Opcode::Mul => bb.mul(x, y),
            Opcode::Div => bb.div(x, y),
            Opcode::Rem => bb.rem(x, y),
            Opcode::And => bb.and(x, y),
            Opcode::Or => bb.or(x, y),
            Opcode::Xor => bb.xor(x, y),
            Opcode::Shl => bb.shl(x, y),
            _ => bb.shr(x, y),
        };
        bb.ret(Some(r));

        let ca = llva::core::value::Constant::Int {
            ty: long,
            bits: a as u64,
        };
        let cb = llva::core::value::Constant::Int {
            ty: long,
            bits: b as u64,
        };
        let folded = llva::core::eval::fold_binary(m.types(), op, &ca, &cb);
        let mut i = Interpreter::new(&m);
        i.set_fuel(1000);
        let run = i.run("f", &[a as u64, b as u64]);
        match folded {
            Some(c) => {
                // the interpreter must agree with compile-time folding
                assert_eq!(
                    run.expect("no trap when folding succeeded"),
                    c.as_int_bits().unwrap(),
                    "seed {seed}"
                );
            }
            None => {
                // fold refuses for division by zero and for
                // i64::MIN / -1 overflow (where the runtime wraps but
                // folding conservatively declines)
                assert!(matches!(op, Opcode::Div | Opcode::Rem), "seed {seed}");
                if b == 0 {
                    // §3.3: exceptions are on by default for div (must
                    // trap), but off for rem — rem-by-zero is defined
                    // as 0 rather than trapping
                    match op {
                        Opcode::Div => assert!(run.is_err(), "seed {seed}"),
                        _ => assert_eq!(
                            run.expect("rem-by-zero with exceptions off"),
                            0,
                            "seed {seed}"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn dominator_properties() {
    use llva::core::dominators::DomTree;
    for seed in 0..CASES {
        let mut rng = Rng::new(0xD011_1147 + seed);
        let m = build(&gen_steps(&mut rng, 25));
        let f = m.function_by_name("f").expect("f");
        let func = m.function(f);
        let dom = DomTree::compute(func);
        let entry = func.entry_block();
        for &b in dom.reverse_postorder() {
            // the entry dominates every reachable block
            assert!(dom.dominates(entry, b), "seed {seed}");
            // the immediate dominator strictly dominates its child
            if let Some(idom) = dom.idom(b) {
                assert!(dom.strictly_dominates(idom, b), "seed {seed}");
            } else {
                assert_eq!(b, entry, "seed {seed}");
            }
            // no block strictly dominates itself
            assert!(!dom.strictly_dominates(b, b), "seed {seed}");
        }
    }
}

#[test]
fn encoding_stats_are_consistent() {
    for seed in 0..CASES {
        let mut rng = Rng::new(0x57A7_5000 + seed);
        let m = build(&gen_steps(&mut rng, 25));
        let stats = llva::core::bytecode::encoding_stats(&m);
        assert_eq!(
            stats.small_insts + stats.extended_insts,
            m.total_insts(),
            "seed {seed}"
        );
        assert!(stats.total_bytes > 0, "seed {seed}");
    }
}
