//! minic analogs of the SPEC CFP2000 programs in the paper's Table 2
//! (`179.art`, `183.equake`, `188.ammp`) — floating-point workloads.

/// `179.art`: adaptive resonance theory neural network — vector match
/// and resonance iterations over an F1/F2 layer pair.
pub const ART: &str = r#"
// 179.art analog: ART-1-flavored pattern matching network.
double weights[8][16];
double input[16];

double absd(double v) { return v < 0.0 ? 0.0 - v : v; }

int main() {
    // initialize prototype weights
    for (int j = 0; j < 8; j++) {
        for (int i = 0; i < 16; i++) {
            weights[j][i] = 1.0 / (1.0 + (double)((j * 16 + i) % 5));
        }
    }
    int seed = 17;
    int matches = 0;
    double drift = 0.0;
    for (int trial = 0; trial < 60; trial++) {
        // generate an input pattern
        for (int i = 0; i < 16; i++) {
            seed = (seed * 1103515245 + 12345) % 2147483647;
            int r = seed % 100;
            if (r < 0) r = -r;
            input[i] = (double)r / 100.0;
        }
        // F2 competition: best matching prototype
        int best = 0;
        double best_score = -1.0;
        for (int j = 0; j < 8; j++) {
            double score = 0.0;
            for (int i = 0; i < 16; i++) {
                score += weights[j][i] * input[i];
            }
            if (score > best_score) { best_score = score; best = j; }
        }
        // vigilance test + resonance (learning)
        double sim = 0.0;
        double norm = 0.0;
        for (int i = 0; i < 16; i++) {
            double m = weights[best][i] < input[i] ? weights[best][i] : input[i];
            sim += m;
            norm += input[i];
        }
        if (sim / (norm + 0.0001) > 0.3) {
            matches++;
            for (int i = 0; i < 16; i++) {
                double old = weights[best][i];
                weights[best][i] = 0.6 * old + 0.4 * input[i];
                drift += absd(weights[best][i] - old);
            }
        }
    }
    return matches * 1000 + (int)(drift * 10.0) % 1000;
}
"#;

/// `183.equake`: seismic wave propagation — sparse matrix-vector
/// products over explicit time steps.
pub const EQUAKE: &str = r#"
// 183.equake analog: 1-D wave equation with a sparse stiffness matrix.
double u[128];
double v[128];
double a[128];

int main() {
    int n = 128;
    for (int i = 0; i < n; i++) {
        u[i] = 0.0;
        v[i] = 0.0;
    }
    // initial displacement pulse in the middle
    u[n / 2] = 1.0;
    u[n / 2 - 1] = 0.5;
    u[n / 2 + 1] = 0.5;
    double dt = 0.1;
    double c = 0.8;
    for (int step = 0; step < 200; step++) {
        // a = c^2 * Laplacian(u)   (tridiagonal stencil = sparse matvec)
        for (int i = 1; i < n - 1; i++) {
            a[i] = c * c * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
        }
        a[0] = 0.0;
        a[n - 1] = 0.0;
        for (int i = 0; i < n; i++) {
            v[i] = v[i] + dt * a[i];
            u[i] = u[i] + dt * v[i];
        }
    }
    // energy-like checksum
    double e = 0.0;
    for (int i = 0; i < n; i++) {
        e += u[i] * u[i] + v[i] * v[i];
    }
    return (int)(e * 1000.0);
}
"#;

/// `188.ammp`: molecular dynamics — pairwise force accumulation and
/// velocity-Verlet integration.
pub const AMMP: &str = r#"
// 188.ammp analog: Lennard-Jones-ish N-body molecular dynamics.
double x[24];
double y[24];
double vx[24];
double vy[24];
double fx[24];
double fy[24];

int main() {
    int n = 24;
    for (int i = 0; i < n; i++) {
        x[i] = (double)(i % 6) * 1.2;
        y[i] = (double)(i / 6) * 1.2;
        vx[i] = 0.0;
        vy[i] = 0.0;
    }
    double dt = 0.01;
    for (int step = 0; step < 80; step++) {
        for (int i = 0; i < n; i++) { fx[i] = 0.0; fy[i] = 0.0; }
        for (int i = 0; i < n; i++) {
            for (int j = i + 1; j < n; j++) {
                double dx = x[j] - x[i];
                double dy = y[j] - y[i];
                double r2 = dx * dx + dy * dy + 0.01;
                // short-range repulsion + weak attraction
                double inv2 = 1.0 / r2;
                double inv6 = inv2 * inv2 * inv2;
                double f = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
                fx[i] -= f * dx;
                fy[i] -= f * dy;
                fx[j] += f * dx;
                fy[j] += f * dy;
            }
        }
        for (int i = 0; i < n; i++) {
            vx[i] += dt * fx[i];
            vy[i] += dt * fy[i];
            x[i] += dt * vx[i];
            y[i] += dt * vy[i];
        }
    }
    double ke = 0.0;
    for (int i = 0; i < n; i++) {
        ke += vx[i] * vx[i] + vy[i] * vy[i];
    }
    return (int)(ke * 100.0) % 1000000;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse() {
        for (name, src) in [("art", ART), ("equake", EQUAKE), ("ammp", AMMP)] {
            llva_minic::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
