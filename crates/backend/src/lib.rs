//! # llva-backend — native code generators (the "translator")
//!
//! Translates LLVA virtual object code to the two simulated
//! implementation ISAs in `llva-machine`:
//!
//! * [`x86gen`] — IA-32-like: deliberately naive (the paper: "performs
//!   virtually no optimization and very simple register allocation
//!   resulting in significant spill code"), every value spilled to the
//!   frame, memory-operand forms used where possible.
//! * [`sparcgen`] — SPARC-V9-like: "produces higher quality code, but
//!   requires more instructions because of the RISC architecture";
//!   use-count-based register assignment over 14 callee-saved
//!   registers, `sethi`/`or` materialization for wide constants.
//!
//! [`common`] holds shared pieces: global memory image layout,
//! compare/branch fusion, and constant canonicalization.

pub mod common;
pub mod sparcgen;
pub mod x86gen;

pub use common::{layout_globals, GlobalImage};
pub use sparcgen::compile_sparc;
pub use x86gen::compile_x86;

#[cfg(test)]
mod tests {
    //! The compile entry points are the unit of work for LLEE's
    //! parallel offline translator: they must be pure over `&Module`
    //! and callable concurrently from many threads.

    use llva_core::layout::TargetConfig;
    use llva_core::module::Module;

    const SRC: &str = r#"
int %helper(int %x) {
entry:
    %a = mul int %x, 7
    %c = setlt int %a, 50
    br bool %c, label %lo, label %hi
lo:
    ret int %a
hi:
    %b = sub int %a, 50
    ret int %b
}

int %main(int %n) {
entry:
    %r = call int %helper(int %n)
    ret int %r
}
"#;

    #[test]
    fn module_is_shareable_across_threads() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Module>();
    }

    #[test]
    fn compile_entry_points_are_reentrant() {
        // the same &Module compiled concurrently from many threads
        // must produce the same code as a serial compile
        let mut m = llva_core::parser::parse_module(SRC).expect("parses");
        for (target, is_x86) in [(TargetConfig::ia32(), true), (TargetConfig::sparc_v9(), false)] {
            m.set_target(target);
            let fids: Vec<_> = m.functions().map(|(fid, _)| fid).collect();
            if is_x86 {
                let serial: Vec<_> = fids.iter().map(|&f| crate::compile_x86(&m, f)).collect();
                let (m, fids) = (&m, &fids);
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..4)
                        .map(|_| {
                            s.spawn(move || {
                                fids.iter()
                                    .map(|&f| crate::compile_x86(m, f))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    for h in handles {
                        assert_eq!(h.join().expect("no panic"), serial);
                    }
                });
            } else {
                let serial: Vec<_> = fids.iter().map(|&f| crate::compile_sparc(&m, f)).collect();
                let (m, fids) = (&m, &fids);
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..4)
                        .map(|_| {
                            s.spawn(move || {
                                fids.iter()
                                    .map(|&f| crate::compile_sparc(m, f))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    for h in handles {
                        assert_eq!(h.join().expect("no panic"), serial);
                    }
                });
            }
        }
    }
}
