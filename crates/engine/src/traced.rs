//! The hot-trace tier: profile-guided trace compilation for the
//! [`FastInterpreter`](crate::predecode::FastInterpreter) (paper §4.2).
//!
//! > "The translator can ... use the CFG at runtime to perform path
//! > profiling within frequently executed loop regions while avoiding
//! > interpretation."
//!
//! The pre-decoded interpreter counts block entries on every CFG edge
//! it takes. When a block crosses the hot threshold, the counters feed
//! [`crate::trace::form_traces`] — the same software-trace-cache
//! algorithm the offline reoptimizer uses — and each formed trace is
//! compiled into a contiguous linear run of [`TraceOp`]s:
//!
//! * branches along the trace become **guards** carrying the hot
//!   edge's phi moves inline; a failed guard side-exits through the
//!   ordinary edge machinery back into the general dispatch loop;
//! * adjacent instructions fuse into **superinstructions** (`setcc`+
//!   `br`, `gep`+`load`, `gep`+`store`, op+`store`, `load`+op) that
//!   dispatch once but retire — and account for — both components;
//! * operands that are compile-time constants fold: chains of
//!   constant arithmetic collapse into one [`TraceOp::Consts`] write
//!   batch that still retires one instruction per folded write, so
//!   instruction counts match the structural interpreter exactly.
//!
//! Compiled traces are anchored at their head's flat PC; the dispatch
//! loop enters them with a single table lookup on block entry. Traces
//! never span calls — a cross-procedure trace from `form_traces` is
//! split at function boundaries and each segment anchors in its own
//! function, chaining naturally through the call/return path.
//!
//! Self-modifying code (§3.4) invalidates a function's traces together
//! with its pre-decoded body; live activations of a trace keep their
//! `Rc` and finish under the old code, exactly like the pre-decode
//! cache itself.

use crate::interp::int_binary;
use crate::predecode::{
    apply_cast, do_cmp, int_arith, CastKind, CmpClass, GepStep, PreFunction, PreInst, PreModule,
    Src,
};
use crate::profile::{self, ProfileMap};
use crate::trace::form_traces;
use llva_core::instruction::Opcode;
use llva_core::module::FuncId;
use llva_machine::Width;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Tuning knobs for trace formation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Block-entry count at which trace formation triggers. Formation
    /// fires exactly when a counter *reaches* this value, so each block
    /// triggers at most one formation event.
    pub hot_threshold: u64,
    /// Maximum number of basic blocks per formed trace.
    pub max_blocks: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { hot_threshold: 32, max_blocks: 32 }
    }
}

/// Counters describing trace-tier activity, for tests and `perf-smoke`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Traces compiled and anchored (recompilations count again).
    pub traces_compiled: u64,
    /// Superinstructions emitted: fusions plus constant-folded writes.
    pub superinsts: u64,
    /// Times the dispatch loop entered a compiled trace.
    pub trace_entries: u64,
    /// Instructions retired inside compiled traces.
    pub trace_insts: u64,
    /// Guard failures that side-exited back to the dispatch loop.
    pub side_exits: u64,
    /// Anchors dropped by SMC invalidation.
    pub invalidated: u64,
    /// Anchors dropped as unprofitable (too few instructions retired
    /// per entry to cover the entry overhead).
    pub banned: u64,
}

/// How a compiled trace ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TraceEnd {
    /// The last block branches back to the trace head: loop in place.
    Loop,
    /// Fall back to the dispatch loop at `pc`. `block` is the target's
    /// arena index when the exit lands on a block head (so profiling
    /// and trace chaining continue), `None` for mid-block exits (calls,
    /// returns, untraceable instructions).
    Exit { pc: u32, block: Option<u32> },
}

/// Why and where a running trace returned control.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceExit {
    pub(crate) pc: u32,
    pub(crate) block: Option<u32>,
    /// True when a guard failed (cold edge taken), false for the
    /// trace's ordinary end.
    pub(crate) side: bool,
}

/// One operation of a compiled trace. Mirrors
/// [`PreInst`](crate::predecode::PreInst) minus control flow, plus the
/// fused superinstruction forms. Ops that can trap carry the flat PC of
/// the originating instruction so trap coordinates stay precise.
#[derive(Debug, Clone)]
pub(crate) enum TraceOp {
    /// Specialized hot integer ops (no opcode dispatch).
    Add { a: Src, b: Src, dst: u32, width: u32, signed: bool },
    Sub { a: Src, b: Src, dst: u32, width: u32, signed: bool },
    Mul { a: Src, b: Src, dst: u32, width: u32, signed: bool },
    /// Remaining infallible integer binary ops.
    IntBin { op: Opcode, a: Src, b: Src, dst: u32, width: u32, signed: bool },
    /// `div`/`rem` — the only integer ops that can trap.
    IntDiv { op: Opcode, a: Src, b: Src, dst: u32, width: u32, signed: bool, exc: bool, pc: u32 },
    FloatBin { op: Opcode, a: Src, b: Src, dst: u32, is32: bool },
    Cmp { op: Opcode, class: CmpClass, a: Src, b: Src, dst: u32 },
    Cast { src: Src, kind: CastKind, dst: u32 },
    Load { addr: Src, dst: u32, width: Width, signed: bool, exc: bool, pc: u32 },
    Store { val: Src, addr: Src, width: Width, exc: bool, pc: u32 },
    /// General GEP (may contain a `Trap` step).
    Gep { base: Src, steps: Box<[GepStep]>, dst: u32, pc: u32 },
    /// GEP normalized to `base + off + idx * size`.
    GepS { base: Src, off: u64, idx: Src, size: i64, dst: u32 },
    /// GEP folded to `base + offset`.
    GepConst { base: Src, offset: u64, dst: u32 },
    Alloca { count: Option<Src>, unit: u64, dst: u32, pc: u32 },
    /// Branch along the trace with no phi moves.
    Jump0,
    /// Branch along the trace with exactly one phi move.
    Jump1 { dst: u32, src: Src },
    /// Branch along the trace with a parallel phi-move batch.
    Moves { moves: Box<[(u32, Src)]> },
    /// Conditional branch whose `expect` side stays on the trace (hot
    /// phi moves inlined); the other side side-exits via edge `cold`.
    Guard { cond: Src, expect: bool, hot: Box<[(u32, Src)]>, cold: u32 },
    /// Fused `setcc` + `br`: retires two instructions.
    CmpBr {
        op: Opcode,
        class: CmpClass,
        a: Src,
        b: Src,
        dst: u32,
        expect: bool,
        hot: Box<[(u32, Src)]>,
        cold: u32,
    },
    /// Fused loop latch — integer op + `setcc` + `br` (the classic
    /// `i += step; cmp i, bound; br` sequence): retires three
    /// instructions with one dispatch.
    BinCmpBr {
        bop: Opcode,
        ba: Src,
        bb: Src,
        bdst: u32,
        bwidth: u32,
        bsigned: bool,
        cop: Opcode,
        class: CmpClass,
        ca: Src,
        cb: Src,
        cdst: u32,
        expect: bool,
        hot: Box<[(u32, Src)]>,
        cold: u32,
    },
    /// Fused `load` + integer op consuming the loaded value.
    LoadBin {
        op: Opcode,
        addr: Src,
        lwidth: Width,
        lsigned: bool,
        lexc: bool,
        ldst: u32,
        lpc: u32,
        other: Src,
        /// Whether the loaded value is the left operand of `op`.
        loaded_lhs: bool,
        dst: u32,
        width: u32,
        signed: bool,
    },
    /// Fused integer op + `store` of the result.
    BinStore {
        op: Opcode,
        a: Src,
        b: Src,
        tdst: u32,
        width: u32,
        signed: bool,
        addr: Src,
        swidth: Width,
        sexc: bool,
        spc: u32,
    },
    /// Fused `gep` + `load` through the computed address.
    GepLoad {
        base: Src,
        off: u64,
        idx: Option<(Src, i64)>,
        gdst: u32,
        dst: u32,
        width: Width,
        lsigned: bool,
        lexc: bool,
        lpc: u32,
    },
    /// Fused `gep` + `store` through the computed address.
    GepStore {
        val: Src,
        base: Src,
        off: u64,
        idx: Option<(Src, i64)>,
        gdst: u32,
        swidth: Width,
        sexc: bool,
        spc: u32,
    },
    /// Constant-folded chain: each write retires one original
    /// instruction (never empty).
    Consts { writes: Box<[(u32, u64)]> },
}

/// A trace compiled to straight-line [`TraceOp`]s, anchored at
/// `head_pc` in its function's flat instruction stream.
#[derive(Debug)]
pub(crate) struct CompiledTrace {
    pub(crate) ops: Vec<TraceOp>,
    pub(crate) end: TraceEnd,
    pub(crate) head_pc: u32,
    /// How many source blocks the trace was compiled from — installs
    /// skip recompiling a head whose anchored trace already covers at
    /// least as many blocks.
    pub(crate) src_blocks: u32,
    /// Instructions one full pass over `ops` retires. When at least
    /// this much fuel remains, the executor runs the pass without
    /// per-step fuel checks.
    pub(crate) pass_steps: u64,
    /// Trace sessions this trace opened (profitability probation — see
    /// [`TraceEngine::note_trace_profit`]).
    pub(crate) entered: Cell<u32>,
    /// Instructions retired by sessions this trace opened.
    pub(crate) retired: Cell<u64>,
}

/// Per-function trace-tier state.
struct FuncState {
    /// Entry counts per block arena index.
    counts: Vec<u64>,
    /// Compiled traces by head flat PC.
    anchors: Vec<Option<Rc<CompiledTrace>>>,
    /// Head PCs whose traces were banned as unprofitable (too few
    /// instructions retired per entry): never re-anchored.
    banned: HashSet<u32>,
}

/// The trace engine: profile counters, the anchor tables, and the
/// trace compiler. Owned by a `FastInterpreter` (boxed, so the
/// untraced configuration pays one null check).
pub struct TraceEngine {
    config: TraceConfig,
    funcs: Vec<Option<FuncState>>,
    /// Lazily built block-index map for `form_traces` (no
    /// instrumentation globals — the counters live here, not in the
    /// module).
    map: Option<ProfileMap>,
    stats: TraceStats,
}

impl TraceEngine {
    /// Creates an engine with the given formation thresholds.
    pub fn new(config: TraceConfig) -> TraceEngine {
        TraceEngine { config, funcs: Vec::new(), map: None, stats: TraceStats::default() }
    }

    /// Activity counters so far.
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut TraceStats {
        &mut self.stats
    }

    /// Drops all counters and compiled traces of `func` (SMC edit,
    /// §3.4). Live activations keep their `Rc` and finish under the
    /// old code, exactly like the pre-decode cache.
    pub fn invalidate(&mut self, func: usize) {
        if let Some(Some(st)) = self.funcs.get_mut(func).map(Option::take) {
            self.stats.invalidated += st.anchors.iter().filter(|a| a.is_some()).count() as u64;
        }
    }

    /// Bumps the entry counter of `(func, block)`. Returns true exactly
    /// when the counter reaches the hot threshold — the caller should
    /// then run trace formation. Counters saturate one past the
    /// threshold, so blocks that already fired stop dirtying their
    /// cache line on every entry.
    #[inline]
    pub(crate) fn note_block_entry(&mut self, func: u32, block: u32, pf: &PreFunction) -> bool {
        let th = self.config.hot_threshold;
        let st = self.state_mut(func, pf);
        match st.counts.get_mut(block as usize) {
            Some(c) => {
                if *c <= th {
                    *c += 1;
                }
                *c == th
            }
            None => false,
        }
    }

    /// The dispatch loop's combined per-edge hook: bump the target
    /// block's entry counter and check for an anchored trace at `pc` in
    /// one per-function lookup. Returns `(hot, anchored)`.
    #[inline]
    pub(crate) fn edge_event(
        &mut self,
        func: u32,
        block: u32,
        pc: u32,
        pf: &PreFunction,
    ) -> (bool, bool) {
        let th = self.config.hot_threshold;
        let st = self.state_mut(func, pf);
        let hot = match st.counts.get_mut(block as usize) {
            Some(c) => {
                if *c <= th {
                    *c += 1;
                }
                *c == th
            }
            None => false,
        };
        let anchored = st.anchors.get(pc as usize).is_some_and(Option::is_some);
        (hot, anchored)
    }

    /// The compiled trace anchored at `(func, pc)`, if any.
    #[inline]
    pub(crate) fn anchor(&self, func: u32, pc: u32) -> Option<Rc<CompiledTrace>> {
        self.funcs
            .get(func as usize)?
            .as_ref()?
            .anchors
            .get(pc as usize)?
            .clone()
    }

    /// True when a compiled trace is anchored at `(func, pc)` — the
    /// dispatch loop's fast reject, with no `Rc` traffic.
    #[inline]
    pub(crate) fn has_anchor(&self, func: u32, pc: u32) -> bool {
        self.funcs
            .get(func as usize)
            .and_then(Option::as_ref)
            .is_some_and(|st| st.anchors.get(pc as usize).is_some_and(Option::is_some))
    }

    /// Runs trace formation over the current counters and compiles
    /// every formed trace. Called when `(func, block)` just crossed the
    /// hot threshold.
    pub(crate) fn form_and_compile(&mut self, pre: &PreModule<'_>, func: u32, block: u32) {
        if self.map.is_none() {
            self.map = Some(profile::index_only(pre.module()));
        }
        let segments = {
            let map = self.map.as_ref().expect("just built");
            let mut counts = vec![0u64; map.len];
            for (&(fid, bid), &i) in &map.index {
                if let Some(Some(st)) = self.funcs.get(fid.index()) {
                    if let Some(&c) = st.counts.get(bid.index()) {
                        counts[i] = c;
                    }
                }
            }
            let cache = form_traces(
                pre.module(),
                map,
                &counts,
                self.config.hot_threshold,
                self.config.max_blocks,
            );
            // split cross-procedure traces at function boundaries: each
            // segment anchors in its own function and the segments chain
            // through the ordinary call/return path
            let mut segs: Vec<(u32, Vec<u32>)> = Vec::new();
            for t in cache.traces() {
                let mut cur: Option<(u32, Vec<u32>)> = None;
                for &(fid, bid) in &t.blocks {
                    let f = fid.index() as u32;
                    match &mut cur {
                        Some((cf, seg)) if *cf == f => seg.push(bid.index() as u32),
                        _ => {
                            if let Some(done) = cur.take() {
                                segs.push(done);
                            }
                            cur = Some((f, vec![bid.index() as u32]));
                        }
                    }
                }
                if let Some(done) = cur.take() {
                    segs.push(done);
                }
            }
            segs
        };
        for (f, seg) in segments {
            self.install(pre, f, &seg);
        }
        // form_traces requires two blocks, but a self-looping block is
        // the hottest possible trace head — compile it alone
        self.install_self_loop(pre, func, block);
    }

    fn install(&mut self, pre: &PreModule<'_>, func: u32, seg: &[u32]) {
        if pre.is_declaration.get(func as usize).copied().unwrap_or(true) {
            return;
        }
        let pf = pre.get(FuncId::from_index(func as usize));
        // the trace stops at every call; anchor a continuation trace at
        // each post-call resume point so the return re-enters compiled
        // code mid-block instead of interpreting the block's tail
        let mut blocks = seg;
        let mut skip = 0u32;
        loop {
            let Some(&(start, n)) = blocks.first().and_then(|&b| pf.block_span.get(b as usize))
            else {
                return;
            };
            if skip >= n {
                return;
            }
            let head_pc = start + skip;
            // formation re-fires every time another block crosses the
            // threshold; skip banned heads, and heads whose anchored
            // trace already covers at least as many blocks (instead of
            // recompiling equal code)
            let fresh = !self.is_banned(func, head_pc)
                && match self.anchor(func, head_pc) {
                    Some(old) => (old.src_blocks as usize) < blocks.len(),
                    None => true,
                };
            let cont = if fresh {
                let (ct, cont) = compile_range(&pf, blocks, skip, &mut self.stats);
                if let Some(ct) = ct {
                    let head = ct.head_pc as usize;
                    let st = self.state_mut(func, &pf);
                    st.anchors[head] = Some(Rc::new(ct));
                    self.stats.traces_compiled += 1;
                }
                cont
            } else {
                // still walk past the call sites so continuations that
                // are missing (e.g. dropped by worthiness) get a chance
                compile_range(&pf, blocks, skip, &mut self.stats).1
            };
            let Some((bi, off)) = cont else {
                return;
            };
            blocks = &blocks[bi..];
            skip = off + 1;
        }
    }

    fn install_self_loop(&mut self, pre: &PreModule<'_>, func: u32, block: u32) {
        if pre.is_declaration.get(func as usize).copied().unwrap_or(true) {
            return;
        }
        let pf = pre.get(FuncId::from_index(func as usize));
        let Some(&(start, n)) = pf.block_span.get(block as usize) else {
            return;
        };
        if n == 0 || self.anchor(func, start).is_some() {
            return;
        }
        let term = &pf.insts[(start + n - 1) as usize];
        let self_loop = match term {
            PreInst::Jump { edge } => pf.edges[*edge as usize].target_block == block,
            PreInst::BrCond { then_edge, else_edge, .. } => {
                pf.edges[*then_edge as usize].target_block == block
                    || pf.edges[*else_edge as usize].target_block == block
            }
            _ => false,
        };
        if !self_loop {
            return;
        }
        self.install(pre, func, &[block]);
    }

    fn state_mut(&mut self, func: u32, pf: &PreFunction) -> &mut FuncState {
        let f = func as usize;
        if self.funcs.len() <= f {
            self.funcs.resize_with(f + 1, || None);
        }
        self.funcs[f].get_or_insert_with(|| FuncState {
            counts: vec![0; pf.block_span.len()],
            anchors: vec![None; pf.insts.len()],
            banned: HashSet::new(),
        })
    }

    /// True when the head pc was banned as unprofitable.
    fn is_banned(&self, func: u32, pc: u32) -> bool {
        self.funcs
            .get(func as usize)
            .and_then(Option::as_ref)
            .is_some_and(|st| st.banned.contains(&pc))
    }

    /// Records one trace *session* that `tr` opened and that retired
    /// `retired` instructions in total (including chained traces). A
    /// trace that leaves its probation with a poor average gets its
    /// anchor dropped and its head pc banned from re-anchoring: opening
    /// a session for its few instructions costs more than running them
    /// under the general loop saves.
    pub(crate) fn note_trace_profit(&mut self, func: u32, tr: &CompiledTrace, retired: u64) {
        /// Sessions after which profitability is judged.
        const PROBATION_ENTRIES: u32 = 128;
        /// Minimum average instructions retired per session.
        const MIN_RETIRED_PER_ENTRY: u64 = 8;
        let e = tr.entered.get() + 1;
        tr.entered.set(e);
        tr.retired.set(tr.retired.get() + retired);
        if e == PROBATION_ENTRIES
            && tr.retired.get() < u64::from(e) * MIN_RETIRED_PER_ENTRY
        {
            if let Some(Some(st)) = self.funcs.get_mut(func as usize) {
                if let Some(a) = st.anchors.get_mut(tr.head_pc as usize) {
                    *a = None;
                }
                st.banned.insert(tr.head_pc);
                self.stats.banned += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The trace compiler
// ---------------------------------------------------------------------------

struct SegCompiler<'a> {
    pre: &'a PreFunction,
    ops: Vec<TraceOp>,
    /// Registers known to hold a compile-time constant at the current
    /// point of the trace. Every write along the trace re-establishes
    /// its entry, so the map stays valid across the loop back-edge.
    consts: HashMap<u32, u64>,
    stats: &'a mut TraceStats,
}

/// How many instructions one execution of a trace op retires (fused
/// superinstructions retire each original instruction they absorbed).
fn op_steps(op: &TraceOp) -> u64 {
    match op {
        TraceOp::CmpBr { .. }
        | TraceOp::LoadBin { .. }
        | TraceOp::BinStore { .. }
        | TraceOp::GepLoad { .. }
        | TraceOp::GepStore { .. } => 2,
        TraceOp::BinCmpBr { .. } => 3,
        TraceOp::Consts { writes } => writes.len() as u64,
        _ => 1,
    }
}

/// Compiles a run of consecutive same-function blocks — starting `skip`
/// instructions into the head block — into a [`CompiledTrace`] (`None`
/// when nothing worth anchoring comes out). Also reports the first
/// plain call the walk stopped at, as `(index into blocks, instruction
/// offset within that block)`, so the caller can anchor a continuation
/// trace at the post-call resume point.
fn compile_range(
    pre: &PreFunction,
    blocks: &[u32],
    skip: u32,
    stats: &mut TraceStats,
) -> (Option<CompiledTrace>, Option<(usize, u32)>) {
    let Some(head) = blocks.first().copied() else {
        return (None, None);
    };
    let Some(&(head_start, head_n)) = pre.block_span.get(head as usize) else {
        return (None, None);
    };
    if skip >= head_n {
        return (None, None);
    }
    let head_pc = head_start + skip;
    // a trace entered mid-block cannot loop back to its own anchor: the
    // back-edge targets the block *head*, which is upstream of it
    let can_loop = skip == 0;
    let mut c = SegCompiler { pre, ops: Vec::new(), consts: HashMap::new(), stats };
    let mut end = None;
    let mut cont = None;
    'blocks: for (bi, &b) in blocks.iter().enumerate() {
        let Some(&(start, n)) = pre.block_span.get(b as usize) else {
            break;
        };
        if n == 0 {
            break;
        }
        let next = blocks.get(bi + 1).copied();
        let first = if bi == 0 { start + skip } else { start };
        for pc in first..start + n {
            let inst = &pre.insts[pc as usize];
            match inst {
                PreInst::Jump { edge } => {
                    let e = *edge;
                    let eg = &pre.edges[e as usize];
                    if eg.trap {
                        // the edge raises Software unconditionally: leave
                        // it to the dispatch loop for exact coordinates
                        end = Some(TraceEnd::Exit { pc, block: None });
                        break 'blocks;
                    }
                    let tgt = eg.target_block;
                    c.emit_jump(e);
                    if next == Some(tgt) {
                        continue; // follow the trace into the next block
                    }
                    end = Some(if tgt == head && next.is_none() && can_loop {
                        TraceEnd::Loop
                    } else {
                        TraceEnd::Exit { pc: eg.target_pc, block: Some(tgt) }
                    });
                    break 'blocks;
                }
                PreInst::BrCond { cond, then_edge, else_edge } => {
                    if next.is_none() && !can_loop {
                        // mid-block continuation reaching the back-edge:
                        // end before the branch, dispatch loop takes it
                        end = Some(TraceEnd::Exit { pc, block: None });
                        break 'blocks;
                    }
                    let want = next.unwrap_or(head);
                    let (hot, cold, expect) =
                        if pre.edges[*then_edge as usize].target_block == want {
                            (*then_edge, *else_edge, true)
                        } else if pre.edges[*else_edge as usize].target_block == want {
                            (*else_edge, *then_edge, false)
                        } else {
                            // neither side continues the trace
                            end = Some(TraceEnd::Exit { pc, block: None });
                            break 'blocks;
                        };
                    if !c.emit_guard(cond, expect, hot, cold) {
                        end = Some(TraceEnd::Exit { pc, block: None });
                        break 'blocks;
                    }
                    if next.is_none() {
                        end = Some(TraceEnd::Loop);
                        break 'blocks;
                    }
                }
                PreInst::Call { normal_edge, .. } => {
                    // a plain call resumes at pc + 1: report it so a
                    // continuation trace gets anchored there (invokes
                    // resume through an edge to a block head, which the
                    // ordinary anchoring already covers)
                    if normal_edge.is_none() {
                        cont = Some((bi, pc - start));
                    }
                    end = Some(TraceEnd::Exit { pc, block: None });
                    break 'blocks;
                }
                PreInst::Ret { .. }
                | PreInst::Mbr { .. }
                | PreInst::Unwind
                | PreInst::AlwaysTrap { .. } => {
                    // returns, multiway branches, and guaranteed traps
                    // end the trace; the dispatch loop resumes exactly
                    // at this instruction
                    end = Some(TraceEnd::Exit { pc, block: None });
                    break 'blocks;
                }
                _ => {
                    if !c.emit_linear(pc, inst) {
                        end = Some(TraceEnd::Exit { pc, block: None });
                        break 'blocks;
                    }
                }
            }
        }
    }
    let end = end.unwrap_or(TraceEnd::Exit { pc: head_pc, block: None });
    // only anchor traces that amortize their entry cost
    if c.ops.is_empty() || (!matches!(end, TraceEnd::Loop) && c.ops.len() < 2) {
        return (None, cont);
    }
    let pass_steps = c.ops.iter().map(op_steps).sum();
    (
        Some(CompiledTrace {
            ops: c.ops,
            end,
            head_pc,
            src_blocks: blocks.len() as u32,
            pass_steps,
            entered: Cell::new(0),
            retired: Cell::new(0),
        }),
        cont,
    )
}

impl SegCompiler<'_> {
    /// Resolves a source against the constant map (register → immediate
    /// upgrade when the register's value is known).
    fn res(&self, s: Src) -> Src {
        match s {
            Src::Reg(r) => self.consts.get(&r).map_or(s, |&v| Src::Imm(v)),
            Src::Imm(_) => s,
        }
    }

    /// Marks `dst` as written with a non-constant value.
    fn kill(&mut self, dst: u32) {
        self.consts.remove(&dst);
    }

    /// Records a constant-folded write: the register still gets written
    /// at runtime (side exits and later code must see it), batched into
    /// a trailing [`TraceOp::Consts`].
    fn set_const(&mut self, dst: u32, v: u64) {
        self.consts.insert(dst, v);
        self.stats.superinsts += 1;
        if let Some(TraceOp::Consts { writes }) = self.ops.last_mut() {
            let mut w = std::mem::take(writes).into_vec();
            w.push((dst, v));
            *writes = w.into_boxed_slice();
        } else {
            self.ops.push(TraceOp::Consts { writes: Box::new([(dst, v)]) });
        }
    }

    /// Resolves an edge's parallel move list against the constant map
    /// and updates the map (all sources read the pre-move state).
    fn compile_moves(&mut self, moves: &[(u32, Src)]) -> Box<[(u32, Src)]> {
        let resolved: Vec<(u32, Src)> =
            moves.iter().map(|&(d, s)| (d, self.res(s))).collect();
        for &(d, s) in &resolved {
            match s {
                Src::Imm(v) => {
                    self.consts.insert(d, v);
                }
                Src::Reg(_) => {
                    self.consts.remove(&d);
                }
            }
        }
        resolved.into_boxed_slice()
    }

    /// Emits an on-trace branch (the edge's phi moves inline). The edge
    /// must not be trap-flagged.
    fn emit_jump(&mut self, e: u32) {
        let moves = self.compile_moves(&self.pre.edges[e as usize].moves.clone());
        match *moves {
            [] => self.ops.push(TraceOp::Jump0),
            [(dst, src)] => self.ops.push(TraceOp::Jump1 { dst, src }),
            _ => self.ops.push(TraceOp::Moves { moves }),
        }
    }

    /// Emits a guard keeping the `hot` edge on-trace. Returns false when
    /// the hot edge is trap-flagged (the trace must end instead — the
    /// dispatch loop raises the exact trap).
    fn emit_guard(&mut self, cond: &Src, expect: bool, hot: u32, cold: u32) -> bool {
        if self.pre.edges[hot as usize].trap {
            return false;
        }
        // the branch reads its condition before the phi moves run
        let cond = self.res(*cond);
        let moves = self.compile_moves(&self.pre.edges[hot as usize].moves.clone());
        // fuse with an immediately preceding compare of the same register
        if let (Src::Reg(cr), Some(TraceOp::Cmp { dst, .. })) = (cond, self.ops.last()) {
            if *dst == cr {
                let Some(TraceOp::Cmp { op, class, a, b, dst }) = self.ops.pop() else {
                    unreachable!("just matched");
                };
                // latch fusion: the compare reads the result of the
                // integer op right before it (`i += step; cmp i, n; br`)
                let feeds = |s: Src, d: u32| matches!(s, Src::Reg(r) if r == d);
                let bin = match self.ops.last() {
                    Some(&TraceOp::Add { a: ba, b: bb, dst: bd, width, signed })
                        if feeds(a, bd) || feeds(b, bd) =>
                    {
                        Some((Opcode::Add, ba, bb, bd, width, signed))
                    }
                    Some(&TraceOp::Sub { a: ba, b: bb, dst: bd, width, signed })
                        if feeds(a, bd) || feeds(b, bd) =>
                    {
                        Some((Opcode::Sub, ba, bb, bd, width, signed))
                    }
                    Some(&TraceOp::Mul { a: ba, b: bb, dst: bd, width, signed })
                        if feeds(a, bd) || feeds(b, bd) =>
                    {
                        Some((Opcode::Mul, ba, bb, bd, width, signed))
                    }
                    Some(&TraceOp::IntBin { op: bop, a: ba, b: bb, dst: bd, width, signed })
                        if feeds(a, bd) || feeds(b, bd) =>
                    {
                        Some((bop, ba, bb, bd, width, signed))
                    }
                    _ => None,
                };
                if let Some((bop, ba, bb, bdst, bwidth, bsigned)) = bin {
                    self.ops.pop();
                    self.stats.superinsts += 2;
                    self.ops.push(TraceOp::BinCmpBr {
                        bop,
                        ba,
                        bb,
                        bdst,
                        bwidth,
                        bsigned,
                        cop: op,
                        class,
                        ca: a,
                        cb: b,
                        cdst: dst,
                        expect,
                        hot: moves,
                        cold,
                    });
                    return true;
                }
                self.stats.superinsts += 1;
                self.ops.push(TraceOp::CmpBr {
                    op,
                    class,
                    a,
                    b,
                    dst,
                    expect,
                    hot: moves,
                    cold,
                });
                return true;
            }
        }
        self.ops.push(TraceOp::Guard { cond, expect, hot: moves, cold });
        true
    }

    /// Emits one non-control-flow instruction, folding and fusing where
    /// possible. Returns false for instructions the trace cannot carry.
    fn emit_linear(&mut self, pc: u32, inst: &PreInst) -> bool {
        match inst {
            PreInst::IntBin { op, a, b, dst, width, signed } => {
                let (a, b) = (self.res(*a), self.res(*b));
                if let (Src::Imm(x), Src::Imm(y)) = (a, b) {
                    self.set_const(*dst, int_arith(*op, x, y, *width, *signed));
                    return true;
                }
                self.kill(*dst);
                // fuse with an immediately preceding load feeding this op
                if let Some(&TraceOp::Load {
                    addr, dst: ldst, width: lwidth, signed: lsigned, exc: lexc, pc: lpc,
                }) = self.ops.last()
                {
                    let loaded = Src::Reg(ldst);
                    if a == loaded || b == loaded {
                        self.ops.pop();
                        self.stats.superinsts += 1;
                        self.ops.push(TraceOp::LoadBin {
                            op: *op,
                            addr,
                            lwidth,
                            lsigned,
                            lexc,
                            ldst,
                            lpc,
                            other: if a == loaded { b } else { a },
                            loaded_lhs: a == loaded,
                            dst: *dst,
                            width: *width,
                            signed: *signed,
                        });
                        return true;
                    }
                }
                self.ops.push(match op {
                    Opcode::Add => {
                        TraceOp::Add { a, b, dst: *dst, width: *width, signed: *signed }
                    }
                    Opcode::Sub => {
                        TraceOp::Sub { a, b, dst: *dst, width: *width, signed: *signed }
                    }
                    Opcode::Mul => {
                        TraceOp::Mul { a, b, dst: *dst, width: *width, signed: *signed }
                    }
                    _ => TraceOp::IntBin {
                        op: *op,
                        a,
                        b,
                        dst: *dst,
                        width: *width,
                        signed: *signed,
                    },
                });
            }
            PreInst::IntDiv { op, a, b, dst, width, signed, exc } => {
                let (a, b) = (self.res(*a), self.res(*b));
                if let (Src::Imm(x), Src::Imm(y)) = (a, b) {
                    match int_binary(*op, x, y, *width, *signed) {
                        Some(v) => {
                            self.set_const(*dst, v);
                            return true;
                        }
                        None if !*exc => {
                            self.set_const(*dst, 0);
                            return true;
                        }
                        // a guaranteed DivideByZero: leave it to the
                        // dispatch loop
                        None => return false,
                    }
                }
                self.kill(*dst);
                self.ops.push(TraceOp::IntDiv {
                    op: *op,
                    a,
                    b,
                    dst: *dst,
                    width: *width,
                    signed: *signed,
                    exc: *exc,
                    pc,
                });
            }
            PreInst::FloatBin { op, a, b, dst, is32 } => {
                let (a, b) = (self.res(*a), self.res(*b));
                self.kill(*dst);
                self.ops.push(TraceOp::FloatBin { op: *op, a, b, dst: *dst, is32: *is32 });
            }
            PreInst::Cmp { op, class, a, b, dst } => {
                let (a, b) = (self.res(*a), self.res(*b));
                if let (Src::Imm(x), Src::Imm(y)) = (a, b) {
                    self.set_const(*dst, u64::from(do_cmp(*op, *class, x, y)));
                    return true;
                }
                self.kill(*dst);
                self.ops.push(TraceOp::Cmp { op: *op, class: *class, a, b, dst: *dst });
            }
            PreInst::Cast { src, kind, dst } => {
                let src = self.res(*src);
                if let Src::Imm(v) = src {
                    self.set_const(*dst, apply_cast(*kind, v));
                    return true;
                }
                self.kill(*dst);
                self.ops.push(TraceOp::Cast { src, kind: *kind, dst: *dst });
            }
            PreInst::Load { addr, dst, width, signed, exc } => {
                let addr = self.res(*addr);
                self.kill(*dst);
                // fuse with an immediately preceding address computation
                if let Src::Reg(ar) = addr {
                    match self.ops.last() {
                        Some(&TraceOp::GepConst { base, offset, dst: gdst }) if gdst == ar => {
                            self.ops.pop();
                            self.stats.superinsts += 1;
                            self.ops.push(TraceOp::GepLoad {
                                base,
                                off: offset,
                                idx: None,
                                gdst,
                                dst: *dst,
                                width: *width,
                                lsigned: *signed,
                                lexc: *exc,
                                lpc: pc,
                            });
                            return true;
                        }
                        Some(&TraceOp::GepS { base, off, idx, size, dst: gdst })
                            if gdst == ar =>
                        {
                            self.ops.pop();
                            self.stats.superinsts += 1;
                            self.ops.push(TraceOp::GepLoad {
                                base,
                                off,
                                idx: Some((idx, size)),
                                gdst,
                                dst: *dst,
                                width: *width,
                                lsigned: *signed,
                                lexc: *exc,
                                lpc: pc,
                            });
                            return true;
                        }
                        _ => {}
                    }
                }
                self.ops.push(TraceOp::Load {
                    addr,
                    dst: *dst,
                    width: *width,
                    signed: *signed,
                    exc: *exc,
                    pc,
                });
            }
            PreInst::Store { val, addr, width, exc } => {
                let (val, addr) = (self.res(*val), self.res(*addr));
                // fuse with the op producing the stored value…
                if let (Src::Reg(vr), Some(last)) = (val, self.ops.last()) {
                    if let Some((op, a, b, tdst, w, s)) = as_int_op(last) {
                        if tdst == vr {
                            self.ops.pop();
                            self.stats.superinsts += 1;
                            self.ops.push(TraceOp::BinStore {
                                op,
                                a,
                                b,
                                tdst,
                                width: w,
                                signed: s,
                                addr,
                                swidth: *width,
                                sexc: *exc,
                                spc: pc,
                            });
                            return true;
                        }
                    }
                }
                // …or with the address computation
                if let Src::Reg(ar) = addr {
                    match self.ops.last() {
                        Some(&TraceOp::GepConst { base, offset, dst: gdst }) if gdst == ar => {
                            self.ops.pop();
                            self.stats.superinsts += 1;
                            self.ops.push(TraceOp::GepStore {
                                val,
                                base,
                                off: offset,
                                idx: None,
                                gdst,
                                swidth: *width,
                                sexc: *exc,
                                spc: pc,
                            });
                            return true;
                        }
                        Some(&TraceOp::GepS { base, off, idx, size, dst: gdst })
                            if gdst == ar =>
                        {
                            self.ops.pop();
                            self.stats.superinsts += 1;
                            self.ops.push(TraceOp::GepStore {
                                val,
                                base,
                                off,
                                idx: Some((idx, size)),
                                gdst,
                                swidth: *width,
                                sexc: *exc,
                                spc: pc,
                            });
                            return true;
                        }
                        _ => {}
                    }
                }
                self.ops.push(TraceOp::Store { val, addr, width: *width, exc: *exc, pc });
            }
            PreInst::Gep { base, steps, dst } => {
                self.emit_gep(pc, *base, steps, *dst);
            }
            PreInst::GepConst { base, offset, dst } => {
                let base = self.res(*base);
                if let Src::Imm(b) = base {
                    self.set_const(*dst, b.wrapping_add(*offset));
                    return true;
                }
                self.kill(*dst);
                self.ops.push(TraceOp::GepConst { base, offset: *offset, dst: *dst });
            }
            PreInst::Alloca { count, unit, dst } => {
                let count = count.map(|c| self.res(c));
                self.kill(*dst);
                self.ops.push(TraceOp::Alloca { count, unit: *unit, dst: *dst, pc });
            }
            // control flow is handled by the segment walker
            PreInst::Jump { .. }
            | PreInst::BrCond { .. }
            | PreInst::Mbr { .. }
            | PreInst::Ret { .. }
            | PreInst::Call { .. }
            | PreInst::Unwind
            | PreInst::AlwaysTrap { .. } => return false,
        }
        true
    }

    /// Normalizes a general GEP: resolve indices, fold constant steps,
    /// and pick the cheapest addressing form.
    fn emit_gep(&mut self, pc: u32, base: Src, steps: &[GepStep], dst: u32) {
        let base = self.res(base);
        let mut norm: Vec<GepStep> = Vec::with_capacity(steps.len());
        let mut trapped = false;
        for &step in steps {
            let step = match step {
                GepStep::Scaled { idx, size } => match self.res(idx) {
                    Src::Imm(k) => GepStep::Const((k as i64).wrapping_mul(size) as u64),
                    idx => GepStep::Scaled { idx, size },
                },
                other => other,
            };
            match (norm.last_mut(), step) {
                (Some(GepStep::Const(acc)), GepStep::Const(off)) => {
                    *acc = acc.wrapping_add(off);
                }
                (_, s) => {
                    if matches!(s, GepStep::Trap) {
                        trapped = true;
                    }
                    norm.push(s);
                }
            }
        }
        self.kill(dst);
        if trapped {
            self.ops.push(TraceOp::Gep { base, steps: norm.into_boxed_slice(), dst, pc });
            return;
        }
        match (base, norm.as_slice()) {
            (Src::Imm(b), []) => self.set_const(dst, b),
            (Src::Imm(b), [GepStep::Const(off)]) => self.set_const(dst, b.wrapping_add(*off)),
            (_, []) => self.ops.push(TraceOp::GepConst { base, offset: 0, dst }),
            (_, [GepStep::Const(off)]) => {
                self.ops.push(TraceOp::GepConst { base, offset: *off, dst });
            }
            (_, [GepStep::Scaled { idx, size }]) => {
                self.ops.push(TraceOp::GepS { base, off: 0, idx: *idx, size: *size, dst });
            }
            (_, [GepStep::Const(off), GepStep::Scaled { idx, size }])
            | (_, [GepStep::Scaled { idx, size }, GepStep::Const(off)]) => {
                self.ops.push(TraceOp::GepS { base, off: *off, idx: *idx, size: *size, dst });
            }
            _ => self.ops.push(TraceOp::Gep { base, steps: norm.into_boxed_slice(), dst, pc }),
        }
    }
}

/// Extracts `(op, a, b, dst, width, signed)` from an infallible integer
/// trace op (the fusable producers for [`TraceOp::BinStore`]).
fn as_int_op(op: &TraceOp) -> Option<(Opcode, Src, Src, u32, u32, bool)> {
    match *op {
        TraceOp::Add { a, b, dst, width, signed } => {
            Some((Opcode::Add, a, b, dst, width, signed))
        }
        TraceOp::Sub { a, b, dst, width, signed } => {
            Some((Opcode::Sub, a, b, dst, width, signed))
        }
        TraceOp::Mul { a, b, dst, width, signed } => {
            Some((Opcode::Mul, a, b, dst, width, signed))
        }
        TraceOp::IntBin { op, a, b, dst, width, signed } => Some((op, a, b, dst, width, signed)),
        _ => None,
    }
}
