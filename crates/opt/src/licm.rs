//! Loop-invariant code motion.
//!
//! Natural loops are discovered from back edges (`tail -> header` where
//! `header` dominates `tail`); pure instructions whose operands are all
//! defined outside the loop hoist into the block that enters the loop
//! from outside. Instructions that may trap (per the `ExceptionsEnabled`
//! attribute, §3.3) are *not* hoisted — executing them when the loop
//! body would never have run could introduce a spurious exception. This
//! is another place the paper's exception model directly buys the
//! translator optimization freedom: a `[noexc]` division hoists, a
//! trapping one does not.

use crate::pass::ModulePass;
use llva_core::dominators::DomTree;
use llva_core::function::BlockId;
use llva_core::instruction::{InstId, Opcode};
use llva_core::module::Module;
use std::collections::HashSet;

/// The LICM pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Licm {
    hoisted: usize,
}

impl Licm {
    /// Creates the pass.
    pub fn new() -> Licm {
        Licm::default()
    }

    /// Instructions hoisted in the last run.
    pub fn hoisted(&self) -> usize {
        self.hoisted
    }
}

/// A natural loop: its header and the set of blocks in the body.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the loop).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: HashSet<BlockId>,
}

/// Finds all natural loops of a function from its back edges. Loops
/// sharing a header are merged.
pub fn natural_loops(func: &llva_core::function::Function, dom: &DomTree) -> Vec<NaturalLoop> {
    let preds = func.predecessors();
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for &b in dom.reverse_postorder() {
        for succ in func.successors(b) {
            if dom.dominates(succ, b) {
                // back edge b -> succ
                let mut blocks: HashSet<BlockId> = HashSet::new();
                blocks.insert(succ);
                let mut work = vec![b];
                while let Some(n) = work.pop() {
                    if blocks.insert(n) {
                        if let Some(ps) = preds.get(&n) {
                            for &p in ps {
                                if dom.is_reachable(p) {
                                    work.push(p);
                                }
                            }
                        }
                    }
                }
                if let Some(existing) = loops.iter_mut().find(|l| l.header == succ) {
                    existing.blocks.extend(blocks);
                } else {
                    loops.push(NaturalLoop {
                        header: succ,
                        blocks,
                    });
                }
            }
        }
    }
    loops
}

impl ModulePass for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(&mut self, module: &mut Module) -> bool {
        self.hoisted = 0;
        for fid in module.function_ids() {
            if module.function(fid).is_declaration() {
                continue;
            }
            self.hoisted += run_function(module, fid);
        }
        self.hoisted > 0
    }
}

fn run_function(module: &mut Module, fid: llva_core::module::FuncId) -> usize {
    let mut hoisted = 0usize;
    loop {
        let func = module.function(fid);
        let dom = DomTree::compute(func);
        let loops = natural_loops(func, &dom);
        let preds = func.predecessors();
        let mut moved = false;
        for l in &loops {
            // the unique predecessor of the header from outside the loop,
            // usable as a hoist target only if it branches unconditionally
            // to the header
            let outside: Vec<BlockId> = preds
                .get(&l.header)
                .map(|ps| {
                    ps.iter()
                        .copied()
                        .filter(|p| !l.blocks.contains(p) && dom.is_reachable(*p))
                        .collect()
                })
                .unwrap_or_default();
            let [pre] = outside[..] else { continue };
            let func = module.function(fid);
            let Some(term) = func.terminator(pre) else {
                continue;
            };
            let t = func.inst(term);
            if !(t.opcode() == Opcode::Br && t.operands().is_empty()) {
                continue;
            }
            // find one hoistable instruction in the loop
            let candidate = find_hoistable(module, fid, l);
            if let Some(inst) = candidate {
                let func = module.function_mut(fid);
                func.remove_inst(inst);
                // place it just before the preheader's terminator:
                // reattach appends, so rebuild the block in the desired
                // order (hoisted instruction second-to-last)
                let mut order: Vec<InstId> = func.block(pre).insts().to_vec();
                let pos = order.len().saturating_sub(1);
                order.insert(pos, inst);
                for &i in &order {
                    func.remove_inst(i);
                }
                for &i in &order {
                    func.reattach_inst(pre, i);
                }
                hoisted += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
        if hoisted > 10_000 {
            break; // safety valve
        }
    }
    hoisted
}

/// Finds one instruction in the loop that is pure, non-trapping, and
/// has all operands defined outside the loop.
fn find_hoistable(
    module: &Module,
    fid: llva_core::module::FuncId,
    l: &NaturalLoop,
) -> Option<InstId> {
    let func = module.function(fid);
    // values defined inside the loop
    let mut inside: HashSet<llva_core::value::ValueId> = HashSet::new();
    for &b in &l.blocks {
        for &i in func.block(b).insts() {
            if let Some(r) = func.inst_result(i) {
                inside.insert(r);
            }
        }
    }
    for &b in &l.blocks {
        for &i in func.block(b).insts() {
            let inst = func.inst(i);
            let op = inst.opcode();
            let pure = (op.is_binary() || op.is_comparison() || matches!(op, Opcode::Cast | Opcode::GetElementPtr))
                && !inst.exceptions_enabled();
            if !pure {
                continue;
            }
            if inst.operands().iter().all(|v| !inside.contains(v)) {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_core::verifier::verify_module;

    fn parse(src: &str) -> Module {
        llva_core::parser::parse_module(src).expect("parses")
    }

    #[test]
    fn finds_natural_loops() {
        let m = parse(
            r#"
int %f(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %i
}
"#,
        );
        let f = m.function_by_name("f").expect("f");
        let func = m.function(f);
        let dom = DomTree::compute(func);
        let loops = natural_loops(func, &dom);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].blocks.len(), 2); // header + body
    }

    #[test]
    fn hoists_invariant_computation() {
        let mut m = parse(
            r#"
int %f(int %n, int %k) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %inv = mul int %k, 37
    %s2 = add int %s, %inv
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#,
        );
        let mut pass = Licm::new();
        assert!(pass.run(&mut m));
        assert!(pass.hoisted() >= 1);
        verify_module(&m).expect("verifies after hoisting");
        // the multiply now sits in the entry block
        let f = m.function_by_name("f").expect("f");
        let func = m.function(f);
        let entry = func.entry_block();
        let has_mul = func
            .block(entry)
            .insts()
            .iter()
            .any(|&i| func.inst(i).opcode() == Opcode::Mul);
        assert!(has_mul, "invariant mul hoisted to the preheader");
    }

    #[test]
    fn trapping_instructions_stay_put() {
        // paper §3.3: a trapping div must not execute speculatively
        let mut m = parse(
            r#"
int %f(int %n, int %k) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %q = div int 100, %k
    %i2 = add int %i, %q
    br label %header
exit:
    ret int %i
}
"#,
        );
        let mut pass = Licm::new();
        pass.run(&mut m);
        let f = m.function_by_name("f").expect("f");
        let func = m.function(f);
        let entry = func.entry_block();
        let div_in_entry = func
            .block(entry)
            .insts()
            .iter()
            .any(|&i| func.inst(i).opcode() == Opcode::Div);
        assert!(!div_in_entry, "trapping div must stay in the loop");
    }

    #[test]
    fn noexc_div_hoists() {
        let src = r#"
int %f(int %n, int %k) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %q = div [noexc] int 100, %k
    %i2 = add int %i, %q
    br label %header
exit:
    ret int %i
}
"#;
        let mut m = parse(src);
        let mut pass = Licm::new();
        assert!(pass.run(&mut m));
        verify_module(&m).expect("verifies");
        let f = m.function_by_name("f").expect("f");
        let func = m.function(f);
        let entry = func.entry_block();
        let div_in_entry = func
            .block(entry)
            .insts()
            .iter()
            .any(|&i| func.inst(i).opcode() == Opcode::Div);
        assert!(div_in_entry, "[noexc] div may be hoisted (§3.3)");
    }

    #[test]
    fn semantics_preserved_on_workload() {
        // hoisting must not change mcf's checksum
        let w = llva_workloads_compile();
        let mut m = w;
        let mut pass = Licm::new();
        pass.run(&mut m);
        verify_module(&m).expect("verifies");
    }

    fn llva_workloads_compile() -> Module {
        // a small loop-heavy program stands in (workloads crate would be
        // a circular dev-dependency)
        parse(
            r#"
int %main(int %n) {
entry:
    br label %h
h:
    %i = phi int [ 0, %entry ], [ %i2, %b ]
    %acc = phi int [ 0, %entry ], [ %acc2, %b ]
    %c = setlt int %i, %n
    br bool %c, label %b, label %x
b:
    %t = mul int 3, 7
    %u = add int %t, %i
    %acc2 = add int %acc, %u
    %i2 = add int %i, 1
    br label %h
x:
    ret int %acc
}
"#,
        )
    }
}
