//! The reference LLVA interpreter.
//!
//! Executes virtual object code directly, with the precise-exception
//! semantics of §3.3: every instruction either completes or raises a
//! precise trap naming it, and exceptions of `[noexc]` instructions are
//! suppressed. The interpreter is the semantic oracle for both code
//! generators (differential tests run every workload through all
//! three executors).

use crate::env::{Env, StackView};
use llva_backend::common::{access_of, layout_globals};
use llva_core::function::BlockId;
use llva_core::instruction::{InstId, Opcode};
use llva_core::module::{FuncId, Module};
use llva_core::types::{TypeId, TypeKind};
use llva_core::value::{Constant, ValueId};
use llva_machine::common::TrapKind;
use llva_machine::memory::Memory;
use llva_machine::x86::{function_value, FUNC_TAG};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Default simulated memory size: 16 MiB.
pub const DEFAULT_MEMORY_SIZE: u64 = 1 << 24;

/// An interned, cheaply clonable name used in trap reports.
///
/// Cloning a `Name` bumps a reference count instead of copying the
/// string, so traps can carry function/block names without the hot
/// loop ever allocating (names are materialized only when a trap
/// actually fires, and the fast interpreter interns them once at
/// pre-decode time).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(Arc<str>);

impl Name {
    /// Interns `s`.
    pub fn new(s: &str) -> Name {
        Name(Arc::from(s))
    }

    /// The underlying string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for Name {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name(Arc::from(s))
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

/// A precise LLVA-level trap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlvaTrap {
    /// What kind of exception.
    pub kind: TrapKind,
    /// The function containing the faulting instruction.
    pub function: Name,
    /// The faulting instruction's block label.
    pub block: Name,
    /// Index of the instruction within its block.
    pub index: usize,
}

impl fmt::Display for LlvaTrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in %{} at {}:{}",
            self.kind, self.function, self.block, self.index
        )
    }
}

impl std::error::Error for LlvaTrap {}

/// Why interpretation stopped without a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A precise trap was delivered.
    Trap(LlvaTrap),
    /// The configured fuel limit was exhausted.
    OutOfFuel,
    /// The named entry function does not exist or is a declaration.
    NoSuchFunction(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Trap(t) => t.fmt(f),
            InterpError::OutOfFuel => f.write_str("out of fuel"),
            InterpError::NoSuchFunction(n) => write!(f, "no such function %{n}"),
        }
    }
}

impl std::error::Error for InterpError {}

struct Frame {
    func: FuncId,
    block: BlockId,
    prev_block: Option<BlockId>,
    idx: usize,
    values: HashMap<ValueId, u64>,
    saved_sp: u64,
    /// `(call instruction in this frame, unwind target)` for `invoke`.
    pending_call: Option<InstId>,
    unwind_to: Option<BlockId>,
}

/// The interpreter: a module, a simulated memory, and an [`Env`].
pub struct Interpreter<'m> {
    module: &'m Module,
    /// The memory image (globals initialized at construction).
    pub mem: Memory,
    /// Intrinsic state shared with native execution.
    pub env: Env,
    global_addrs: Vec<u64>,
    func_names: Vec<String>,
    frames: Vec<Frame>,
    sp: u64,
    insts: u64,
    fuel: u64,
    /// Fault injection: panic once `insts` reaches this count (see
    /// [`Interpreter::arm_panic_after`]). `None` = disarmed.
    panic_after: Option<u64>,
    bool_ty: TypeId,
}

impl<'m> fmt::Debug for Interpreter<'m> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interpreter")
            .field("module", &self.module.name())
            .field("frames", &self.frames.len())
            .field("insts", &self.insts)
            .finish()
    }
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter with the default 16 MiB memory
    /// ([`DEFAULT_MEMORY_SIZE`]) and effectively unlimited fuel.
    pub fn new(module: &'m Module) -> Interpreter<'m> {
        Interpreter::with_memory_size(module, DEFAULT_MEMORY_SIZE)
    }

    /// Creates an interpreter with a custom memory size.
    pub fn with_memory_size(module: &'m Module, mem_size: u64) -> Interpreter<'m> {
        let image = layout_globals(module);
        let mut mem = Memory::new(mem_size, image.heap_base, module.target().endianness);
        mem.write_bytes(llva_machine::memory::GLOBAL_BASE, &image.image)
            .expect("global image fits");
        let sp = mem.initial_sp();
        let func_names = module
            .functions()
            .map(|(_, f)| f.name().to_string())
            .collect();
        let bool_ty = module
            .types()
            .iter()
            .find_map(|(id, k)| matches!(k, TypeKind::Bool).then_some(id))
            .unwrap_or_else(|| TypeId::from_index((u32::MAX - 1) as usize));
        Interpreter {
            module,
            mem,
            env: Env::new(),
            global_addrs: image.addrs,
            func_names,
            frames: Vec::new(),
            sp,
            insts: 0,
            fuel: u64::MAX,
            panic_after: None,
            bool_ty,
        }
    }

    /// Limits the number of LLVA instructions executed.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Fault injection for the supervisor and robustness tests: panic
    /// (deterministically, mid-frame) once `insts` instructions have
    /// executed. The panic unwinds through live interpreter state, so
    /// callers exercising `catch_unwind` recovery see the worst case.
    pub fn arm_panic_after(&mut self, insts: u64) {
        self.panic_after = Some(insts);
    }

    /// LLVA instructions executed so far.
    pub fn insts_executed(&self) -> u64 {
        self.insts
    }

    /// Runs function `name` with the given argument values.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::Trap`] for precise traps (after invoking
    /// a registered trap handler, §3.5, if any), [`InterpError::OutOfFuel`]
    /// past the fuel limit, and [`InterpError::NoSuchFunction`] for a
    /// missing entry point.
    pub fn run(&mut self, name: &str, args: &[u64]) -> Result<u64, InterpError> {
        let fid = self
            .module
            .function_by_name(name)
            .filter(|&f| !self.module.function(f).is_declaration())
            .ok_or_else(|| InterpError::NoSuchFunction(name.to_string()))?;
        match self.run_function(fid, args) {
            Err(InterpError::Trap(trap)) => {
                // §3.5: deliver to a registered trap handler, then report.
                let trap_no = trap_number(trap.kind);
                if let Some(&handler) = self.env.trap_handlers.get(&trap_no) {
                    // A stale or forged registration must not abort trap
                    // delivery: an out-of-range handler is simply ignored.
                    if (handler as usize) < self.module.num_functions() {
                        let h = FuncId::from_index(handler as usize);
                        if !self.module.function(h).is_declaration() {
                            let _ = self.run_function(h, &[u64::from(trap_no), 0]);
                        }
                    }
                }
                Err(InterpError::Trap(trap))
            }
            other => other,
        }
    }

    fn run_function(&mut self, fid: FuncId, args: &[u64]) -> Result<u64, InterpError> {
        self.frames.clear();
        self.push_frame(fid, args, None)?;
        loop {
            match self.step() {
                Ok(Some(ret)) => return Ok(ret),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn push_frame(
        &mut self,
        fid: FuncId,
        args: &[u64],
        unwind_to: Option<BlockId>,
    ) -> Result<(), InterpError> {
        let func = self.module.function(fid);
        let mut values = HashMap::new();
        for (&a, &v) in func.args().iter().zip(args) {
            values.insert(a, v);
        }
        self.frames.push(Frame {
            func: fid,
            block: func.entry_block(),
            prev_block: None,
            idx: 0,
            values,
            saved_sp: self.sp,
            pending_call: None,
            unwind_to,
        });
        Ok(())
    }

    fn trap(&self, kind: TrapKind) -> InterpError {
        let frame = self.frames.last().expect("active frame");
        let func = self.module.function(frame.func);
        InterpError::Trap(LlvaTrap {
            kind,
            function: Name::new(func.name()),
            block: Name::new(func.block(frame.block).name()),
            index: frame.idx,
        })
    }

    fn value(&self, v: ValueId) -> u64 {
        let frame = self.frames.last().expect("active frame");
        if let Some(&x) = frame.values.get(&v) {
            return x;
        }
        let func = self.module.function(frame.func);
        match func.value_as_const(v) {
            Some(Constant::GlobalAddr { global, .. }) => self.global_addrs[global.index()],
            Some(Constant::FunctionAddr { func, .. }) => function_value(func.index() as u32),
            Some(c) => llva_backend::common::canonical_const(self.module, c),
            None => panic!("use of undefined value {v}"),
        }
    }

    fn set_value(&mut self, v: ValueId, x: u64) {
        self.frames
            .last_mut()
            .expect("active frame")
            .values
            .insert(v, x);
    }

    fn vty(&self, v: ValueId) -> TypeId {
        let frame = self.frames.last().expect("active frame");
        self.module.function(frame.func).value_type(v, self.bool_ty)
    }

    /// Executes one instruction; returns `Some(ret)` when the outermost
    /// function returns.
    #[allow(clippy::too_many_lines)]
    fn step(&mut self) -> Result<Option<u64>, InterpError> {
        if self.fuel == 0 {
            return Err(InterpError::OutOfFuel);
        }
        if self.panic_after.is_some_and(|n| self.insts >= n) {
            panic!("injected interpreter fault after {} insts", self.insts);
        }
        self.fuel -= 1;
        self.insts += 1;
        self.env.clock += 1;

        let (fid, block, idx) = {
            let f = self.frames.last().expect("active frame");
            (f.func, f.block, f.idx)
        };
        let func = self.module.function(fid);
        let inst_id = func.block(block).insts()[idx];
        let inst = func.inst(inst_id);
        let op = inst.opcode();
        let ops = inst.operands().to_vec();
        let blocks = inst.block_operands().to_vec();
        let exc = inst.exceptions_enabled();
        let result_ty = inst.result_type();
        let result_val = func.inst_result(inst_id);
        let tt = self.module.types();

        match op {
            _ if op.is_binary() => {
                let a = self.value(ops[0]);
                let b = self.value(ops[1]);
                let ty = result_ty;
                let out = if tt.is_float(ty) {
                    let is32 = matches!(tt.kind(ty), TypeKind::Float);
                    let (x, y) = (from_bits(a, is32), from_bits(b, is32));
                    let r = match op {
                        Opcode::Add => x + y,
                        Opcode::Sub => x - y,
                        Opcode::Mul => x * y,
                        Opcode::Div => x / y,
                        Opcode::Rem => x % y,
                        _ => return Err(self.trap(TrapKind::Software)),
                    };
                    to_bits(r, is32)
                } else {
                    let w = tt.int_bits(ty).expect("integer binary op");
                    let signed = tt.is_signed_integer(ty);
                    match int_binary(op, a, b, w, signed) {
                        Some(v) => v,
                        None => {
                            // division by zero
                            if exc {
                                return Err(self.trap(TrapKind::DivideByZero));
                            }
                            0
                        }
                    }
                };
                self.set_value(result_val.expect("binary result"), out);
                self.advance();
            }
            _ if op.is_comparison() => {
                let a = self.value(ops[0]);
                let b = self.value(ops[1]);
                let ty = self.vty(ops[0]);
                let r = compare(op, a, b, tt, ty);
                self.set_value(result_val.expect("cmp result"), u64::from(r));
                self.advance();
            }
            Opcode::Ret => {
                let ret = ops.first().map(|&v| self.value(v)).unwrap_or(0);
                let frame = self.frames.pop().expect("active frame");
                self.sp = frame.saved_sp;
                match self.frames.last_mut() {
                    None => return Ok(Some(ret)),
                    Some(caller) => {
                        let caller_func = self.module.function(caller.func);
                        let call_inst = caller.pending_call.take().expect("call in progress");
                        if let Some(rv) = caller_func.inst_result(call_inst) {
                            caller.values.insert(rv, ret);
                        }
                        // invoke continues at its normal target
                        let inst = caller_func.inst(call_inst);
                        if inst.opcode() == Opcode::Invoke {
                            let normal = inst.block_operands()[0];
                            caller.prev_block = Some(caller.block);
                            caller.block = normal;
                            caller.idx = 0;
                            let (pb, blk) = (caller.prev_block, caller.block);
                            self.run_phis(pb, blk)?;
                        } else {
                            caller.idx += 1;
                        }
                    }
                }
            }
            Opcode::Br => {
                let target = if ops.is_empty() || self.value(ops[0]) != 0 {
                    blocks[0]
                } else {
                    blocks[1]
                };
                self.branch_to(target)?;
            }
            Opcode::Mbr => {
                let disc = self.value(ops[0]);
                let mut target = blocks[0];
                for (i, &case) in ops[1..].iter().enumerate() {
                    if self.value(case) == disc {
                        target = blocks[1 + i];
                        break;
                    }
                }
                self.branch_to(target)?;
            }
            Opcode::Call | Opcode::Invoke => {
                let callee_v = self.value(ops[0]);
                let callee_idx = (callee_v & !FUNC_TAG) as usize;
                if callee_v & FUNC_TAG == 0 || callee_idx >= self.module.num_functions() {
                    return Err(self.trap(TrapKind::BadFunctionPointer));
                }
                let callee = FuncId::from_index(callee_idx);
                let args: Vec<u64> = ops[1..].iter().map(|&a| self.value(a)).collect();
                // `module` outlives `self`, so borrowing the callee name
                // does not conflict with the `&mut self.env` below — no
                // allocation on this (hot, non-trapping) path.
                let module = self.module;
                let callee_name = module.function(callee).name();
                if let Some(intr) = llva_core::intrinsics::Intrinsic::by_name(callee_name) {
                    let stack = StackView {
                        functions: self
                            .frames
                            .iter()
                            .rev()
                            .map(|f| f.func.index() as u32)
                            .collect(),
                    };
                    let ret = self
                        .env
                        .handle(intr, &args, &mut self.mem, &stack, &self.func_names)
                        .map_err(|k| self.trap(k))?;
                    if let Some(rv) = result_val {
                        self.set_value(rv, ret);
                    }
                    if op == Opcode::Invoke {
                        self.branch_to(blocks[0])?;
                    } else {
                        self.advance();
                    }
                    return Ok(None);
                }
                if self.module.function(callee).is_declaration() {
                    return Err(self.trap(TrapKind::BadFunctionPointer));
                }
                if self.frames.len() > 4096 {
                    return Err(self.trap(TrapKind::StackOverflow));
                }
                let unwind_to = (op == Opcode::Invoke).then(|| blocks[1]);
                {
                    let frame = self.frames.last_mut().expect("active");
                    frame.pending_call = Some(inst_id);
                }
                self.push_frame(callee, &args, unwind_to)?;
            }
            Opcode::Unwind => {
                // pop frames to the nearest enclosing invoke (§3.1)
                let unhandled = || {
                    InterpError::Trap(LlvaTrap {
                        kind: TrapKind::UnhandledUnwind,
                        function: Name::new(self.module.function(fid).name()),
                        block: Name::new(self.module.function(fid).block(block).name()),
                        index: idx,
                    })
                };
                loop {
                    let frame = self.frames.pop().ok_or_else(unhandled)?;
                    self.sp = frame.saved_sp;
                    // this frame was entered via invoke iff unwind_to is set
                    if let Some(t) = frame.unwind_to {
                        let caller = self.frames.last_mut().ok_or_else(unhandled)?;
                        caller.pending_call = None;
                        caller.prev_block = Some(caller.block);
                        caller.block = t;
                        caller.idx = 0;
                        let (pb, blk) = (
                            self.frames.last().expect("caller").prev_block,
                            self.frames.last().expect("caller").block,
                        );
                        self.run_phis(pb, blk)?;
                        break;
                    }
                    if self.frames.is_empty() {
                        return Err(unhandled());
                    }
                    self.frames.last_mut().expect("caller").pending_call = None;
                }
            }
            Opcode::Load => {
                let addr = self.value(ops[0]);
                let pointee = tt.pointee(self.vty(ops[0])).expect("pointer");
                let (width, signed) = access_of(self.module, pointee);
                let loaded = if signed {
                    self.mem.load_signed(addr, width)
                } else {
                    self.mem.load(addr, width)
                };
                match loaded {
                    Ok(v) => {
                        self.set_value(result_val.expect("load result"), v);
                        self.advance();
                    }
                    Err(k) => {
                        if exc {
                            return Err(self.trap(k));
                        }
                        self.set_value(result_val.expect("load result"), 0);
                        self.advance();
                    }
                }
            }
            Opcode::Store => {
                let v = self.value(ops[0]);
                let addr = self.value(ops[1]);
                let pointee = tt.pointee(self.vty(ops[1])).expect("pointer");
                let (width, _) = access_of(self.module, pointee);
                match self.mem.store(addr, v, width) {
                    Ok(()) => self.advance(),
                    Err(k) => {
                        if exc {
                            return Err(self.trap(k));
                        }
                        self.advance();
                    }
                }
            }
            Opcode::GetElementPtr => {
                let addr = self.eval_gep(&ops)?;
                self.set_value(result_val.expect("gep result"), addr);
                self.advance();
            }
            Opcode::Alloca => {
                let pointee = tt.pointee(result_ty).expect("alloca pointer");
                let unit = self.module.target().size_of(tt, pointee).max(1);
                let count = ops.first().map(|&c| self.value(c)).unwrap_or(1);
                let size = (unit * count + 7) & !7;
                if self.sp < self.mem.stack_limit() + size {
                    return Err(self.trap(TrapKind::StackOverflow));
                }
                self.sp -= size;
                let addr = self.sp;
                self.set_value(result_val.expect("alloca result"), addr);
                self.advance();
            }
            Opcode::Cast => {
                let v = self.value(ops[0]);
                let from = self.vty(ops[0]);
                let out = cast_value(tt, from, result_ty, v);
                self.set_value(result_val.expect("cast result"), out);
                self.advance();
            }
            Opcode::Phi => {
                unreachable!("phis are executed on block entry");
            }
            _ => unreachable!("all opcodes covered"),
        }
        Ok(None)
    }

    fn advance(&mut self) {
        self.frames.last_mut().expect("active").idx += 1;
    }

    fn branch_to(&mut self, target: BlockId) -> Result<(), InterpError> {
        {
            let frame = self.frames.last_mut().expect("active");
            frame.prev_block = Some(frame.block);
            frame.block = target;
            frame.idx = 0;
        }
        let (pb, blk) = {
            let f = self.frames.last().expect("active");
            (f.prev_block, f.block)
        };
        self.run_phis(pb, blk)
    }

    /// Evaluates the phis at the head of `block` in parallel, then skips
    /// past them.
    fn run_phis(&mut self, prev: Option<BlockId>, block: BlockId) -> Result<(), InterpError> {
        let fid = self.frames.last().expect("active").func;
        let func = self.module.function(fid);
        let mut assignments: Vec<(ValueId, u64)> = Vec::new();
        let mut nphis = 0usize;
        for &i in func.block(block).insts() {
            if func.inst(i).opcode() != Opcode::Phi {
                break;
            }
            nphis += 1;
            // Verified modules guarantee both of these; on a malformed
            // module we degrade to a software trap instead of aborting.
            let Some(incoming) = prev.and_then(|pb| func.phi_incoming(i, pb)) else {
                return Err(self.trap(TrapKind::Software));
            };
            let v = self.value(incoming);
            let Some(result) = func.inst_result(i) else {
                return Err(self.trap(TrapKind::Software));
            };
            assignments.push((result, v));
        }
        let frame = self.frames.last_mut().expect("active");
        for (k, v) in assignments {
            frame.values.insert(k, v);
        }
        frame.idx = nphis;
        Ok(())
    }

    fn eval_gep(&mut self, ops: &[ValueId]) -> Result<u64, InterpError> {
        let tt = self.module.types();
        let cfg = self.module.target();
        let mut addr = self.value(ops[0]);
        let mut cur = tt.pointee(self.vty(ops[0])).expect("gep base");
        let frame_func = self.module.function(self.frames.last().expect("active").func);
        for (i, &idx) in ops[1..].iter().enumerate() {
            if i == 0 {
                let k = self.value(idx) as i64;
                addr = addr.wrapping_add((k * cfg.size_of(tt, cur) as i64) as u64);
                continue;
            }
            match tt.kind(cur).clone() {
                TypeKind::Array { elem, .. } => {
                    let k = self.value(idx) as i64;
                    addr = addr.wrapping_add((k * cfg.size_of(tt, elem) as i64) as u64);
                    cur = elem;
                }
                TypeKind::LiteralStruct(_) | TypeKind::Struct(_) => {
                    let field = frame_func
                        .value_as_const(idx)
                        .and_then(Constant::as_int_bits)
                        .expect("struct index constant") as usize;
                    addr = addr.wrapping_add(cfg.field_offset(tt, cur, field));
                    cur = tt.struct_fields(cur).expect("defined")[field];
                }
                _ => return Err(self.trap(TrapKind::MemoryFault)),
            }
        }
        Ok(addr)
    }
}

/// Standard trap numbering used by `llva.trap.register` (§3.5).
pub fn trap_number(kind: TrapKind) -> u32 {
    match kind {
        TrapKind::MemoryFault => 1,
        TrapKind::DivideByZero => 2,
        TrapKind::UnhandledUnwind => 3,
        TrapKind::Software => 4,
        TrapKind::PrivilegeViolation => 5,
        TrapKind::BadFunctionPointer => 6,
        TrapKind::StackOverflow => 7,
    }
}

pub(crate) fn from_bits(bits: u64, is32: bool) -> f64 {
    if is32 {
        f32::from_bits(bits as u32) as f64
    } else {
        f64::from_bits(bits)
    }
}

pub(crate) fn to_bits(v: f64, is32: bool) -> u64 {
    if is32 {
        (v as f32).to_bits() as u64
    } else {
        v.to_bits()
    }
}

/// Canonicalizing integer binary op; `None` = division by zero.
pub(crate) fn int_binary(op: Opcode, a: u64, b: u64, width: u32, signed: bool) -> Option<u64> {
    let raw = match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::Div => {
            if b == 0 {
                return None;
            }
            if signed {
                (a as i64).wrapping_div(b as i64) as u64
            } else {
                a / b
            }
        }
        Opcode::Rem => {
            if b == 0 {
                return None;
            }
            if signed {
                (a as i64).wrapping_rem(b as i64) as u64
            } else {
                a % b
            }
        }
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.wrapping_shl((b & 63) as u32),
        Opcode::Shr => {
            if signed {
                ((a as i64).wrapping_shr((b & 63) as u32)) as u64
            } else {
                a.wrapping_shr((b & 63) as u32)
            }
        }
        _ => unreachable!(),
    };
    Some(canonicalize(raw, width, signed))
}

pub(crate) fn canonicalize(v: u64, width: u32, signed: bool) -> u64 {
    if width >= 64 {
        return v;
    }
    if signed {
        llva_core::eval::sign_extend(v, width) as u64
    } else {
        llva_core::eval::truncate(v, width)
    }
}

pub(crate) fn compare(
    op: Opcode,
    a: u64,
    b: u64,
    tt: &llva_core::types::TypeTable,
    ty: TypeId,
) -> bool {
    use std::cmp::Ordering;
    let ord = if tt.is_float(ty) {
        let is32 = matches!(tt.kind(ty), TypeKind::Float);
        let (x, y) = (from_bits(a, is32), from_bits(b, is32));
        match x.partial_cmp(&y) {
            Some(o) => o,
            None => return matches!(op, Opcode::SetNe),
        }
    } else if tt.is_signed_integer(ty) {
        (a as i64).cmp(&(b as i64))
    } else {
        a.cmp(&b)
    };
    match op {
        Opcode::SetEq => ord == Ordering::Equal,
        Opcode::SetNe => ord != Ordering::Equal,
        Opcode::SetLt => ord == Ordering::Less,
        Opcode::SetGt => ord == Ordering::Greater,
        Opcode::SetLe => ord != Ordering::Greater,
        Opcode::SetGe => ord != Ordering::Less,
        _ => unreachable!(),
    }
}

/// Runtime value cast, mirroring [`llva_core::eval::fold_cast`].
pub fn cast_value(
    tt: &llva_core::types::TypeTable,
    from: TypeId,
    to: TypeId,
    v: u64,
) -> u64 {
    let to_kind = tt.kind(to).clone();
    // float source?
    if tt.is_float(from) {
        let is32 = matches!(tt.kind(from), TypeKind::Float);
        let x = from_bits(v, is32);
        return match to_kind {
            TypeKind::Float => to_bits(x, true),
            TypeKind::Double => to_bits(x, false),
            TypeKind::Bool => u64::from(x != 0.0),
            _ if tt.is_integer(to) => {
                let w = tt.int_bits(to).expect("int");
                let raw = if tt.is_signed_integer(to) {
                    (x as i64) as u64
                } else {
                    x as u64
                };
                canonicalize(raw, w, tt.is_signed_integer(to))
            }
            _ => v,
        };
    }
    // integer / bool / pointer source (canonical u64)
    match to_kind {
        TypeKind::Bool => u64::from(v != 0),
        TypeKind::Float => to_bits(int_as_f64(tt, from, v), true),
        TypeKind::Double => to_bits(int_as_f64(tt, from, v), false),
        TypeKind::Pointer(_) => v,
        _ if tt.is_integer(to) => {
            let w = tt.int_bits(to).expect("int");
            canonicalize(v, w, tt.is_signed_integer(to))
        }
        _ => v,
    }
}

fn int_as_f64(tt: &llva_core::types::TypeTable, from: TypeId, v: u64) -> f64 {
    if tt.is_signed_integer(from) {
        v as i64 as f64
    } else {
        v as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interp_run(src: &str, entry: &str, args: &[u64]) -> Result<u64, InterpError> {
        let m = llva_core::parser::parse_module(src).expect("parses");
        llva_core::verifier::verify_module(&m).expect("verifies");
        let mut i = Interpreter::new(&m);
        i.run(entry, args)
    }

    #[test]
    fn fib() {
        let r = interp_run(
            r#"
int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}
"#,
            "fib",
            &[12],
        );
        assert_eq!(r, Ok(144));
    }

    #[test]
    fn loop_with_phis() {
        let r = interp_run(
            r#"
int %sum(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %s2 = add int %s, %i
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#,
            "sum",
            &[100],
        );
        assert_eq!(r, Ok(4950));
    }

    #[test]
    fn swap_phis_are_parallel() {
        // classic swap problem: a,b = b,a each iteration
        let r = interp_run(
            r#"
int %swap(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %a = phi int [ 1, %entry ], [ %b, %body ]
    %b = phi int [ 2, %entry ], [ %a, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %a
}
"#,
            "swap",
            &[3],
        );
        // after 3 swaps starting at (1,2): a = 2
        assert_eq!(r, Ok(2));
    }

    #[test]
    fn memory_and_gep() {
        let r = interp_run(
            r#"
%Pair = type { int, long }

long %main() {
entry:
    %p = alloca %Pair
    %f0 = getelementptr %Pair* %p, long 0, ubyte 0
    %f1 = getelementptr %Pair* %p, long 0, ubyte 1
    store int 7, int* %f0
    store long 35, long* %f1
    %a = load int* %f0
    %b = load long* %f1
    %aw = cast int %a to long
    %s = add long %aw, %b
    ret long %s
}
"#,
            "main",
            &[],
        );
        assert_eq!(r, Ok(42));
    }

    #[test]
    fn precise_divide_trap() {
        let r = interp_run(
            r#"
int %main(int %x) {
entry:
    %q = div int 10, %x
    ret int %q
}
"#,
            "main",
            &[0],
        );
        match r {
            Err(InterpError::Trap(t)) => {
                assert_eq!(t.kind, TrapKind::DivideByZero);
                assert_eq!(t.function, "main");
                assert_eq!(t.block, "entry");
                assert_eq!(t.index, 0);
            }
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn noexc_div_suppressed() {
        let r = interp_run(
            r#"
int %main(int %x) {
entry:
    %q = div [noexc] int 10, %x
    ret int %q
}
"#,
            "main",
            &[0],
        );
        assert_eq!(r, Ok(0));
    }

    #[test]
    fn null_load_traps_precisely() {
        let r = interp_run(
            r#"
int %main() {
entry:
    %p = cast long 0 to int*
    %v = load int* %p
    ret int %v
}
"#,
            "main",
            &[],
        );
        match r {
            Err(InterpError::Trap(t)) => assert_eq!(t.kind, TrapKind::MemoryFault),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn invoke_and_unwind() {
        let r = interp_run(
            r#"
void %risky(int %x) {
entry:
    %c = setgt int %x, 0
    br bool %c, label %boom, label %ok
boom:
    unwind
ok:
    ret void
}

int %main(int %x) {
entry:
    invoke void %risky(int %x) to label %fine unwind label %caught
fine:
    ret int 0
caught:
    ret int 1
}
"#,
            "main",
            &[1],
        );
        assert_eq!(r, Ok(1));
    }

    #[test]
    fn intrinsic_io() {
        let m = llva_core::parser::parse_module(
            r#"
declare int %llva.io.putchar(int)

int %main() {
entry:
    %a = call int %llva.io.putchar(int 104)
    %b = call int %llva.io.putchar(int 105)
    ret int 0
}
"#,
        )
        .expect("parses");
        let mut i = Interpreter::new(&m);
        assert_eq!(i.run("main", &[]), Ok(0));
        assert_eq!(i.env.stdout_string(), "hi");
    }

    #[test]
    fn trap_handler_runs_on_fault() {
        let m = llva_core::parser::parse_module(
            r#"
declare int %llva.io.putchar(int)
declare int %llva.priv.set(bool)
declare int %llva.trap.register(int, void (int, sbyte*)*)

void %handler(int %no, sbyte* %info) {
entry:
    %c = add int %no, 64
    %x = call int %llva.io.putchar(int %c)
    ret void
}

int %main() {
entry:
    %p = call int %llva.priv.set(bool true)
    %r = call int %llva.trap.register(int 2, void (int, sbyte*)* %handler)
    %q = div int 1, 0
    ret int %q
}
"#,
        )
        .expect("parses");
        let mut i = Interpreter::new(&m);
        i.env.privileged = true; // boot as kernel so priv.set is legal
        let r = i.run("main", &[]);
        assert!(matches!(r, Err(InterpError::Trap(t)) if t.kind == TrapKind::DivideByZero));
        // handler printed 'B' (64 + trap number 2)
        assert_eq!(i.env.stdout_string(), "B");
    }

    #[test]
    fn fuel_limit() {
        let m = llva_core::parser::parse_module(
            r#"
int %main() {
entry:
    br label %entry2
entry2:
    br label %entry
}
"#,
        )
        .expect("parses");
        let mut i = Interpreter::new(&m);
        i.set_fuel(1000);
        assert_eq!(i.run("main", &[]), Err(InterpError::OutOfFuel));
    }
}
