//! The 28-instruction LLVA instruction set (paper §3.1, Table 1).
//!
//! | Category     | Instructions |
//! |--------------|--------------|
//! | arithmetic   | `add, sub, mul, div, rem` |
//! | bitwise      | `and, or, xor, shl, shr` |
//! | comparison   | `seteq, setne, setlt, setgt, setle, setge` |
//! | control-flow | `ret, br, mbr, invoke, unwind` |
//! | memory       | `load, store, getelementptr, alloca` |
//! | other        | `cast, call, phi` |
//!
//! Every instruction carries the `ExceptionsEnabled` attribute from §3.3:
//! exceptions raised while it is `false` are ignored, which gives the
//! translator reordering freedom. It defaults to `true` only for `load`,
//! `store` and `div`.

use crate::function::BlockId;
use crate::value::ValueId;
use std::fmt;

/// A handle to an instruction within a function's instruction arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(u32);

impl InstId {
    /// Raw index into the owning function's instruction arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a handle from a raw index.
    pub fn from_index(index: usize) -> InstId {
        InstId(u32::try_from(index).expect("instruction index overflow"))
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// One of the 28 LLVA opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    /// Integer or floating addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (traps on integer divide-by-zero when exceptions enabled).
    Div,
    /// Remainder.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left.
    Shl,
    /// Shift right (arithmetic for signed types, logical for unsigned).
    Shr,
    /// Equality comparison, yields `bool`.
    SetEq,
    /// Inequality comparison.
    SetNe,
    /// Less-than comparison.
    SetLt,
    /// Greater-than comparison.
    SetGt,
    /// Less-or-equal comparison.
    SetLe,
    /// Greater-or-equal comparison.
    SetGe,
    /// Function return, with optional value operand.
    Ret,
    /// Branch: unconditional (one target) or conditional (bool + two targets).
    Br,
    /// Multi-way branch on an integer value with a case table and default.
    Mbr,
    /// Call with exceptional control flow: normal and unwind successors.
    Invoke,
    /// Unwind the stack to the nearest enclosing `invoke`.
    Unwind,
    /// Load a scalar from memory.
    Load,
    /// Store a scalar to memory.
    Store,
    /// Typed pointer arithmetic over struct fields and array elements.
    GetElementPtr,
    /// Allocate stack memory, yielding a typed pointer.
    Alloca,
    /// Explicit type conversion (the sole coercion mechanism).
    Cast,
    /// Function call through a function-pointer value.
    Call,
    /// SSA merge of values flowing in from predecessor blocks.
    Phi,
}

impl Opcode {
    /// All 28 opcodes, in the paper's Table 1 order.
    pub const ALL: [Opcode; 28] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Rem,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::SetEq,
        Opcode::SetNe,
        Opcode::SetLt,
        Opcode::SetGt,
        Opcode::SetLe,
        Opcode::SetGe,
        Opcode::Ret,
        Opcode::Br,
        Opcode::Mbr,
        Opcode::Invoke,
        Opcode::Unwind,
        Opcode::Load,
        Opcode::Store,
        Opcode::GetElementPtr,
        Opcode::Alloca,
        Opcode::Cast,
        Opcode::Call,
        Opcode::Phi,
    ];

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::Rem => "rem",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::SetEq => "seteq",
            Opcode::SetNe => "setne",
            Opcode::SetLt => "setlt",
            Opcode::SetGt => "setgt",
            Opcode::SetLe => "setle",
            Opcode::SetGe => "setge",
            Opcode::Ret => "ret",
            Opcode::Br => "br",
            Opcode::Mbr => "mbr",
            Opcode::Invoke => "invoke",
            Opcode::Unwind => "unwind",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::GetElementPtr => "getelementptr",
            Opcode::Alloca => "alloca",
            Opcode::Cast => "cast",
            Opcode::Call => "call",
            Opcode::Phi => "phi",
        }
    }

    /// Parses a mnemonic back into an opcode.
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Opcode::ALL.iter().copied().find(|op| op.mnemonic() == s)
    }

    /// A stable numeric encoding used by the bytecode format.
    pub fn encoding(self) -> u8 {
        Opcode::ALL
            .iter()
            .position(|&op| op == self)
            .expect("opcode present in ALL") as u8
    }

    /// Inverse of [`encoding`](Opcode::encoding).
    pub fn from_encoding(byte: u8) -> Option<Opcode> {
        Opcode::ALL.get(byte as usize).copied()
    }

    /// Whether this opcode terminates a basic block (paper §3.1: each
    /// block ends in exactly one control-flow instruction).
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Opcode::Ret | Opcode::Br | Opcode::Mbr | Opcode::Invoke | Opcode::Unwind
        )
    }

    /// Whether this is one of the two-operand arithmetic/bitwise ops.
    pub fn is_binary(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::Div
                | Opcode::Rem
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::Shr
        )
    }

    /// Whether this is one of the six `set*` comparisons.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            Opcode::SetEq
                | Opcode::SetNe
                | Opcode::SetLt
                | Opcode::SetGt
                | Opcode::SetLe
                | Opcode::SetGe
        )
    }

    /// Default value of the `ExceptionsEnabled` attribute (§3.3): `true`
    /// for `load`, `store` and `div`; `false` for everything else.
    pub fn default_exceptions_enabled(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store | Opcode::Div)
    }

    /// Whether the instruction may read or write memory (used by DCE and
    /// code motion legality).
    pub fn touches_memory(self) -> bool {
        matches!(
            self,
            Opcode::Load | Opcode::Store | Opcode::Call | Opcode::Invoke
        )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One LLVA instruction: an opcode, a result type, value operands, and —
/// for control flow and `phi` — block operands.
///
/// Operand conventions:
///
/// * binary / comparison: `[lhs, rhs]`
/// * `ret`: `[]` or `[value]`
/// * `br`: unconditional `[]` + blocks `[dest]`; conditional `[cond]` +
///   blocks `[then, else]`
/// * `mbr`: `[discriminant, case0, case1, …]` (cases are integer
///   constants) + blocks `[default, target0, target1, …]`
/// * `invoke`: `[callee, args…]` + blocks `[normal, unwind]`
/// * `unwind`: `[]`
/// * `load`: `[ptr]`; `store`: `[value, ptr]`
/// * `getelementptr`: `[ptr, idx0, idx1, …]`
/// * `alloca`: `[]` or `[count]`; result type is the pointer
/// * `cast`: `[value]`; result type is the destination type
/// * `call`: `[callee, args…]`
/// * `phi`: `[v0, v1, …]` + blocks `[pred0, pred1, …]` (parallel)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instruction {
    opcode: Opcode,
    ty: crate::types::TypeId,
    operands: Vec<ValueId>,
    blocks: Vec<BlockId>,
    exceptions_enabled: bool,
}

impl Instruction {
    /// Creates an instruction with the opcode's default
    /// `ExceptionsEnabled` attribute.
    pub fn new(
        opcode: Opcode,
        ty: crate::types::TypeId,
        operands: Vec<ValueId>,
        blocks: Vec<BlockId>,
    ) -> Instruction {
        Instruction {
            opcode,
            ty,
            operands,
            blocks,
            exceptions_enabled: opcode.default_exceptions_enabled(),
        }
    }

    /// The opcode.
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// The result type (`void` when the instruction produces no value).
    pub fn result_type(&self) -> crate::types::TypeId {
        self.ty
    }

    /// The value operands.
    pub fn operands(&self) -> &[ValueId] {
        &self.operands
    }

    /// Mutable access to the value operands (used by
    /// replace-all-uses-with during optimization).
    pub fn operands_mut(&mut self) -> &mut [ValueId] {
        &mut self.operands
    }

    /// The block operands (branch targets / phi predecessors).
    pub fn block_operands(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Mutable access to the block operands (used by CFG edits).
    pub fn block_operands_mut(&mut self) -> &mut [BlockId] {
        &mut self.blocks
    }

    /// Replaces the full operand list (used by phi pruning).
    pub fn set_operands(&mut self, operands: Vec<ValueId>) {
        self.operands = operands;
    }

    /// Replaces the full block-operand list (used by phi pruning).
    pub fn set_block_operands(&mut self, blocks: Vec<BlockId>) {
        self.blocks = blocks;
    }

    /// The `ExceptionsEnabled` attribute (§3.3).
    pub fn exceptions_enabled(&self) -> bool {
        self.exceptions_enabled
    }

    /// Overrides the `ExceptionsEnabled` attribute. Static compilers may
    /// set it to `false` for operations whose exceptions a language
    /// ignores, or `true` to force precise trapping.
    pub fn set_exceptions_enabled(&mut self, enabled: bool) {
        self.exceptions_enabled = enabled;
    }

    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        self.opcode.is_terminator()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_has_exactly_28_instructions() {
        assert_eq!(Opcode::ALL.len(), 28);
    }

    #[test]
    fn mnemonic_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn encoding_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_encoding(op.encoding()), Some(op));
        }
        assert_eq!(Opcode::from_encoding(28), None);
        assert_eq!(Opcode::from_encoding(255), None);
    }

    #[test]
    fn terminators_are_the_control_flow_category() {
        let terms: Vec<Opcode> = Opcode::ALL.iter().copied().filter(|o| o.is_terminator()).collect();
        assert_eq!(
            terms,
            vec![Opcode::Ret, Opcode::Br, Opcode::Mbr, Opcode::Invoke, Opcode::Unwind]
        );
    }

    #[test]
    fn default_exceptions_enabled_matches_paper() {
        // §3.3: true by default for load, store and div; false otherwise.
        for op in Opcode::ALL {
            let expected = matches!(op, Opcode::Load | Opcode::Store | Opcode::Div);
            assert_eq!(op.default_exceptions_enabled(), expected, "{op}");
        }
    }

    #[test]
    fn category_counts_match_table_1() {
        let binary = Opcode::ALL.iter().filter(|o| o.is_binary()).count();
        let cmp = Opcode::ALL.iter().filter(|o| o.is_comparison()).count();
        let term = Opcode::ALL.iter().filter(|o| o.is_terminator()).count();
        assert_eq!(binary, 10); // arithmetic (5) + bitwise (5)
        assert_eq!(cmp, 6);
        assert_eq!(term, 5);
        // memory (4) + other (3) = the remaining 7
        assert_eq!(Opcode::ALL.len() - binary - cmp - term, 7);
    }
}
