//! `llva-dis` — disassemble virtual object code to LLVA assembly.
//!
//! Usage: `llva-dis input.bc [-o output.ll]` (default: stdout)

use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut output = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "-o" {
            output = it.next().cloned();
        } else if a == "-h" || a == "--help" {
            eprintln!("usage: llva-dis input.bc [-o output.ll]");
            exit(0);
        } else {
            input = Some(a.clone());
        }
    }
    let Some(input) = input else {
        eprintln!("usage: llva-dis input.bc [-o output.ll]");
        exit(1);
    };
    let bytes = match std::fs::read(&input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("llva-dis: cannot read {input}: {e}");
            exit(1);
        }
    };
    let module = match llva::core::bytecode::decode_module(&bytes) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("llva-dis: {input}: {e}");
            exit(1);
        }
    };
    let text = llva::core::printer::print_module(&module);
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("llva-dis: cannot write {path}: {e}");
                exit(1);
            }
        }
        None => print!("{text}"),
    }
}
