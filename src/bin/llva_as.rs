//! `llva-as` — assemble LLVA textual assembly into virtual object code.
//!
//! Usage: `llva-as input.ll [-o output.bc]`

use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (input, output) = parse_args(&args);
    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("llva-as: cannot read {input}: {e}");
            exit(1);
        }
    };
    let module = match llva::core::parser::parse_module(&src) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("llva-as: {input}: {e}");
            exit(1);
        }
    };
    if let Err(e) = llva::core::verifier::verify_module(&module) {
        eprintln!("llva-as: {input}: {e}");
        exit(1);
    }
    let bytes = llva::core::bytecode::encode_module(&module);
    if let Err(e) = std::fs::write(&output, &bytes) {
        eprintln!("llva-as: cannot write {output}: {e}");
        exit(1);
    }
    let stats = llva::core::bytecode::encoding_stats(&module);
    eprintln!(
        "llva-as: {} -> {} ({} bytes, {} small / {} extended instructions)",
        input, output, bytes.len(), stats.small_insts, stats.extended_insts
    );
}

fn parse_args(args: &[String]) -> (String, String) {
    let mut input = None;
    let mut output = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "-o" {
            output = it.next().cloned();
        } else if a == "-h" || a == "--help" {
            eprintln!("usage: llva-as input.ll [-o output.bc]");
            exit(0);
        } else {
            input = Some(a.clone());
        }
    }
    let Some(input) = input else {
        eprintln!("usage: llva-as input.ll [-o output.bc]");
        exit(1);
    };
    let output = output.unwrap_or_else(|| {
        input.strip_suffix(".ll").unwrap_or(&input).to_string() + ".bc"
    });
    (input, output)
}
