//! Types shared by both simulated hardware processors.

use llva_core::intrinsics::Intrinsic;
use std::fmt;

/// Width of a memory access, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl Width {
    /// Number of bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }

    /// The width needed for a value of `bytes` size.
    ///
    /// # Panics
    ///
    /// Panics on sizes other than 1, 2, 4, 8.
    pub fn from_bytes(bytes: u64) -> Width {
        match bytes {
            1 => Width::B1,
            2 => Width::B2,
            4 => Width::B4,
            8 => Width::B8,
            other => panic!("unsupported access width {other}"),
        }
    }

    /// A stable encoding tag.
    pub fn tag(self) -> u8 {
        match self {
            Width::B1 => 0,
            Width::B2 => 1,
            Width::B4 => 2,
            Width::B8 => 3,
        }
    }

    /// Inverse of [`tag`](Width::tag).
    pub fn from_tag(tag: u8) -> Option<Width> {
        Some(match tag {
            0 => Width::B1,
            1 => Width::B2,
            2 => Width::B4,
            3 => Width::B8,
            _ => return None,
        })
    }
}

/// A symbolic reference resolved at load/relocation time (paper §4.1:
/// "LLEE performs relocation as necessary on the native code").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sym {
    /// Address of global variable `n` of the module.
    Global(u32),
    /// "Address" of function `n` (an index into the program's function
    /// table, tagged so it is distinguishable from data addresses).
    Function(u32),
}

/// Hardware trap kinds raised by the simulated processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// Load/store through a null or unmapped address.
    MemoryFault,
    /// Integer division by zero.
    DivideByZero,
    /// `unwind` executed with no active `invoke` frame.
    UnhandledUnwind,
    /// Explicit trap raised via `llva.trap.raise`.
    Software,
    /// Unprivileged use of a privileged intrinsic (§3.5).
    PrivilegeViolation,
    /// Executed an indirect call through a non-function value.
    BadFunctionPointer,
    /// Stack overflow (frame allocation exhausted the stack segment).
    StackOverflow,
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrapKind::MemoryFault => "memory fault",
            TrapKind::DivideByZero => "divide by zero",
            TrapKind::UnhandledUnwind => "unhandled unwind",
            TrapKind::Software => "software trap",
            TrapKind::PrivilegeViolation => "privilege violation",
            TrapKind::BadFunctionPointer => "bad function pointer",
            TrapKind::StackOverflow => "stack overflow",
        };
        f.write_str(s)
    }
}

/// A precise trap: what happened and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trap {
    /// The trap kind.
    pub kind: TrapKind,
    /// Function index at the trap point.
    pub function: u32,
    /// Instruction index within the function.
    pub pc: u32,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at fn{}+{}", self.kind, self.function, self.pc)
    }
}

impl std::error::Error for Trap {}

/// Why a machine stopped running.
#[derive(Debug, Clone, PartialEq)]
pub enum Exit {
    /// The outermost function returned with this raw value.
    Halt(u64),
    /// A call targeted function `index`, whose native code is not yet
    /// installed. The execution engine translates it and resumes
    /// (JIT-on-demand, §4.1).
    NeedFunction(u32),
    /// An intrinsic call; the engine services it and resumes with a
    /// return value.
    Intrinsic {
        /// Which intrinsic.
        which: Intrinsic,
        /// Raw argument values (calling-convention independent).
        args: Vec<u64>,
    },
    /// A hardware trap was raised.
    Trapped(Trap),
    /// Executed more than the configured fuel limit (runaway guard).
    OutOfFuel,
}

/// Per-run execution statistics — the simulator's "performance counters".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Simulated cycles (simple per-opcode cost model).
    pub cycles: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Calls executed (including intrinsics).
    pub calls: u64,
    /// Taken branches.
    pub taken_branches: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_round_trip() {
        for w in [Width::B1, Width::B2, Width::B4, Width::B8] {
            assert_eq!(Width::from_tag(w.tag()), Some(w));
            assert_eq!(Width::from_bytes(w.bytes()), w);
        }
        assert_eq!(Width::from_tag(9), None);
    }

    #[test]
    fn trap_display() {
        let t = Trap {
            kind: TrapKind::DivideByZero,
            function: 3,
            pc: 7,
        };
        assert_eq!(t.to_string(), "divide by zero at fn3+7");
    }
}
