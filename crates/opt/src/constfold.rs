//! Constant folding and algebraic simplification.
//!
//! Folds binary / comparison / cast instructions over constant operands
//! using the shared evaluator in [`llva_core::eval`], simplifies a few
//! algebraic identities (`x+0`, `x*1`, `x*0` when exception-free,
//! `x-x`), collapses `phi`s whose incomings agree, and turns
//! constant-condition `br`s into unconditional branches (the dead edge
//! is cleaned up by `simplifycfg`).

use crate::pass::ModulePass;
use llva_core::eval;
use llva_core::instruction::{InstId, Opcode};
use llva_core::module::Module;
use llva_core::value::{Constant, ValueId};

/// The folding pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstFold {
    folded: usize,
}

impl ConstFold {
    /// Creates the pass.
    pub fn new() -> ConstFold {
        ConstFold::default()
    }

    /// Number of instructions folded or simplified in the last run.
    pub fn folded(&self) -> usize {
        self.folded
    }
}

impl ModulePass for ConstFold {
    fn name(&self) -> &'static str {
        "constfold"
    }

    fn run(&mut self, module: &mut Module) -> bool {
        self.folded = 0;
        for fid in module.function_ids() {
            if module.function(fid).is_declaration() {
                continue;
            }
            loop {
                let mut changed = false;
                let worklist: Vec<InstId> = module
                    .function(fid)
                    .inst_iter()
                    .map(|(_, i)| i)
                    .collect();
                for inst_id in worklist {
                    if module.function(fid).inst_parent(inst_id).is_none() {
                        continue; // removed during this sweep
                    }
                    if let Some(n) = fold_one(module, fid, inst_id) {
                        self.folded += n;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        self.folded > 0
    }
}

/// Attempts to fold/simplify one instruction; returns how many
/// simplifications were applied (for statistics).
fn fold_one(module: &mut Module, fid: llva_core::module::FuncId, inst_id: InstId) -> Option<usize> {
    let func = module.function(fid);
    let inst = func.inst(inst_id);
    let op = inst.opcode();
    let ops = inst.operands().to_vec();

    let as_const = |v: ValueId| func.value_as_const(v).copied();

    if op.is_binary() {
        let (a, b) = (ops[0], ops[1]);
        let (ca, cb) = (as_const(a), as_const(b));
        // full fold
        if let (Some(ca), Some(cb)) = (ca, cb) {
            if let Some(c) = eval::fold_binary(module.types(), op, &ca, &cb) {
                replace_with_const(module, fid, inst_id, c);
                return Some(1);
            }
        }
        // algebraic identities (integer only, trap-safe)
        let types = module.types();
        let bool_ty = None
            .or_else(|| {
                types
                    .iter()
                    .find(|(_, k)| matches!(k, llva_core::types::TypeKind::Bool))
                    .map(|(id, _)| id)
            })
            .unwrap_or_else(|| llva_core::types::TypeId::from_index((u32::MAX - 1) as usize));
        let ty = func.value_type(a, bool_ty);
        if types.is_integer(ty) {
            let is_zero = |c: Option<Constant>| matches!(c, Some(Constant::Int { bits: 0, .. }));
            let is_one = |c: Option<Constant>| matches!(c, Some(Constant::Int { bits: 1, .. }));
            let replacement = match op {
                Opcode::Add if is_zero(cb) => Some(a),
                Opcode::Add if is_zero(ca) => Some(b),
                Opcode::Sub if is_zero(cb) => Some(a),
                Opcode::Mul if is_one(cb) => Some(a),
                Opcode::Mul if is_one(ca) => Some(b),
                Opcode::Or | Opcode::Xor if is_zero(cb) => Some(a),
                Opcode::Shl | Opcode::Shr if is_zero(cb) => Some(a),
                Opcode::Div if is_one(cb) => Some(a),
                Opcode::Sub if a == b => None, // handled below as constant 0
                _ => None,
            };
            if let Some(r) = replacement {
                replace_with_value(module, fid, inst_id, r);
                return Some(1);
            }
            if op == Opcode::Sub && a == b {
                let c = Constant::Int { ty, bits: 0 };
                replace_with_const(module, fid, inst_id, c);
                return Some(1);
            }
            if op == Opcode::Mul && (is_zero(ca) || is_zero(cb)) {
                let c = Constant::Int { ty, bits: 0 };
                replace_with_const(module, fid, inst_id, c);
                return Some(1);
            }
        }
        return None;
    }

    if op.is_comparison() {
        if let (Some(ca), Some(cb)) = (as_const(ops[0]), as_const(ops[1])) {
            if let Some(c) = eval::fold_compare(module.types(), op, &ca, &cb) {
                replace_with_const(module, fid, inst_id, c);
                return Some(1);
            }
        }
        return None;
    }

    match op {
        Opcode::Cast => {
            let to = inst.result_type();
            if let Some(cv) = as_const(ops[0]) {
                if let Some(c) = eval::fold_cast(module.types(), &cv, to) {
                    replace_with_const(module, fid, inst_id, c);
                    return Some(1);
                }
            }
            // cast to the same type is the identity
            let bool_ty = module.types().iter().find_map(|(id, k)| {
                matches!(k, llva_core::types::TypeKind::Bool).then_some(id)
            });
            if let Some(bt) = bool_ty.or(Some(to)) {
                let from_ty = module.function(fid).value_type(ops[0], bt);
                if from_ty == to {
                    replace_with_value(module, fid, inst_id, ops[0]);
                    return Some(1);
                }
            }
            None
        }
        Opcode::Phi => {
            // collapse when all incomings are the same value (or the phi
            // itself — a self-loop)
            let result = module.function(fid).inst_result(inst_id)?;
            let mut unique: Option<ValueId> = None;
            for &v in &ops {
                if v == result {
                    continue;
                }
                match unique {
                    None => unique = Some(v),
                    Some(u) if u == v => {}
                    Some(_) => return None,
                }
            }
            let u = unique?;
            replace_with_value(module, fid, inst_id, u);
            Some(1)
        }
        Opcode::Br if ops.len() == 1 => {
            // constant condition -> unconditional branch
            let c = as_const(ops[0])?;
            let Constant::Bool(flag) = c else { return None };
            let func = module.function_mut(fid);
            let targets = func.inst(inst_id).block_operands().to_vec();
            let dest = if flag { targets[0] } else { targets[1] };
            func.inst_mut(inst_id).set_operands(vec![]);
            func.inst_mut(inst_id).set_block_operands(vec![dest]);
            Some(1)
        }
        Opcode::Mbr => {
            // constant discriminant -> unconditional branch
            let c = as_const(ops[0])?;
            let bits = c.as_int_bits()?;
            let func = module.function_mut(fid);
            let inst = func.inst(inst_id);
            let blocks = inst.block_operands().to_vec();
            let mut dest = blocks[0];
            for (i, &case) in ops[1..].iter().enumerate() {
                if let Some(cc) = func.value_as_const(case) {
                    if cc.as_int_bits() == Some(bits) {
                        dest = blocks[1 + i];
                        break;
                    }
                }
            }
            let old = func.inst(inst_id).clone();
            let _ = old;
            let new = llva_core::instruction::Instruction::new(
                Opcode::Br,
                func.inst(inst_id).result_type(),
                vec![],
                vec![dest],
            );
            *func.inst_mut(inst_id) = new;
            Some(1)
        }
        _ => None,
    }
}

fn replace_with_const(
    module: &mut Module,
    fid: llva_core::module::FuncId,
    inst_id: InstId,
    c: Constant,
) {
    let func = module.function_mut(fid);
    let cv = func.constant(c);
    replace_with_value(module, fid, inst_id, cv);
}

fn replace_with_value(
    module: &mut Module,
    fid: llva_core::module::FuncId,
    inst_id: InstId,
    v: ValueId,
) {
    let func = module.function_mut(fid);
    if let Some(result) = func.inst_result(inst_id) {
        func.replace_all_uses(result, v);
    }
    func.remove_inst(inst_id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_core::builder::FunctionBuilder;
    use llva_core::layout::TargetConfig;
    use llva_core::verifier::verify_module;

    #[test]
    fn folds_constant_expression_tree() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let two = b.iconst(int, 2);
        let three = b.iconst(int, 3);
        let five = b.add(two, three); // 5
        let ten = b.mul(five, two); // 10
        b.ret(Some(ten));
        let mut pass = ConstFold::new();
        assert!(pass.run(&mut m));
        verify_module(&m).expect("verifies");
        let func = m.function(f);
        assert_eq!(func.num_insts(), 1);
        let ret = func.block(func.entry_block()).insts()[0];
        let rv = func.inst(ret).operands()[0];
        assert_eq!(
            func.value_as_const(rv).and_then(Constant::as_int_bits),
            Some(10)
        );
    }

    #[test]
    fn algebraic_identities() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let x = b.func().args()[0];
        let zero = b.iconst(int, 0);
        let one = b.iconst(int, 1);
        let a = b.add(x, zero); // = x
        let bv = b.mul(a, one); // = x
        let c = b.sub(bv, zero); // = x
        b.ret(Some(c));
        let mut pass = ConstFold::new();
        assert!(pass.run(&mut m));
        let func = m.function(f);
        assert_eq!(func.num_insts(), 1);
        let ret = func.block(func.entry_block()).insts()[0];
        assert_eq!(func.inst(ret).operands()[0], x);
    }

    #[test]
    fn x_minus_x_is_zero() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let x = b.func().args()[0];
        let d = b.sub(x, x);
        b.ret(Some(d));
        let mut pass = ConstFold::new();
        assert!(pass.run(&mut m));
        let func = m.function(f);
        let ret = func.block(func.entry_block()).insts()[0];
        let rv = func.inst(ret).operands()[0];
        assert_eq!(
            func.value_as_const(rv).and_then(Constant::as_int_bits),
            Some(0)
        );
    }

    #[test]
    fn constant_branch_becomes_unconditional() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        let t = b.block("t");
        let u = b.block("u");
        b.switch_to(e);
        let c = b.bconst(true);
        b.cond_br(c, t, u);
        b.switch_to(t);
        let one = b.iconst(int, 1);
        b.ret(Some(one));
        b.switch_to(u);
        let two = b.iconst(int, 2);
        b.ret(Some(two));
        let mut pass = ConstFold::new();
        assert!(pass.run(&mut m));
        let func = m.function(f);
        assert_eq!(func.successors(e), vec![t]);
    }

    #[test]
    fn mbr_with_constant_discriminant() {
        let src = r#"
int %f() {
entry:
    mbr int 1, label %other, [ int 0, label %zero ], [ int 1, label %one ]
zero:
    ret int 10
one:
    ret int 11
other:
    ret int 12
}
"#;
        let mut m = llva_core::parser::parse_module(src).expect("parses");
        let f = m.function_by_name("f").expect("f");
        let mut pass = ConstFold::new();
        assert!(pass.run(&mut m));
        let func = m.function(f);
        let e = func.entry_block();
        let succs = func.successors(e);
        assert_eq!(succs.len(), 1);
        assert_eq!(func.block(succs[0]).name(), "one");
    }

    #[test]
    fn comparison_folds() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let boolt = m.types_mut().bool();
        let f = m.add_function("f", boolt, vec![]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let two = b.iconst(int, 2);
        let three = b.iconst(int, 3);
        let c = b.setlt(two, three);
        b.ret(Some(c));
        let mut pass = ConstFold::new();
        assert!(pass.run(&mut m));
        let func = m.function(f);
        let ret = func.block(func.entry_block()).insts()[0];
        let rv = func.inst(ret).operands()[0];
        assert_eq!(func.value_as_const(rv), Some(&Constant::Bool(true)));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let one = b.iconst(int, 1);
        let zero = b.iconst(int, 0);
        let d = b.div(one, zero);
        b.ret(Some(d));
        let mut pass = ConstFold::new();
        assert!(!pass.run(&mut m));
        assert_eq!(m.function(f).num_insts(), 2);
    }
}
