//! minic analogs of the PtrDist benchmark suite (Austin et al. 1995),
//! the pointer-intensive half of the paper's Table 2. Each program
//! implements the original benchmark's core algorithm at reduced scale
//! (DESIGN.md substitution #3) and returns a checksum from `main`.

/// `ptrdist-anagram`: dictionary anagram finding — canonicalize words
/// by letter histogram and count anagram pairs.
pub const ANAGRAM: &str = r#"
// ptrdist-anagram analog: find anagram pairs in a generated dictionary.
int words[64][8];
int sigs[64][26];

int lcg(int seed) {
    return (seed * 1103515245 + 12345) % 2147483647;
}

void make_words() {
    int seed = 42;
    for (int w = 0; w < 64; w++) {
        for (int k = 0; k < 8; k++) {
            seed = lcg(seed);
            int letter = seed % 26;
            if (letter < 0) letter = -letter;
            words[w][k] = letter;
        }
    }
    // plant some anagrams: word 2i+1 is a rotation of word 2i for i < 8
    for (int i = 0; i < 8; i++) {
        for (int k = 0; k < 8; k++) {
            words[2 * i + 1][k] = words[2 * i][(k + 3) % 8];
        }
    }
}

void signature(int w) {
    for (int c = 0; c < 26; c++) sigs[w][c] = 0;
    for (int k = 0; k < 8; k++) {
        sigs[w][words[w][k]] += 1;
    }
}

int same_sig(int a, int b) {
    for (int c = 0; c < 26; c++) {
        if (sigs[a][c] != sigs[b][c]) return 0;
    }
    return 1;
}

int main() {
    make_words();
    for (int w = 0; w < 64; w++) signature(w);
    int pairs = 0;
    for (int a = 0; a < 64; a++) {
        for (int b = a + 1; b < 64; b++) {
            if (same_sig(a, b)) pairs++;
        }
    }
    return pairs;
}
"#;

/// `ptrdist-ks`: Kernighan–Schweikert graph partitioning — greedy gain
/// driven swaps between two partitions.
pub const KS: &str = r#"
// ptrdist-ks analog: graph bisection by pairwise-swap gain.
int adj[32][32];
int side[32];

int lcg(int seed) {
    return (seed * 1103515245 + 12345) % 2147483647;
}

void build_graph() {
    int seed = 7;
    for (int i = 0; i < 32; i++) {
        for (int j = i + 1; j < 32; j++) {
            seed = lcg(seed);
            int w = seed % 10;
            if (w < 0) w = -w;
            adj[i][j] = w;
            adj[j][i] = w;
        }
        side[i] = i % 2;
    }
}

int cut_cost() {
    int cost = 0;
    for (int i = 0; i < 32; i++) {
        for (int j = i + 1; j < 32; j++) {
            if (side[i] != side[j]) cost += adj[i][j];
        }
    }
    return cost;
}

int gain(int a, int b) {
    int before = 0;
    int after = 0;
    for (int k = 0; k < 32; k++) {
        if (k == a || k == b) continue;
        if (side[k] != side[a]) before += adj[a][k]; else after += adj[a][k];
        if (side[k] != side[b]) before += adj[b][k]; else after += adj[b][k];
    }
    return before - after;
}

int main() {
    build_graph();
    for (int pass = 0; pass < 4; pass++) {
        for (int a = 0; a < 32; a++) {
            for (int b = 0; b < 32; b++) {
                if (side[a] == side[b]) continue;
                if (gain(a, b) > 0) {
                    int t = side[a];
                    side[a] = side[b];
                    side[b] = t;
                }
            }
        }
    }
    return cut_cost();
}
"#;

/// `ptrdist-ft`: minimum spanning tree (the original computes a
/// Fibonacci-heap MST; this is Prim's with arrays).
pub const FT: &str = r#"
// ptrdist-ft analog: minimum spanning tree over a random graph.
int weight[64][64];
int intree[64];
int dist[64];

int lcg(int seed) {
    return (seed * 1103515245 + 12345) % 2147483647;
}

int main() {
    int seed = 5;
    for (int i = 0; i < 64; i++) {
        for (int j = i + 1; j < 64; j++) {
            seed = lcg(seed);
            int w = seed % 100;
            if (w < 0) w = -w;
            weight[i][j] = w + 1;
            weight[j][i] = w + 1;
        }
        intree[i] = 0;
        dist[i] = 1000000;
    }
    dist[0] = 0;
    int total = 0;
    for (int step = 0; step < 64; step++) {
        int best = -1;
        for (int v = 0; v < 64; v++) {
            if (!intree[v] && (best == -1 || dist[v] < dist[best])) best = v;
        }
        intree[best] = 1;
        total += dist[best];
        for (int v = 0; v < 64; v++) {
            if (!intree[v] && weight[best][v] < dist[v]) dist[v] = weight[best][v];
        }
    }
    return total;
}
"#;

/// `ptrdist-yacr2`: VLSI channel routing — greedy track assignment of
/// horizontal wire intervals with vertical-constraint checking.
pub const YACR2: &str = r#"
// ptrdist-yacr2 analog: greedy channel routing of wire intervals.
int lo[96];
int hi[96];
int track_of[96];
int track_end[96];

int lcg(int seed) {
    return (seed * 1103515245 + 12345) % 2147483647;
}

int main() {
    int seed = 11;
    for (int i = 0; i < 96; i++) {
        seed = lcg(seed);
        int a = seed % 200;
        if (a < 0) a = -a;
        seed = lcg(seed);
        int len = seed % 30;
        if (len < 0) len = -len;
        lo[i] = a;
        hi[i] = a + len + 1;
        track_of[i] = -1;
    }
    // sort intervals by left edge (insertion sort, pointer-walk style)
    for (int i = 1; i < 96; i++) {
        int kl = lo[i];
        int kh = hi[i];
        int j = i - 1;
        while (j >= 0 && lo[j] > kl) {
            lo[j + 1] = lo[j];
            hi[j + 1] = hi[j];
            j--;
        }
        lo[j + 1] = kl;
        hi[j + 1] = kh;
    }
    int tracks = 0;
    for (int t = 0; t < 96; t++) track_end[t] = -1;
    for (int i = 0; i < 96; i++) {
        int placed = 0;
        for (int t = 0; t < tracks && !placed; t++) {
            if (track_end[t] < lo[i]) {
                track_end[t] = hi[i];
                track_of[i] = t;
                placed = 1;
            }
        }
        if (!placed) {
            track_end[tracks] = hi[i];
            track_of[i] = tracks;
            tracks++;
        }
    }
    int sum = 0;
    for (int i = 0; i < 96; i++) sum += track_of[i];
    return tracks * 1000 + sum % 1000;
}
"#;

/// `ptrdist-bc`: the arbitrary-precision calculator — here a recursive
/// descent evaluator over a generated expression string.
pub const BC: &str = r#"
// ptrdist-bc analog: recursive-descent expression calculator.
char expr[256];
int pos;

int parse_num() {
    int v = 0;
    while (expr[pos] >= '0' && expr[pos] <= '9') {
        v = v * 10 + (expr[pos] - '0');
        pos++;
    }
    return v;
}

int parse_atom() {
    if (expr[pos] == '(') {
        pos++;
        int v = parse_expr();
        pos++; // ')'
        return v;
    }
    return parse_num();
}

int parse_term() {
    int v = parse_atom();
    while (expr[pos] == '*' || expr[pos] == '/') {
        char op = expr[pos];
        pos++;
        int r = parse_atom();
        if (op == '*') v = v * r;
        else if (r != 0) v = v / r;
    }
    return v;
}

int parse_expr() {
    int v = parse_term();
    while (expr[pos] == '+' || expr[pos] == '-') {
        char op = expr[pos];
        pos++;
        int r = parse_term();
        if (op == '+') v = v + r; else v = v - r;
    }
    return v;
}

int put(int at, char c) {
    expr[at] = c;
    return at + 1;
}

int main() {
    // build "((1+2)*3+4)*(5+6)-7*8+90/9" style expressions repeatedly
    int total = 0;
    for (int round = 0; round < 16; round++) {
        int i = 0;
        i = put(i, '(');
        i = put(i, '0' + (round % 10));
        i = put(i, '+');
        i = put(i, '2');
        i = put(i, ')');
        i = put(i, '*');
        i = put(i, '3');
        i = put(i, '+');
        i = put(i, '4');
        i = put(i, '*');
        i = put(i, '(');
        i = put(i, '5');
        i = put(i, '+');
        i = put(i, '0' + (round % 7));
        i = put(i, ')');
        i = put(i, '-');
        i = put(i, '9');
        i = put(i, '/');
        i = put(i, '3');
        expr[i] = 0;
        pos = 0;
        total += parse_expr();
    }
    return total;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse() {
        for (name, src) in [
            ("anagram", ANAGRAM),
            ("ks", KS),
            ("ft", FT),
            ("yacr2", YACR2),
            ("bc", BC),
        ] {
            llva_minic::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
