//! Persistent module images: sectioned, checksummed, zero-re-lowering
//! artifacts for warm process starts (paper §4.1, ROADMAP item 4).
//!
//! The paper's systems claim is that translation is an *offline, cached*
//! activity — native code is produced once and reused across runs. The
//! per-function cache entries (PR 1/2) already give that for native
//! code, but every process still pays the SSA→[`PreFunction`] lowering
//! (~60–130µs/function) on every start, and a fleet of tenants re-walks
//! one storage entry per function. An [`LlvaImage`] packages everything
//! a warm start needs into one framed artifact:
//!
//! * **bytecode** — the module's verified virtual object code
//!   ([`llva_core::bytecode::encode_module`]), so the image is
//!   self-contained: a warm loader needs no other source of truth;
//! * **predecode** — every defined function's [`PreFunction`] as a
//!   dense, offset-based record (flat code array, phi move lists, trap
//!   side table), so a warm load *deserializes* instead of re-lowering.
//!   The fast path ([`LlvaImage::attach_loader`]) is zero-copy and
//!   lazy: the section is checksummed and indexed once, and each
//!   record deserializes only when the interpreter first calls that
//!   function. Module↔image identity is established once at attach
//!   time (a stamp compare, or decoding the module from the image
//!   itself), never by re-deriving per-function hashes on load;
//! * **native** — zero or more per-ISA sections of encoded translations
//!   ([`crate::codec`]), keyed by the same per-function content hashes
//!   ([`crate::llee::function_stamps`]) the storage cache validates.
//!
//! Every section carries its own FNV-1a checksum in the section table,
//! and the header + table are themselves checksummed, so corruption is
//! localized: a flipped bit in the native section leaves the predecode
//! section loadable, and [`repair_image`] rebuilds *only* the damaged
//! sections from the surviving bytecode. File-level helpers write
//! images with the same tmp+rename discipline as [`crate::storage::DirStorage`]
//! (a crash leaves only an [`IMAGE_TMP_MARKER`] temp file, swept at
//! startup), and [`repair_image_file`] quarantines the corrupt original
//! under the storage layer's `.quar` convention before rewriting it.
//!
//! Decoding is bounded and panic-free throughout: images arrive from
//! disk or an OS storage API and are untrusted (`tests/image_fuzz.rs`
//! hammers truncations and byte mutations). Beyond the checksums, every
//! deserialized [`PreFunction`] is validated structurally (slot bounds,
//! edge indices, PC ranges) before it is handed to the interpreter.

use crate::codec::{self, fnv1a, FNV_OFFSET};
use crate::interp::Name;
use crate::llee::{function_stamps, TargetIsa};
use crate::predecode::{
    CastKind, CmpClass, Edge, GepStep, PreFunction, PreInst, PreModule, Src,
};
use llva_core::instruction::Opcode;
use llva_core::module::Module;
use llva_machine::common::TrapKind;
use llva_machine::Width;
use std::fmt;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::Arc;

/// First bytes of every persistent module image ("LLva Image").
pub const IMAGE_MAGIC: &[u8; 4] = b"LLVI";
/// Version of the image container format.
pub const IMAGE_VERSION: u8 = 1;
/// Marker embedded in in-flight image temp file names; a crash between
/// write and rename leaves one behind, and [`crate::storage::DirStorage`]'s
/// startup sweep garbage-collects anything bearing it.
pub const IMAGE_TMP_MARKER: &str = ".__imgtmp";
/// Storage entry name under which a module's image is cached
/// content-addressed (llva-serve shares warm artifacts across tenants
/// through this entry).
pub const IMAGE_ENTRY: &str = "__image__";

/// Header: magic + version + module stamp + section count.
const HEADER_LEN: usize = 4 + 1 + 8 + 4;
/// Section table entry: kind + isa + offset + len + checksum.
const TABLE_ENTRY_LEN: usize = 1 + 1 + 4 + 4 + 8;

/// An image that failed to parse, validate, or decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageError(pub String);

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "image error: {}", self.0)
    }
}

impl std::error::Error for ImageError {}

type Result<T> = std::result::Result<T, ImageError>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(ImageError(msg.into()))
}

/// What one image section holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// The module's encoded virtual object code.
    Bytecode,
    /// Serialized [`PreFunction`] records for every defined function.
    Predecode,
    /// Encoded native translations for one implementation ISA.
    Native(TargetIsa),
}

impl SectionKind {
    fn tag(self) -> (u8, u8) {
        match self {
            SectionKind::Bytecode => (1, 0),
            SectionKind::Predecode => (2, 0),
            SectionKind::Native(TargetIsa::X86) => (3, 1),
            SectionKind::Native(TargetIsa::Sparc) => (3, 2),
            SectionKind::Native(TargetIsa::Riscv) => (3, 3),
        }
    }

    fn from_tag(kind: u8, isa: u8) -> Option<SectionKind> {
        match (kind, isa) {
            (1, 0) => Some(SectionKind::Bytecode),
            (2, 0) => Some(SectionKind::Predecode),
            (3, 1) => Some(SectionKind::Native(TargetIsa::X86)),
            (3, 2) => Some(SectionKind::Native(TargetIsa::Sparc)),
            (3, 3) => Some(SectionKind::Native(TargetIsa::Riscv)),
            _ => None,
        }
    }
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SectionKind::Bytecode => f.write_str("bytecode"),
            SectionKind::Predecode => f.write_str("predecode"),
            SectionKind::Native(isa) => write!(f, "native:{isa}"),
        }
    }
}

/// FNV-1a folded over 8-byte words (tail bytes singly): the same
/// error-detection role as [`codec::fnv1a`], but ~8x faster — every
/// warm load checksums whole section payloads, so the byte-at-a-time
/// hash would dominate the fast path it exists to protect.
fn fnv1a_words(bytes: &[u8], mut h: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h ^ u64::from_le_bytes(c.try_into().expect("8 bytes"))).wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// Chains a section's payload onto its kind tag, so a payload copied
/// under the wrong section kind fails validation like a payload copied
/// under the wrong storage key does.
fn section_checksum(kind: SectionKind, payload: &[u8]) -> u64 {
    let (k, i) = kind.tag();
    fnv1a_words(payload, fnv1a(&[k, i], FNV_OFFSET))
}

// ---------------------------------------------------------------------------
// Byte writer / bounded reader
// ---------------------------------------------------------------------------

struct W(Vec<u8>);

impl W {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn src(&mut self, s: Src) {
        match s {
            Src::Reg(r) => {
                self.u8(0);
                self.u32(r);
            }
            Src::Imm(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }
    fn opt_src(&mut self, s: Option<Src>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.src(s);
            }
        }
    }
    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }
}

/// Bounded little-endian reader: every method returns `Err` instead of
/// panicking when the record runs out, so truncated or garbled payloads
/// surface as [`ImageError`]s.
struct R<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn new(bytes: &'a [u8]) -> R<'a> {
        R { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return err(format!("record truncated: wanted {n} bytes, {} left", self.remaining()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A length-prefixed count, sanity-bounded by the bytes that remain
    /// (each item needs at least `min_item` bytes) so a corrupt count
    /// cannot become an allocation bomb.
    fn count(&mut self, min_item: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.remaining() / min_item.max(1) {
            return err(format!("count {n} exceeds remaining payload"));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<&'a str> {
        let len = self.count(1)?;
        std::str::from_utf8(self.take(len)?).map_err(|_| ImageError("non-UTF-8 name".into()))
    }

    fn src(&mut self) -> Result<Src> {
        match self.u8()? {
            0 => Ok(Src::Reg(self.u32()?)),
            1 => Ok(Src::Imm(self.u64()?)),
            t => err(format!("bad Src tag {t}")),
        }
    }

    fn opt_src(&mut self) -> Result<Option<Src>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.src()?)),
            t => err(format!("bad Option<Src> tag {t}")),
        }
    }

    fn opt_u32(&mut self) -> Result<Option<u32>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => err(format!("bad Option<u32> tag {t}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Leaf enum codecs
// ---------------------------------------------------------------------------

fn opcode_tag(op: Opcode) -> u8 {
    Opcode::ALL
        .iter()
        .position(|&o| o == op)
        .expect("opcode in ALL") as u8
}

fn opcode_from(tag: u8) -> Result<Opcode> {
    Opcode::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| ImageError(format!("bad opcode tag {tag}")))
}

fn width_tag(w: Width) -> u8 {
    match w {
        Width::B1 => 0,
        Width::B2 => 1,
        Width::B4 => 2,
        Width::B8 => 3,
    }
}

fn width_from(tag: u8) -> Result<Width> {
    Ok(match tag {
        0 => Width::B1,
        1 => Width::B2,
        2 => Width::B4,
        3 => Width::B8,
        t => return err(format!("bad width tag {t}")),
    })
}

fn trap_tag(k: TrapKind) -> u8 {
    match k {
        TrapKind::MemoryFault => 0,
        TrapKind::DivideByZero => 1,
        TrapKind::UnhandledUnwind => 2,
        TrapKind::Software => 3,
        TrapKind::PrivilegeViolation => 4,
        TrapKind::BadFunctionPointer => 5,
        TrapKind::StackOverflow => 6,
    }
}

fn trap_from(tag: u8) -> Result<TrapKind> {
    Ok(match tag {
        0 => TrapKind::MemoryFault,
        1 => TrapKind::DivideByZero,
        2 => TrapKind::UnhandledUnwind,
        3 => TrapKind::Software,
        4 => TrapKind::PrivilegeViolation,
        5 => TrapKind::BadFunctionPointer,
        6 => TrapKind::StackOverflow,
        t => return err(format!("bad trap tag {t}")),
    })
}

fn cmp_tag(c: CmpClass) -> u8 {
    match c {
        CmpClass::Sint => 0,
        CmpClass::Uint => 1,
        CmpClass::F32 => 2,
        CmpClass::F64 => 3,
    }
}

fn cmp_from(tag: u8) -> Result<CmpClass> {
    Ok(match tag {
        0 => CmpClass::Sint,
        1 => CmpClass::Uint,
        2 => CmpClass::F32,
        3 => CmpClass::F64,
        t => return err(format!("bad cmp-class tag {t}")),
    })
}

fn write_cast(w: &mut W, kind: CastKind) {
    match kind {
        CastKind::Identity => w.u8(0),
        CastKind::IntToBool => w.u8(1),
        CastKind::IntToInt { width, signed } => {
            w.u8(2);
            w.u32(width);
            w.u8(u8::from(signed));
        }
        CastKind::IntToFloat { src_signed, dst32 } => {
            w.u8(3);
            w.u8(u8::from(src_signed));
            w.u8(u8::from(dst32));
        }
        CastKind::FloatToFloat { src32, dst32 } => {
            w.u8(4);
            w.u8(u8::from(src32));
            w.u8(u8::from(dst32));
        }
        CastKind::FloatToBool { src32 } => {
            w.u8(5);
            w.u8(u8::from(src32));
        }
        CastKind::FloatToInt { src32, width, signed } => {
            w.u8(6);
            w.u8(u8::from(src32));
            w.u32(width);
            w.u8(u8::from(signed));
        }
    }
}

fn read_cast(r: &mut R) -> Result<CastKind> {
    Ok(match r.u8()? {
        0 => CastKind::Identity,
        1 => CastKind::IntToBool,
        2 => CastKind::IntToInt { width: r.u32()?, signed: r.u8()? != 0 },
        3 => CastKind::IntToFloat { src_signed: r.u8()? != 0, dst32: r.u8()? != 0 },
        4 => CastKind::FloatToFloat { src32: r.u8()? != 0, dst32: r.u8()? != 0 },
        5 => CastKind::FloatToBool { src32: r.u8()? != 0 },
        6 => CastKind::FloatToInt { src32: r.u8()? != 0, width: r.u32()?, signed: r.u8()? != 0 },
        t => return err(format!("bad cast tag {t}")),
    })
}

// ---------------------------------------------------------------------------
// PreFunction record codec
// ---------------------------------------------------------------------------

fn write_inst(w: &mut W, inst: &PreInst) {
    match inst {
        PreInst::IntBin { op, a, b, dst, width, signed } => {
            w.u8(0);
            w.u8(opcode_tag(*op));
            w.src(*a);
            w.src(*b);
            w.u32(*dst);
            w.u32(*width);
            w.u8(u8::from(*signed));
        }
        PreInst::IntDiv { op, a, b, dst, width, signed, exc } => {
            w.u8(1);
            w.u8(opcode_tag(*op));
            w.src(*a);
            w.src(*b);
            w.u32(*dst);
            w.u32(*width);
            w.u8(u8::from(*signed));
            w.u8(u8::from(*exc));
        }
        PreInst::FloatBin { op, a, b, dst, is32 } => {
            w.u8(2);
            w.u8(opcode_tag(*op));
            w.src(*a);
            w.src(*b);
            w.u32(*dst);
            w.u8(u8::from(*is32));
        }
        PreInst::Cmp { op, class, a, b, dst } => {
            w.u8(3);
            w.u8(opcode_tag(*op));
            w.u8(cmp_tag(*class));
            w.src(*a);
            w.src(*b);
            w.u32(*dst);
        }
        PreInst::Ret { val } => {
            w.u8(4);
            w.opt_src(*val);
        }
        PreInst::Jump { edge } => {
            w.u8(5);
            w.u32(*edge);
        }
        PreInst::BrCond { cond, then_edge, else_edge } => {
            w.u8(6);
            w.src(*cond);
            w.u32(*then_edge);
            w.u32(*else_edge);
        }
        PreInst::Mbr { disc, cases, default_edge } => {
            w.u8(7);
            w.src(*disc);
            w.u32(cases.len() as u32);
            for (c, e) in cases {
                w.src(*c);
                w.u32(*e);
            }
            w.u32(*default_edge);
        }
        PreInst::Call { callee, args, dst, normal_edge, unwind_edge } => {
            w.u8(8);
            w.src(*callee);
            w.u32(args.len() as u32);
            for a in args {
                w.src(*a);
            }
            w.opt_u32(*dst);
            w.opt_u32(*normal_edge);
            w.opt_u32(*unwind_edge);
        }
        PreInst::Unwind => w.u8(9),
        PreInst::Load { addr, dst, width, signed, exc } => {
            w.u8(10);
            w.src(*addr);
            w.u32(*dst);
            w.u8(width_tag(*width));
            w.u8(u8::from(*signed));
            w.u8(u8::from(*exc));
        }
        PreInst::Store { val, addr, width, exc } => {
            w.u8(11);
            w.src(*val);
            w.src(*addr);
            w.u8(width_tag(*width));
            w.u8(u8::from(*exc));
        }
        PreInst::Gep { base, steps, dst } => {
            w.u8(12);
            w.src(*base);
            w.u32(steps.len() as u32);
            for s in steps {
                match s {
                    GepStep::Scaled { idx, size } => {
                        w.u8(0);
                        w.src(*idx);
                        w.i64(*size);
                    }
                    GepStep::Const(off) => {
                        w.u8(1);
                        w.u64(*off);
                    }
                    GepStep::Trap => w.u8(2),
                }
            }
            w.u32(*dst);
        }
        PreInst::GepConst { base, offset, dst } => {
            w.u8(13);
            w.src(*base);
            w.u64(*offset);
            w.u32(*dst);
        }
        PreInst::Alloca { count, unit, dst } => {
            w.u8(14);
            w.opt_src(*count);
            w.u64(*unit);
            w.u32(*dst);
        }
        PreInst::Cast { src, kind, dst } => {
            w.u8(15);
            w.src(*src);
            write_cast(w, *kind);
            w.u32(*dst);
        }
        PreInst::AlwaysTrap { kind } => {
            w.u8(16);
            w.u8(trap_tag(*kind));
        }
    }
}

fn read_inst(r: &mut R) -> Result<PreInst> {
    Ok(match r.u8()? {
        0 => PreInst::IntBin {
            op: opcode_from(r.u8()?)?,
            a: r.src()?,
            b: r.src()?,
            dst: r.u32()?,
            width: r.u32()?,
            signed: r.u8()? != 0,
        },
        1 => PreInst::IntDiv {
            op: opcode_from(r.u8()?)?,
            a: r.src()?,
            b: r.src()?,
            dst: r.u32()?,
            width: r.u32()?,
            signed: r.u8()? != 0,
            exc: r.u8()? != 0,
        },
        2 => PreInst::FloatBin {
            op: opcode_from(r.u8()?)?,
            a: r.src()?,
            b: r.src()?,
            dst: r.u32()?,
            is32: r.u8()? != 0,
        },
        3 => PreInst::Cmp {
            op: opcode_from(r.u8()?)?,
            class: cmp_from(r.u8()?)?,
            a: r.src()?,
            b: r.src()?,
            dst: r.u32()?,
        },
        4 => PreInst::Ret { val: r.opt_src()? },
        5 => PreInst::Jump { edge: r.u32()? },
        6 => PreInst::BrCond { cond: r.src()?, then_edge: r.u32()?, else_edge: r.u32()? },
        7 => {
            let disc = r.src()?;
            let n = r.count(5)?;
            let mut cases = Vec::with_capacity(n);
            for _ in 0..n {
                cases.push((r.src()?, r.u32()?));
            }
            PreInst::Mbr { disc, cases, default_edge: r.u32()? }
        }
        8 => {
            let callee = r.src()?;
            let n = r.count(5)?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(r.src()?);
            }
            PreInst::Call {
                callee,
                args,
                dst: r.opt_u32()?,
                normal_edge: r.opt_u32()?,
                unwind_edge: r.opt_u32()?,
            }
        }
        9 => PreInst::Unwind,
        10 => PreInst::Load {
            addr: r.src()?,
            dst: r.u32()?,
            width: width_from(r.u8()?)?,
            signed: r.u8()? != 0,
            exc: r.u8()? != 0,
        },
        11 => PreInst::Store {
            val: r.src()?,
            addr: r.src()?,
            width: width_from(r.u8()?)?,
            exc: r.u8()? != 0,
        },
        12 => {
            let base = r.src()?;
            let n = r.count(1)?;
            let mut steps = Vec::with_capacity(n);
            for _ in 0..n {
                steps.push(match r.u8()? {
                    0 => GepStep::Scaled { idx: r.src()?, size: r.i64()? },
                    1 => GepStep::Const(r.u64()?),
                    2 => GepStep::Trap,
                    t => return err(format!("bad gep-step tag {t}")),
                });
            }
            PreInst::Gep { base, steps, dst: r.u32()? }
        }
        13 => PreInst::GepConst { base: r.src()?, offset: r.u64()?, dst: r.u32()? },
        14 => PreInst::Alloca { count: r.opt_src()?, unit: r.u64()?, dst: r.u32()? },
        15 => PreInst::Cast { src: r.src()?, kind: read_cast(r)?, dst: r.u32()? },
        16 => PreInst::AlwaysTrap { kind: trap_from(r.u8()?)? },
        t => return err(format!("bad inst tag {t}")),
    })
}

/// Serializes one lowered function as a dense record.
fn encode_prefunction(pf: &PreFunction) -> Vec<u8> {
    let mut w = W(Vec::with_capacity(64 + pf.insts.len() * 16));
    w.str(&pf.name);
    w.u32(pf.block_names.len() as u32);
    for n in &pf.block_names {
        w.str(n);
    }
    w.u32(pf.insts.len() as u32);
    for inst in &pf.insts {
        write_inst(&mut w, inst);
    }
    w.u32(pf.traps.len() as u32);
    for &(b, i) in &pf.traps {
        w.u32(b);
        w.u32(i);
    }
    w.u32(pf.edges.len() as u32);
    for e in &pf.edges {
        w.u32(e.target_pc);
        w.u32(e.target_block);
        w.u8(u8::from(e.trap));
        w.u32(e.moves.len() as u32);
        for &(dst, src) in &e.moves {
            w.u32(dst);
            w.src(src);
        }
    }
    w.u32(pf.block_span.len() as u32);
    for &(pc, n) in &pf.block_span {
        w.u32(pc);
        w.u32(n);
    }
    w.u32(pf.num_slots);
    w.u32(pf.num_args);
    w.u32(pf.entry_pc);
    w.0
}

/// Deserializes and *validates* one function record: beyond decoding,
/// every register slot, edge index, and PC is checked against the
/// record's own bounds, so a record that decodes structurally but would
/// index out of range in the dispatch loop is rejected here, not mid-run.
fn decode_prefunction(bytes: &[u8]) -> Result<PreFunction> {
    let mut r = R::new(bytes);
    let name = Name::new(r.str()?);
    let nblocks = r.count(4)?;
    let mut block_names = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        block_names.push(Name::new(r.str()?));
    }
    let ninsts = r.count(1)?;
    let mut insts = Vec::with_capacity(ninsts);
    for _ in 0..ninsts {
        insts.push(read_inst(&mut r)?);
    }
    let ntraps = r.count(8)?;
    let mut traps = Vec::with_capacity(ntraps);
    for _ in 0..ntraps {
        traps.push((r.u32()?, r.u32()?));
    }
    let nedges = r.count(13)?;
    let mut edges = Vec::with_capacity(nedges);
    for _ in 0..nedges {
        let target_pc = r.u32()?;
        let target_block = r.u32()?;
        let trap = r.u8()? != 0;
        let nmoves = r.count(9)?;
        let mut moves = Vec::with_capacity(nmoves);
        for _ in 0..nmoves {
            moves.push((r.u32()?, r.src()?));
        }
        edges.push(Edge { target_pc, target_block, moves, trap });
    }
    let nspans = r.count(8)?;
    let mut block_span = Vec::with_capacity(nspans);
    for _ in 0..nspans {
        block_span.push((r.u32()?, r.u32()?));
    }
    let num_slots = r.u32()?;
    let num_args = r.u32()?;
    let entry_pc = r.u32()?;
    if r.remaining() != 0 {
        return err(format!("{} trailing bytes after function record", r.remaining()));
    }
    let pf = PreFunction {
        name,
        block_names,
        insts,
        traps,
        edges,
        block_span,
        num_slots,
        num_args,
        entry_pc,
    };
    validate_prefunction(&pf)?;
    Ok(pf)
}

/// Structural bounds a deserialized function must satisfy before the
/// dispatch loop may execute it.
fn validate_prefunction(pf: &PreFunction) -> Result<()> {
    // a corrupt slot count must not become a giant frame allocation
    const MAX_SLOTS: u32 = 1 << 20;
    let npc = pf.insts.len() as u32;
    let nslots = pf.num_slots;
    let nedges = pf.edges.len() as u32;
    if nslots > MAX_SLOTS {
        return err(format!("implausible slot count {nslots}"));
    }
    if pf.num_args > nslots {
        return err("more arguments than slots");
    }
    if pf.traps.len() != pf.insts.len() {
        return err("trap table length mismatch");
    }
    if pf.block_names.len() != pf.block_span.len() {
        return err("block table length mismatch");
    }
    if npc > 0 && pf.entry_pc >= npc {
        return err("entry PC out of range");
    }
    let slot = |s: Src| match s {
        Src::Reg(r) if r >= nslots => err(format!("slot {r} out of range")),
        _ => Ok(()),
    };
    let dst_ok = |d: u32| {
        if d >= nslots {
            err(format!("dst slot {d} out of range"))
        } else {
            Ok(())
        }
    };
    let edge_ok = |e: u32| {
        if e >= nedges {
            err(format!("edge {e} out of range"))
        } else {
            Ok(())
        }
    };
    for inst in &pf.insts {
        match inst {
            PreInst::IntBin { a, b, dst, .. }
            | PreInst::IntDiv { a, b, dst, .. }
            | PreInst::FloatBin { a, b, dst, .. }
            | PreInst::Cmp { a, b, dst, .. } => {
                slot(*a)?;
                slot(*b)?;
                dst_ok(*dst)?;
            }
            PreInst::Ret { val } => {
                if let Some(v) = val {
                    slot(*v)?;
                }
            }
            PreInst::Jump { edge } => edge_ok(*edge)?,
            PreInst::BrCond { cond, then_edge, else_edge } => {
                slot(*cond)?;
                edge_ok(*then_edge)?;
                edge_ok(*else_edge)?;
            }
            PreInst::Mbr { disc, cases, default_edge } => {
                slot(*disc)?;
                for (c, e) in cases {
                    slot(*c)?;
                    edge_ok(*e)?;
                }
                edge_ok(*default_edge)?;
            }
            PreInst::Call { callee, args, dst, normal_edge, unwind_edge } => {
                slot(*callee)?;
                for a in args {
                    slot(*a)?;
                }
                if let Some(d) = dst {
                    dst_ok(*d)?;
                }
                if let Some(e) = normal_edge {
                    edge_ok(*e)?;
                }
                if let Some(e) = unwind_edge {
                    edge_ok(*e)?;
                }
            }
            PreInst::Unwind | PreInst::AlwaysTrap { .. } => {}
            PreInst::Load { addr, dst, .. } => {
                slot(*addr)?;
                dst_ok(*dst)?;
            }
            PreInst::Store { val, addr, .. } => {
                slot(*val)?;
                slot(*addr)?;
            }
            PreInst::Gep { base, steps, dst } => {
                slot(*base)?;
                for s in steps {
                    if let GepStep::Scaled { idx, .. } = s {
                        slot(*idx)?;
                    }
                }
                dst_ok(*dst)?;
            }
            PreInst::GepConst { base, dst, .. } => {
                slot(*base)?;
                dst_ok(*dst)?;
            }
            PreInst::Alloca { count, dst, .. } => {
                if let Some(c) = count {
                    slot(*c)?;
                }
                dst_ok(*dst)?;
            }
            PreInst::Cast { src, dst, .. } => {
                slot(*src)?;
                dst_ok(*dst)?;
            }
        }
    }
    for e in &pf.edges {
        if !e.trap && e.target_pc >= npc.max(1) {
            return err("edge target PC out of range");
        }
        if e.target_block as usize >= pf.block_names.len() {
            return err("edge target block out of range");
        }
        for &(d, s) in &e.moves {
            dst_ok(d)?;
            slot(s)?;
        }
    }
    for &(b, _) in &pf.traps {
        if b as usize >= pf.block_names.len() {
            return err("trap block out of range");
        }
    }
    for &(pc, n) in &pf.block_span {
        if pc.saturating_add(n) > npc {
            return err("block span out of range");
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Assembles an image from a module plus any subset of predecode and
/// per-ISA native sections.
pub struct ImageBuilder {
    stamp: u64,
    func_stamps: Vec<u64>,
    sections: Vec<(SectionKind, Vec<u8>)>,
}

impl ImageBuilder {
    /// Starts an image for `module`: computes the module stamp and
    /// per-function content hashes and adds the bytecode section.
    pub fn new(module: &Module) -> ImageBuilder {
        let bytecode = llva_core::bytecode::encode_module(module);
        ImageBuilder {
            stamp: fnv1a(&bytecode, FNV_OFFSET),
            func_stamps: function_stamps(module),
            sections: vec![(SectionKind::Bytecode, bytecode)],
        }
    }

    /// The module stamp the image will carry (equals
    /// [`crate::llee::stamp`] of the module).
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Adds the predecode section: every *decoded* function in `pre`
    /// (call [`PreModule::decode_all`] first for a complete image),
    /// serialized as dense records keyed by function id + content hash.
    pub fn add_predecode(&mut self, pre: &PreModule) {
        let module = pre.module();
        let mut w = W(Vec::new());
        let mut entries: Vec<(u32, Vec<u8>)> = Vec::new();
        for fid in module.function_ids() {
            let f = fid.index();
            if module.function(fid).is_declaration() || !pre.is_decoded(f) {
                continue;
            }
            entries.push((f as u32, encode_prefunction(&pre.get(fid))));
        }
        w.u32(entries.len() as u32);
        for (f, rec) in entries {
            w.u32(f);
            w.u64(self.func_stamps.get(f as usize).copied().unwrap_or(0));
            w.u32(rec.len() as u32);
            w.0.extend_from_slice(&rec);
        }
        self.sections.retain(|(k, _)| *k != SectionKind::Predecode);
        self.sections.push((SectionKind::Predecode, w.0));
    }

    /// Adds a native-code section for `isa`: `(function id, content
    /// hash, encoded translation)` triples. The hashes are explicit
    /// because translation happens against a *target-configured* module
    /// (pointer size and endianness are part of the per-function stamp),
    /// so the producing [`crate::llee::ExecutionManager`] supplies the
    /// stamps its consumers will validate against — see
    /// [`crate::llee::ExecutionManager::native_image_entries`].
    pub fn add_native(&mut self, isa: TargetIsa, entries: &[(u32, u64, Vec<u8>)]) {
        let mut w = W(Vec::new());
        w.u32(entries.len() as u32);
        for (f, stamp, blob) in entries {
            w.u32(*f);
            w.u64(*stamp);
            w.u32(blob.len() as u32);
            w.0.extend_from_slice(blob);
        }
        self.sections.retain(|(k, _)| *k != SectionKind::Native(isa));
        self.sections.push((SectionKind::Native(isa), w.0));
    }

    /// Serializes the image: header, checksummed section table, payloads.
    pub fn finish(&self) -> Vec<u8> {
        let table_end = HEADER_LEN + self.sections.len() * TABLE_ENTRY_LEN;
        let mut out = Vec::with_capacity(
            table_end + 8 + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>(),
        );
        out.extend_from_slice(IMAGE_MAGIC);
        out.push(IMAGE_VERSION);
        out.extend_from_slice(&self.stamp.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = (table_end + 8) as u32;
        for (kind, payload) in &self.sections {
            let (k, i) = kind.tag();
            out.push(k);
            out.push(i);
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&section_checksum(*kind, payload).to_le_bytes());
            offset += payload.len() as u32;
        }
        // header + table checksum: a corrupt offset or length must fail
        // parse, not misdirect a section read
        let table_sum = fnv1a(&out, FNV_OFFSET);
        out.extend_from_slice(&table_sum.to_le_bytes());
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Memory-mapped image bytes
// ---------------------------------------------------------------------------

/// A read-only, private `mmap` of a whole file. No external crates: the
/// two libc symbols are declared directly (they are always present in
/// the already-linked C runtime on unix).
#[cfg(unix)]
mod mapped {
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: core::ffi::c_int,
            flags: core::ffi::c_int,
            fd: core::ffi::c_int,
            offset: core::ffi::c_long,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> core::ffi::c_int;
    }

    const PROT_READ: core::ffi::c_int = 1;
    const MAP_PRIVATE: core::ffi::c_int = 2;

    /// An owned mapping; unmapped on drop. Derefs to the file bytes.
    pub struct MappedFile {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ + MAP_PRIVATE — no writer inside
    // this process exists, and the pointer is exclusively owned until
    // munmap in Drop, so shared references across threads are sound.
    // (A concurrent *external* truncation of the file could fault; the
    // image writer's tmp+rename discipline replaces files atomically
    // and never truncates in place.)
    unsafe impl Send for MappedFile {}
    unsafe impl Sync for MappedFile {}

    impl MappedFile {
        /// Maps the whole file read-only. Fails on empty files (a
        /// zero-length mmap is an error by spec) and on any OS error —
        /// callers fall back to `std::fs::read`.
        pub fn open(path: &std::path::Path) -> std::io::Result<MappedFile> {
            let file = std::fs::File::open(path)?;
            let len = usize::try_from(file.metadata()?.len())
                .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large"))?;
            if len == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "empty file",
                ));
            }
            // SAFETY: null hint, length from metadata, read-only
            // private mapping over a file descriptor we own; the
            // result is checked against MAP_FAILED below.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(MappedFile { ptr, len })
        }
    }

    impl std::ops::Deref for MappedFile {
        type Target = [u8];
        fn deref(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live PROT_READ mapping owned
            // by self; the borrow cannot outlive the Drop that unmaps.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for MappedFile {
        fn drop(&mut self) {
            // SAFETY: exactly the pointer/length pair mmap returned.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(unix)]
pub use mapped::MappedFile;

/// The backing bytes of a parsed [`LlvaImage`]: either an owned buffer
/// or a zero-copy file mapping (with `offset` skipping a container
/// prefix, e.g. [`crate::storage::DirStorage`]'s 8-byte timestamp).
/// The image layout is offset-based, so all parsing and section access
/// work identically through `Deref`.
enum ImageBytes {
    Owned(Vec<u8>),
    #[cfg(unix)]
    Mapped { map: MappedFile, offset: usize },
}

impl std::ops::Deref for ImageBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            ImageBytes::Owned(v) => v,
            #[cfg(unix)]
            ImageBytes::Mapped { map, offset } => &map[*offset..],
        }
    }
}

// ---------------------------------------------------------------------------
// Parsed image
// ---------------------------------------------------------------------------

/// One entry of a parsed image's section table.
#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    kind: SectionKind,
    offset: usize,
    len: usize,
    checksum: u64,
}

/// A parsed persistent module image.
///
/// Parsing validates the header and the checksummed section table;
/// individual section payloads are validated on access, so one corrupt
/// section leaves the others loadable (per-section fault isolation).
pub struct LlvaImage {
    bytes: ImageBytes,
    stamp: u64,
    table: Vec<SectionEntry>,
    /// Bitmask of section-table indices whose payload checksum has
    /// already validated. The bytes are immutable after parse, so a
    /// section that validated once stays valid — every later access
    /// through a shared `Arc` (per-call `set_image`, `attach_loader`)
    /// skips the checksum entirely.
    validated: std::sync::atomic::AtomicU32,
}

impl fmt::Debug for LlvaImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LlvaImage")
            .field("stamp", &format_args!("{:#018x}", self.stamp))
            .field(
                "sections",
                &self.table.iter().map(|s| s.kind.to_string()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl LlvaImage {
    /// Parses and validates an image's header and section table.
    ///
    /// # Errors
    ///
    /// [`ImageError`] on bad magic/version, a truncated or garbled
    /// table, or section ranges outside the byte buffer. Payload
    /// corruption is *not* an error here — see [`LlvaImage::section_ok`].
    pub fn parse(bytes: Vec<u8>) -> Result<LlvaImage> {
        LlvaImage::parse_bytes(ImageBytes::Owned(bytes))
    }

    fn parse_bytes(bytes: ImageBytes) -> Result<LlvaImage> {
        if bytes.len() < HEADER_LEN + 8 {
            return err(format!("image truncated: {} bytes", bytes.len()));
        }
        if &bytes[..4] != IMAGE_MAGIC {
            return err("bad image magic");
        }
        if bytes[4] != IMAGE_VERSION {
            return err(format!("unsupported image version {}", bytes[4]));
        }
        let stamp = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(bytes[13..17].try_into().expect("4 bytes")) as usize;
        // kind + isa + offset + len + checksum per entry, and each
        // section needs at least its table entry present
        if count > (bytes.len() - HEADER_LEN) / TABLE_ENTRY_LEN {
            return err(format!("implausible section count {count}"));
        }
        let table_end = HEADER_LEN + count * TABLE_ENTRY_LEN;
        if bytes.len() < table_end + 8 {
            return err("image truncated inside section table");
        }
        let want = u64::from_le_bytes(bytes[table_end..table_end + 8].try_into().expect("8 bytes"));
        if fnv1a(&bytes[..table_end], FNV_OFFSET) != want {
            return err("header/table checksum mismatch");
        }
        let mut table = Vec::with_capacity(count);
        for s in 0..count {
            let at = HEADER_LEN + s * TABLE_ENTRY_LEN;
            let kind = SectionKind::from_tag(bytes[at], bytes[at + 1])
                .ok_or_else(|| ImageError(format!("bad section kind {}/{}", bytes[at], bytes[at + 1])))?;
            let offset =
                u32::from_le_bytes(bytes[at + 2..at + 6].try_into().expect("4 bytes")) as usize;
            let len =
                u32::from_le_bytes(bytes[at + 6..at + 10].try_into().expect("4 bytes")) as usize;
            let checksum = u64::from_le_bytes(bytes[at + 10..at + 18].try_into().expect("8 bytes"));
            if offset < table_end + 8 || offset.saturating_add(len) > bytes.len() {
                return err(format!("section {kind} range {offset}+{len} out of bounds"));
            }
            if table.iter().any(|e: &SectionEntry| e.kind == kind) {
                return err(format!("duplicate section {kind}"));
            }
            table.push(SectionEntry { kind, offset, len, checksum });
        }
        Ok(LlvaImage {
            bytes,
            stamp,
            table,
            validated: std::sync::atomic::AtomicU32::new(0),
        })
    }

    /// The module stamp recorded at build time (equals
    /// [`crate::llee::stamp`] of the module the image was built from).
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// True when this image reads straight out of a file mapping
    /// (zero-copy warm load) rather than an owned buffer.
    pub fn is_mapped(&self) -> bool {
        match self.bytes {
            ImageBytes::Owned(_) => false,
            #[cfg(unix)]
            ImageBytes::Mapped { .. } => true,
        }
    }

    /// The kinds of the sections present, in file order.
    pub fn sections(&self) -> Vec<SectionKind> {
        self.table.iter().map(|s| s.kind).collect()
    }

    /// Whether `kind` is present *and* its payload checksum validates.
    pub fn section_ok(&self, kind: SectionKind) -> bool {
        matches!(self.section_payload(kind), Some(Ok(_)))
    }

    /// The validated payload of section `kind`: `None` when absent,
    /// `Some(Err)` when present but corrupt (checksum mismatch).
    fn section_payload(&self, kind: SectionKind) -> Option<Result<&[u8]>> {
        use std::sync::atomic::Ordering;
        let i = self.table.iter().position(|s| s.kind == kind)?;
        let entry = self.table[i];
        let payload = &self.bytes[entry.offset..entry.offset + entry.len];
        let bit = 1u32 << i;
        if self.validated.load(Ordering::Relaxed) & bit == 0 {
            if section_checksum(kind, payload) != entry.checksum {
                return Some(Err(ImageError(format!("section {kind} checksum mismatch"))));
            }
            self.validated.fetch_or(bit, Ordering::Relaxed);
        }
        Some(Ok(payload))
    }

    fn require_section(&self, kind: SectionKind) -> Result<&[u8]> {
        match self.section_payload(kind) {
            None => err(format!("image has no {kind} section")),
            Some(r) => r,
        }
    }

    /// Decodes the module from the bytecode section.
    ///
    /// # Errors
    ///
    /// [`ImageError`] if the section is absent, corrupt, or does not
    /// decode as virtual object code.
    pub fn decode_module(&self) -> Result<Module> {
        let payload = self.require_section(SectionKind::Bytecode)?;
        llva_core::bytecode::decode_module(payload)
            .map_err(|e| ImageError(format!("bytecode section: {e}")))
    }

    /// The predecode entry frames: `(function id, absolute byte range
    /// of the record in the image)`, with the section's checksum
    /// validated once up front. The per-entry content-hash field is
    /// carried for repair and diagnostics but deliberately *not*
    /// re-derived from the module here — recomputing
    /// [`crate::llee::function_stamps`] re-encodes every function and
    /// costs as much as the SSA lowering the warm path exists to skip.
    fn predecode_entries(&self) -> Result<Vec<(u32, std::ops::Range<usize>)>> {
        let payload = self.require_section(SectionKind::Predecode)?;
        let base = self
            .table
            .iter()
            .find(|s| s.kind == SectionKind::Predecode)
            .expect("section present")
            .offset;
        let mut r = R::new(payload);
        let count = r.count(16)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let f = r.u32()?;
            let _stamp = r.u64()?;
            let len = r.count(1)?;
            let start = base + r.pos;
            let _ = r.take(len)?;
            out.push((f, start..start + len));
        }
        if r.remaining() != 0 {
            return err("trailing bytes after predecode entries");
        }
        Ok(out)
    }

    /// Eagerly installs every pre-decoded function into `pre`,
    /// deserializing and validating each record now. Out-of-range
    /// function ids are skipped. Returns how many were installed.
    ///
    /// Module-identity contract (also [`LlvaImage::attach_loader`] /
    /// [`LlvaImage::premodule`]): the caller must already have
    /// established that `pre`'s module is the one this image was built
    /// from — by decoding it from the image itself
    /// ([`LlvaImage::decode_module`]), or by comparing
    /// [`crate::llee::stamp`] against [`LlvaImage::stamp`] (llva-serve
    /// gets that comparison for free from its content-addressed cache
    /// key; [`crate::supervisor::Supervisor::set_image`] enforces it
    /// once at attach time).
    ///
    /// # Errors
    ///
    /// [`ImageError`] if the predecode section is absent, corrupt, or a
    /// record fails to decode/validate.
    pub fn install_predecoded(&self, pre: &PreModule) -> Result<usize> {
        let n = pre.module().num_functions();
        let mut installed = 0;
        for (f, range) in self.predecode_entries()? {
            if (f as usize) < n {
                let pf = decode_prefunction(&self.bytes[range])?;
                pre.install(f as usize, Rc::new(pf));
                installed += 1;
            }
        }
        Ok(installed)
    }

    /// Attaches this image to `pre` as a zero-copy warm loader: the
    /// predecode section is checksummed and its entry frames indexed
    /// *once*, and each function's record is deserialized only when
    /// [`PreModule::get`] first asks for that function — a warm start
    /// pays microseconds up front instead of re-lowering (or even
    /// re-deserializing) bodies it may never call. A record that fails
    /// to decode falls back to SSA lowering for that function only.
    /// Returns how many functions the index covers.
    ///
    /// Module-identity contract: see [`LlvaImage::install_predecoded`].
    ///
    /// # Errors
    ///
    /// [`ImageError`] if the predecode section is absent, corrupt, or
    /// its entry framing is garbled.
    pub fn attach_loader(self: &Arc<Self>, pre: &PreModule) -> Result<usize> {
        let n = pre.module().num_functions();
        let mut index: Vec<(u32, std::ops::Range<usize>)> = self
            .predecode_entries()?
            .into_iter()
            .filter(|(f, _)| (*f as usize) < n)
            .collect();
        index.sort_unstable_by_key(|&(f, _)| f);
        let covered = index.len();
        let img = Arc::clone(self);
        pre.set_loader(Box::new(move |f| {
            let i = index.binary_search_by_key(&(f as u32), |&(f, _)| f).ok()?;
            let range = index[i].1.clone();
            decode_prefunction(&img.bytes[range]).ok().map(Rc::new)
        }));
        Ok(covered)
    }

    /// Builds a warm [`PreModule`] over `module`: the cheap per-module
    /// state is recomputed, then the image is attached as the lazy
    /// record loader ([`LlvaImage::attach_loader`]) so no SSA
    /// re-lowering happens for covered functions. Returns the
    /// pre-decode cache and how many functions the image covers.
    ///
    /// Module-identity contract: see [`LlvaImage::install_predecoded`].
    ///
    /// # Errors
    ///
    /// See [`LlvaImage::attach_loader`].
    pub fn premodule<'m>(self: &Arc<Self>, module: &'m Module) -> Result<(Rc<PreModule<'m>>, usize)> {
        let pre = Rc::new(PreModule::new(module));
        let covered = self.attach_loader(&pre)?;
        Ok((pre, covered))
    }

    /// The native entry frames for `isa` as `(function id, content
    /// hash, absolute byte range of the encoded translation)`, with the
    /// section's checksum validated once up front — the
    /// [`crate::llee::ExecutionManager`] indexes these and decodes a
    /// blob only when [`crate::llee::ExecutionManager::translate`]
    /// first reaches that function.
    ///
    /// # Errors
    ///
    /// [`ImageError`] if the section is absent, corrupt, or truncated.
    pub(crate) fn native_entry_ranges(
        &self,
        isa: TargetIsa,
    ) -> Result<Vec<(u32, u64, std::ops::Range<usize>)>> {
        let payload = self.require_section(SectionKind::Native(isa))?;
        let base = self
            .table
            .iter()
            .find(|s| s.kind == SectionKind::Native(isa))
            .expect("section present")
            .offset;
        let mut r = R::new(payload);
        let count = r.count(16)?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let f = r.u32()?;
            let stamp = r.u64()?;
            let len = r.count(1)?;
            let start = base + r.pos;
            let _ = r.take(len)?;
            entries.push((f, stamp, start..start + len));
        }
        if r.remaining() != 0 {
            return err("trailing bytes after native entries");
        }
        Ok(entries)
    }

    /// The native-code entries for `isa`: `(function id, content hash,
    /// encoded translation)` triples.
    ///
    /// # Errors
    ///
    /// [`ImageError`] if the section is absent, corrupt, or truncated.
    pub fn native_entries(&self, isa: TargetIsa) -> Result<Vec<(u32, u64, &[u8])>> {
        Ok(self
            .native_entry_ranges(isa)?
            .into_iter()
            .map(|(f, stamp, range)| (f, stamp, &self.bytes[range]))
            .collect())
    }

    /// The raw image bytes (blob ranges from
    /// [`LlvaImage::native_entry_ranges`] index into these).
    pub(crate) fn raw_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

// ---------------------------------------------------------------------------
// Repair: per-section quarantine + rebuild
// ---------------------------------------------------------------------------

/// What [`repair_image`] / [`repair_image_file`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// Sections whose checksums failed and were rebuilt from the
    /// surviving bytecode.
    pub rebuilt: Vec<SectionKind>,
    /// Where the corrupt original was quarantined (file repair only).
    pub quarantined: Option<PathBuf>,
}

/// Rebuilds exactly the corrupt sections of an image from its surviving
/// bytecode section: a corrupt predecode section is re-lowered, a
/// corrupt native section is re-translated, and intact sections are
/// copied byte-identically. Returns the repaired image bytes and the
/// kinds that were rebuilt (empty when nothing was wrong).
///
/// # Errors
///
/// [`ImageError`] when the header/table does not parse or the bytecode
/// section itself is corrupt — with no trusted virtual object code
/// there is nothing to rebuild from, and the caller must fall back to
/// the original module source.
pub fn repair_image(bytes: &[u8]) -> Result<(Vec<u8>, Vec<SectionKind>)> {
    use llva_backend::{
        compile_riscv_with, compile_sparc_with, compile_x86_with, PeepholeConfig,
    };
    let image = LlvaImage::parse(bytes.to_vec())?;
    let module = image.decode_module()?; // bytecode must survive
    let mut rebuilt = Vec::new();
    let mut builder = ImageBuilder::new(&module);
    let peep = PeepholeConfig::from_env();
    for kind in image.sections() {
        match kind {
            SectionKind::Bytecode => {} // the builder re-encoded it
            SectionKind::Predecode => {
                if image.section_ok(kind) {
                    // keep the validated payload byte-identical
                    if let Some(Ok(payload)) = image.section_payload(kind) {
                        builder.sections.push((kind, payload.to_vec()));
                    }
                } else {
                    let pre = PreModule::new(&module);
                    pre.decode_all();
                    builder.add_predecode(&pre);
                    rebuilt.push(kind);
                }
            }
            SectionKind::Native(isa) => {
                if image.section_ok(kind) {
                    if let Some(Ok(payload)) = image.section_payload(kind) {
                        builder.sections.push((kind, payload.to_vec()));
                    }
                } else {
                    // translation stamps are computed over the
                    // target-configured module, exactly as the producing
                    // ExecutionManager would
                    let mut tm = module.clone();
                    tm.set_target(match isa {
                        TargetIsa::X86 => llva_core::layout::TargetConfig::ia32(),
                        TargetIsa::Sparc => llva_core::layout::TargetConfig::sparc_v9(),
                        TargetIsa::Riscv => llva_core::layout::TargetConfig::riscv64(),
                    });
                    let stamps = function_stamps(&tm);
                    let entries: Vec<(u32, u64, Vec<u8>)> = tm
                        .functions()
                        .filter(|(_, f)| !f.is_declaration())
                        .map(|(fid, _)| {
                            let f = fid.index() as u32;
                            let blob = match isa {
                                TargetIsa::X86 => {
                                    codec::encode_x86(&compile_x86_with(&tm, fid, &peep))
                                }
                                TargetIsa::Sparc => {
                                    codec::encode_sparc(&compile_sparc_with(&tm, fid, &peep))
                                }
                                TargetIsa::Riscv => {
                                    codec::encode_riscv(&compile_riscv_with(&tm, fid, &peep))
                                }
                            };
                            (f, stamps[f as usize], blob)
                        })
                        .collect();
                    builder.add_native(isa, &entries);
                    rebuilt.push(kind);
                }
            }
        }
    }
    Ok((builder.finish(), rebuilt))
}

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

/// Writes image bytes with the tmp+rename discipline: readers never see
/// a torn image, and a crash mid-write leaves only a temp file bearing
/// [`IMAGE_TMP_MARKER`], which [`crate::storage::DirStorage`]'s startup
/// sweep removes.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_image_file(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut tmp_name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    tmp_name.push(format!("{IMAGE_TMP_MARKER}{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, bytes)?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// Maps an image file read-only and parses it zero-copy, with `offset`
/// bytes of container prefix skipped (0 for a bare image file; 8 for a
/// [`crate::storage::DirStorage`] blob, whose entries lead with a
/// little-endian timestamp). The section payloads are then served
/// straight from the page cache — the warm-load path never copies the
/// image.
///
/// # Errors
///
/// [`ImageError`] for OS mapping failures, an offset past the end of
/// the file, and anything [`LlvaImage::parse`] rejects. Callers should
/// fall back to [`read_image_file`] / [`LlvaImage::parse`] on error.
#[cfg(unix)]
pub fn map_image_file(path: impl AsRef<Path>, offset: usize) -> Result<LlvaImage> {
    let path = path.as_ref();
    let map = MappedFile::open(path)
        .map_err(|e| ImageError(format!("mmap {}: {e}", path.display())))?;
    if map.len() < offset {
        return err(format!(
            "image file {} shorter than its {offset}-byte container prefix",
            path.display()
        ));
    }
    LlvaImage::parse_bytes(ImageBytes::Mapped { map, offset })
}

/// Reads and parses an image file: on unix, by `mmap` (zero-copy; see
/// [`map_image_file`]), falling back to `std::fs::read` on any mapping
/// error; elsewhere, always by reading into an owned buffer.
///
/// # Errors
///
/// [`ImageError`] for I/O failures and anything [`LlvaImage::parse`]
/// rejects.
pub fn read_image_file(path: impl AsRef<Path>) -> Result<LlvaImage> {
    #[cfg(unix)]
    if let Ok(image) = map_image_file(path.as_ref(), 0) {
        return Ok(image);
    }
    let bytes = std::fs::read(path.as_ref())
        .map_err(|e| ImageError(format!("read {}: {e}", path.as_ref().display())))?;
    LlvaImage::parse(bytes)
}

/// Checks an image file's sections and, when any are corrupt,
/// quarantines the original (renamed aside with the storage layer's
/// `.quar` suffix) and rewrites a repaired image in place — rebuilding
/// only the damaged sections. A healthy file is left untouched.
///
/// # Errors
///
/// See [`repair_image`]; file I/O failures are also reported.
pub fn repair_image_file(path: impl AsRef<Path>) -> Result<RepairReport> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)
        .map_err(|e| ImageError(format!("read {}: {e}", path.display())))?;
    let (repaired, rebuilt) = repair_image(&bytes)?;
    if rebuilt.is_empty() {
        return Ok(RepairReport { rebuilt, quarantined: None });
    }
    let mut quar_name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    quar_name.push(crate::storage::QUARANTINE_SUFFIX);
    let quar = path.with_file_name(quar_name);
    std::fs::rename(path, &quar)
        .map_err(|e| ImageError(format!("quarantine {}: {e}", path.display())))?;
    write_image_file(path, &repaired)
        .map_err(|e| ImageError(format!("rewrite {}: {e}", path.display())))?;
    Ok(RepairReport { rebuilt, quarantined: Some(quar) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predecode::FastInterpreter;

    const SAMPLE: &str = r#"
%Pair = type { int, int }

@counter = global int 4

int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}

int %main() {
entry:
    %v = load int* @counter
    %r = call int %fib(int 10)
    %t = add int %r, %v
    ret int %t
}
"#;

    fn module() -> Module {
        llva_core::parser::parse_module(SAMPLE).expect("parses")
    }

    fn predecode_image(m: &Module) -> Vec<u8> {
        let pre = PreModule::new(m);
        pre.decode_all();
        let mut b = ImageBuilder::new(m);
        b.add_predecode(&pre);
        b.finish()
    }

    #[test]
    fn warm_load_round_trips_and_executes_identically() {
        let m = module();
        let bytes = predecode_image(&m);
        let image = Arc::new(LlvaImage::parse(bytes).expect("parses"));
        assert_eq!(image.stamp(), crate::llee::stamp(&m));

        let m2 = image.decode_module().expect("bytecode decodes");
        let (pre, covered) = image.premodule(&m2).expect("warm load");
        assert_eq!(covered, 2, "both defined functions covered by the index");
        assert_eq!(pre.decoded_functions(), 0, "records deserialize lazily");

        let mut warm = FastInterpreter::with_predecoded(pre);
        let warm_v = warm.run("main", &[]).expect("runs");
        let mut cold = FastInterpreter::new(&m);
        let cold_v = cold.run("main", &[]).expect("runs");
        assert_eq!(warm_v, cold_v);
        assert_eq!(warm.insts_executed(), cold.insts_executed());
    }

    #[test]
    fn eager_install_covers_every_defined_function() {
        let m = module();
        let bytes = predecode_image(&m);
        let image = LlvaImage::parse(bytes).expect("parses");
        let m2 = image.decode_module().expect("bytecode decodes");
        let pre = PreModule::new(&m2);
        let installed = image.install_predecoded(&pre).expect("installs");
        assert_eq!(installed, 2);
        assert_eq!(pre.decoded_functions(), 2, "eager install fills the cache now");
    }

    #[test]
    fn mismatched_image_is_refused_at_attach() {
        let m = module();
        let bytes = predecode_image(&m);
        let image = Arc::new(LlvaImage::parse(bytes).expect("parses"));
        // a *different* module: the supervisor's one-time stamp check
        // refuses the image, so no stale record can ever install
        let other = llva_core::parser::parse_module(
            "int %main() {\nentry:\n    ret int 7\n}\n",
        )
        .expect("parses");
        let mut sup = crate::supervisor::Supervisor::new(other, TargetIsa::X86);
        assert!(!sup.set_image(image.clone()), "mismatched image refused");
        let out = sup.run("main", &[]).expect("still executes cold");
        assert_eq!(out.outcome, crate::supervisor::TierOutcome::Value(7));
        // the matching module is accepted
        let mut sup = crate::supervisor::Supervisor::new(module(), TargetIsa::X86);
        assert!(sup.set_image(image), "matching image attaches");
    }

    #[test]
    fn per_section_corruption_is_isolated() {
        let m = module();
        let mut b = ImageBuilder::new(&m);
        let pre = PreModule::new(&m);
        pre.decode_all();
        b.add_predecode(&pre);
        b.add_native(TargetIsa::X86, &[(0, 11, vec![1, 2, 3]), (1, 22, vec![4, 5])]);
        let bytes = b.finish();
        let image = LlvaImage::parse(bytes.clone()).expect("parses");

        // find the native section's payload range and smash a byte
        let entry = image
            .table
            .iter()
            .find(|s| s.kind == SectionKind::Native(TargetIsa::X86))
            .expect("present");
        let mut corrupt = bytes;
        corrupt[entry.offset] ^= 0xFF;
        let image = Arc::new(LlvaImage::parse(corrupt).expect("table still parses"));
        assert!(!image.section_ok(SectionKind::Native(TargetIsa::X86)));
        assert!(image.section_ok(SectionKind::Bytecode), "other sections unaffected");
        assert!(image.section_ok(SectionKind::Predecode));
        assert!(image.native_entries(TargetIsa::X86).is_err());
        // the predecode section still warm-loads
        let m2 = image.decode_module().expect("decodes");
        let (_, covered) = image.premodule(&m2).expect("warm load");
        assert_eq!(covered, 2);
    }

    #[test]
    fn repair_rebuilds_only_the_corrupt_section() {
        let m = module();
        let mut b = ImageBuilder::new(&m);
        let pre = PreModule::new(&m);
        pre.decode_all();
        b.add_predecode(&pre);
        let stamps = function_stamps(&m);
        let entries: Vec<(u32, u64, Vec<u8>)> = m
            .functions()
            .filter(|(_, f)| !f.is_declaration())
            .map(|(fid, _)| {
                let code = llva_backend::compile_x86(&m, fid);
                (fid.index() as u32, stamps[fid.index()], codec::encode_x86(&code))
            })
            .collect();
        b.add_native(TargetIsa::X86, &entries);
        let bytes = b.finish();

        let image = LlvaImage::parse(bytes.clone()).expect("parses");
        let entry = image
            .table
            .iter()
            .find(|s| s.kind == SectionKind::Predecode)
            .expect("present");
        let pristine_native = image
            .section_payload(SectionKind::Native(TargetIsa::X86))
            .expect("present")
            .expect("valid")
            .to_vec();
        let mut corrupt = bytes;
        corrupt[entry.offset + 5] ^= 0x40;

        let (repaired, rebuilt) = repair_image(&corrupt).expect("repairs");
        assert_eq!(rebuilt, vec![SectionKind::Predecode]);
        let repaired = LlvaImage::parse(repaired).expect("parses");
        assert!(repaired.section_ok(SectionKind::Predecode));
        // the intact native section survived byte-identically
        let native_after = repaired
            .section_payload(SectionKind::Native(TargetIsa::X86))
            .expect("present")
            .expect("valid")
            .to_vec();
        assert_eq!(native_after, pristine_native);
    }

    #[test]
    fn truncations_never_panic_and_fail_cleanly() {
        let m = module();
        let bytes = predecode_image(&m);
        for cut in 0..bytes.len() {
            if let Ok(img) = LlvaImage::parse(bytes[..cut].to_vec()) {
                // a parse that survives truncation may only expose
                // sections that still checksum — exercise every accessor
                let img = Arc::new(img);
                let _ = img.decode_module();
                let _ = img.native_entries(TargetIsa::X86);
                if let Ok(m2) = img.decode_module() {
                    let _ = img.premodule(&m2);
                }
            }
        }
    }

    #[test]
    fn image_file_round_trip_with_tmp_rename() {
        let m = module();
        let bytes = predecode_image(&m);
        let dir = std::env::temp_dir().join(format!("llva-image-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("sample.llvi");
        write_image_file(&path, &bytes).expect("writes");
        // no temp residue after a clean write
        let residue = std::fs::read_dir(&dir)
            .expect("readdir")
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(IMAGE_TMP_MARKER))
            .count();
        assert_eq!(residue, 0);
        let image = read_image_file(&path).expect("reads");
        assert_eq!(image.stamp(), crate::llee::stamp(&m));
        // warm loads take the zero-copy mmap fast path on unix
        #[cfg(unix)]
        assert!(image.is_mapped(), "read_image_file should mmap on unix");
        // healthy file: repair is a no-op
        let report = repair_image_file(&path).expect("checks");
        assert!(report.rebuilt.is_empty());
        assert!(report.quarantined.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn mapped_image_at_offset_matches_owned_parse() {
        let m = module();
        let bytes = predecode_image(&m);
        let dir = std::env::temp_dir().join(format!("llva-image-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("prefixed.blob");
        // a DirStorage-style blob: 8-byte LE timestamp prefix + image
        let stamp = crate::llee::stamp(&m);
        let mut blob = stamp.to_le_bytes().to_vec();
        blob.extend_from_slice(&bytes);
        std::fs::write(&path, &blob).expect("writes");

        let mapped = map_image_file(&path, 8).expect("maps past the prefix");
        assert!(mapped.is_mapped());
        assert_eq!(mapped.stamp(), stamp);
        let owned = LlvaImage::parse(bytes).expect("parses");
        assert!(!owned.is_mapped());
        assert_eq!(mapped.stamp(), owned.stamp());
        // decoding through the mapped bytes gives the same module
        assert_eq!(
            crate::llee::stamp(&mapped.decode_module().expect("decodes")),
            crate::llee::stamp(&owned.decode_module().expect("decodes")),
        );
        // an offset past EOF is an error, not UB
        assert!(map_image_file(&path, blob.len() + 1).is_err());
        // empty files are rejected before mmap
        let empty = dir.join("empty.blob");
        std::fs::write(&empty, b"").expect("writes");
        assert!(map_image_file(&empty, 0).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repair_file_quarantines_the_corrupt_original() {
        let m = module();
        let bytes = predecode_image(&m);
        let dir = std::env::temp_dir().join(format!("llva-image-quar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("sample.llvi");
        let image = LlvaImage::parse(bytes.clone()).expect("parses");
        let entry = image
            .table
            .iter()
            .find(|s| s.kind == SectionKind::Predecode)
            .expect("present");
        let mut corrupt = bytes;
        corrupt[entry.offset + 3] ^= 0x10;
        std::fs::write(&path, &corrupt).expect("writes");

        let report = repair_image_file(&path).expect("repairs");
        assert_eq!(report.rebuilt, vec![SectionKind::Predecode]);
        let quar = report.quarantined.expect("quarantined");
        assert!(quar.exists(), "corrupt original kept for forensics");
        let repaired = read_image_file(&path).expect("reads");
        assert!(repaired.section_ok(SectionKind::Predecode));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
