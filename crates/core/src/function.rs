//! Functions and basic blocks.
//!
//! Each LLVA function is a list of basic blocks; each block is a list of
//! instructions ending in exactly one control-flow instruction that
//! explicitly names its successors (paper §3.1, "Global Data-flow (SSA) &
//! Control Flow Information"). The explicit CFG is a core feature of the
//! V-ISA — unlike native machine code, successors are never implicit.

use crate::instruction::{InstId, Instruction, Opcode};
use crate::types::TypeId;
use crate::value::{Constant, ValueData, ValueId};
use std::collections::HashMap;
use std::fmt;

/// A handle to a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(u32);

impl BlockId {
    /// Raw index into the owning function's block arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a handle from a raw index.
    pub fn from_index(index: usize) -> BlockId {
        BlockId(u32::try_from(index).expect("block index overflow"))
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Linkage of a function or global (paper §4.2: link-time interprocedural
/// optimization relies on internalizing symbols not visible outside the
/// linked program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// Visible to other modules / the OS loader.
    #[default]
    External,
    /// Private to this module; may be removed or rewritten freely.
    Internal,
}

/// A basic block: a label plus an ordered list of instructions.
#[derive(Debug, Clone, Default)]
pub struct BasicBlock {
    name: String,
    insts: Vec<InstId>,
}

impl BasicBlock {
    /// The block label (without the trailing `:`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instructions in execution order.
    pub fn insts(&self) -> &[InstId] {
        &self.insts
    }
}

/// An LLVA function: argument list, block layout, and the arenas that own
/// all instructions and SSA values.
#[derive(Debug, Clone)]
pub struct Function {
    name: String,
    ty: TypeId,
    ret_ty: TypeId,
    param_tys: Vec<TypeId>,
    linkage: Linkage,
    is_declaration: bool,
    blocks: Vec<BasicBlock>,
    block_order: Vec<BlockId>,
    insts: Vec<Instruction>,
    inst_block: Vec<Option<BlockId>>,
    values: Vec<ValueData>,
    inst_results: Vec<Option<ValueId>>,
    args: Vec<ValueId>,
    value_names: HashMap<ValueId, String>,
    consts: HashMap<Constant, ValueId>,
}

impl Function {
    /// Creates an empty function (a *declaration* until blocks are added).
    ///
    /// `ty` must be a function type whose components are repeated in
    /// `ret_ty` / `param_tys` (the redundancy keeps hot paths free of
    /// type-table lookups).
    pub fn new(
        name: impl Into<String>,
        ty: TypeId,
        ret_ty: TypeId,
        param_tys: Vec<TypeId>,
    ) -> Function {
        let mut f = Function {
            name: name.into(),
            ty,
            ret_ty,
            param_tys,
            linkage: Linkage::External,
            is_declaration: true,
            blocks: Vec::new(),
            block_order: Vec::new(),
            insts: Vec::new(),
            inst_block: Vec::new(),
            values: Vec::new(),
            inst_results: Vec::new(),
            args: Vec::new(),
            value_names: HashMap::new(),
            consts: HashMap::new(),
        };
        for (i, &pt) in f.param_tys.clone().iter().enumerate() {
            let v = f.push_value(ValueData::Arg {
                index: i as u32,
                ty: pt,
            });
            f.args.push(v);
        }
        f
    }

    /// The function name (without the leading `%`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interned function type.
    pub fn type_id(&self) -> TypeId {
        self.ty
    }

    /// The return type.
    pub fn return_type(&self) -> TypeId {
        self.ret_ty
    }

    /// The parameter types.
    pub fn param_types(&self) -> &[TypeId] {
        &self.param_tys
    }

    /// The SSA values bound to the formal parameters.
    pub fn args(&self) -> &[ValueId] {
        &self.args
    }

    /// Linkage of this function.
    pub fn linkage(&self) -> Linkage {
        self.linkage
    }

    /// Sets the linkage (used by the `internalize` pass).
    pub fn set_linkage(&mut self, linkage: Linkage) {
        self.linkage = linkage;
    }

    /// Whether this function has no body (an external declaration).
    pub fn is_declaration(&self) -> bool {
        self.is_declaration
    }

    // ---- blocks -----------------------------------------------------------

    /// Appends a new empty block named `name` and returns its handle.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(u32::try_from(self.blocks.len()).expect("too many blocks"));
        self.blocks.push(BasicBlock {
            name: name.into(),
            insts: Vec::new(),
        });
        self.block_order.push(id);
        self.is_declaration = false;
        id
    }

    /// The entry block (first in layout order).
    ///
    /// # Panics
    ///
    /// Panics on declarations.
    pub fn entry_block(&self) -> BlockId {
        *self
            .block_order
            .first()
            .expect("entry_block on a declaration")
    }

    /// Blocks in layout order. Removed blocks are absent.
    pub fn block_order(&self) -> &[BlockId] {
        &self.block_order
    }

    /// Immutable access to one block.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Number of live (laid-out) blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_order.len()
    }

    /// Removes `block` from the layout. Its instructions stay in the
    /// arena but are no longer reachable through the layout; the caller
    /// (normally `simplifycfg`) is responsible for fixing up references.
    pub fn remove_block(&mut self, block: BlockId) {
        self.block_order.retain(|&b| b != block);
        for &i in &self.blocks[block.index()].insts.clone() {
            self.inst_block[i.index()] = None;
        }
        self.blocks[block.index()].insts.clear();
    }

    /// Renames a block (parser/printer fidelity).
    pub fn set_block_name(&mut self, block: BlockId, name: impl Into<String>) {
        self.blocks[block.index()].name = name.into();
    }

    // ---- instructions -----------------------------------------------------

    /// Appends `inst` to `block`, creating a result value when the result
    /// type is non-void. Returns `(inst id, result value if any)`.
    pub fn append_inst(
        &mut self,
        block: BlockId,
        inst: Instruction,
        void_ty: TypeId,
    ) -> (InstId, Option<ValueId>) {
        let id = InstId::from_index(self.insts.len());
        let ty = inst.result_type();
        self.insts.push(inst);
        self.inst_block.push(Some(block));
        let result = if ty != void_ty {
            let v = self.push_value(ValueData::Inst { inst: id, ty });
            Some(v)
        } else {
            None
        };
        self.inst_results.push(result);
        self.blocks[block.index()].insts.push(id);
        (id, result)
    }

    /// Inserts `inst` at `pos` within `block` rather than at the end
    /// (used by `mem2reg` to place phis at block heads).
    pub fn insert_inst_at(
        &mut self,
        block: BlockId,
        pos: usize,
        inst: Instruction,
        void_ty: TypeId,
    ) -> (InstId, Option<ValueId>) {
        let (id, result) = self.append_inst(block, inst, void_ty);
        let insts = &mut self.blocks[block.index()].insts;
        let popped = insts.pop().expect("just appended");
        debug_assert_eq!(popped, id);
        insts.insert(pos.min(insts.len()), id);
        (id, result)
    }

    /// Immutable access to an instruction.
    pub fn inst(&self, id: InstId) -> &Instruction {
        &self.insts[id.index()]
    }

    /// Mutable access to an instruction.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Instruction {
        &mut self.insts[id.index()]
    }

    /// The block currently containing `id`, or `None` if detached.
    pub fn inst_parent(&self, id: InstId) -> Option<BlockId> {
        self.inst_block[id.index()]
    }

    /// The SSA value produced by `id`, if it produces one.
    pub fn inst_result(&self, id: InstId) -> Option<ValueId> {
        self.inst_results[id.index()]
    }

    /// Unlinks `id` from its block (the arena slot is tombstoned).
    pub fn remove_inst(&mut self, id: InstId) {
        if let Some(b) = self.inst_block[id.index()].take() {
            self.blocks[b.index()].insts.retain(|&i| i != id);
        }
    }

    /// Re-links a detached instruction at the end of `block` (used by
    /// CFG merges and by inlining).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the instruction is still attached.
    pub fn reattach_inst(&mut self, block: BlockId, inst: InstId) {
        debug_assert!(self.inst_block[inst.index()].is_none());
        self.inst_block[inst.index()] = Some(block);
        self.blocks[block.index()].insts.push(inst);
    }

    /// The terminator of `block`, if the block is non-empty and ends in
    /// a control-flow instruction.
    pub fn terminator(&self, block: BlockId) -> Option<InstId> {
        let last = *self.blocks[block.index()].insts.last()?;
        self.inst(last).is_terminator().then_some(last)
    }

    /// Successor blocks of `block`, in terminator operand order.
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        match self.terminator(block) {
            Some(t) => self.inst(t).block_operands().to_vec(),
            None => Vec::new(),
        }
    }

    /// Total number of instructions currently linked into blocks.
    pub fn num_insts(&self) -> usize {
        self.block_order
            .iter()
            .map(|&b| self.blocks[b.index()].insts.len())
            .sum()
    }

    /// Iterates `(block, inst)` over every linked instruction in layout
    /// order.
    pub fn inst_iter(&self) -> impl Iterator<Item = (BlockId, InstId)> + '_ {
        self.block_order
            .iter()
            .flat_map(move |&b| self.blocks[b.index()].insts.iter().map(move |&i| (b, i)))
    }

    // ---- values -----------------------------------------------------------

    fn push_value(&mut self, data: ValueData) -> ValueId {
        let id = ValueId::from_index(self.values.len());
        self.values.push(data);
        id
    }

    /// Materializes (and interns) a constant as an SSA value.
    pub fn constant(&mut self, c: Constant) -> ValueId {
        if let Some(&v) = self.consts.get(&c) {
            return v;
        }
        let v = self.push_value(ValueData::Const(c));
        self.consts.insert(c, v);
        v
    }

    /// What `value` is.
    pub fn value(&self, value: ValueId) -> &ValueData {
        &self.values[value.index()]
    }

    /// The constant behind `value`, if it is one.
    pub fn value_as_const(&self, value: ValueId) -> Option<&Constant> {
        match self.value(value) {
            ValueData::Const(c) => Some(c),
            _ => None,
        }
    }

    /// The type of `value`. `bool_ty` is needed because `Constant::Bool`
    /// carries no type id.
    pub fn value_type(&self, value: ValueId, bool_ty: TypeId) -> TypeId {
        match self.value(value) {
            ValueData::Arg { ty, .. } | ValueData::Inst { ty, .. } => *ty,
            ValueData::Const(c) => c.type_id().unwrap_or(bool_ty),
        }
    }

    /// Number of SSA values ever created (the paper's "infinite register
    /// file" — arguments, instruction results, and interned constants).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Gives `value` a printable name (e.g. `%Ret.1`).
    pub fn set_value_name(&mut self, value: ValueId, name: impl Into<String>) {
        self.value_names.insert(value, name.into());
    }

    /// The printable name of `value`, if one was assigned.
    pub fn value_name(&self, value: ValueId) -> Option<&str> {
        self.value_names.get(&value).map(String::as_str)
    }

    /// Rewrites every use of `from` into `to` across all instructions.
    pub fn replace_all_uses(&mut self, from: ValueId, to: ValueId) {
        for inst in &mut self.insts {
            for op in inst.operands_mut() {
                if *op == from {
                    *op = to;
                }
            }
        }
    }

    /// Counts uses of `value` among linked instructions only.
    pub fn count_uses(&self, value: ValueId) -> usize {
        self.inst_iter()
            .map(|(_, i)| {
                self.inst(i)
                    .operands()
                    .iter()
                    .filter(|&&op| op == value)
                    .count()
            })
            .sum()
    }

    /// Whether the terminator list of every laid-out block is well formed
    /// (cheap structural check used in debug assertions; the full
    /// [`verifier`](crate::verifier) does much more).
    pub fn has_terminators(&self) -> bool {
        self.block_order.iter().all(|&b| self.terminator(b).is_some())
    }

    /// Predecessor map: for each block, the blocks that branch to it.
    pub fn predecessors(&self) -> HashMap<BlockId, Vec<BlockId>> {
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in &self.block_order {
            preds.entry(b).or_default();
        }
        for &b in &self.block_order {
            for s in self.successors(b) {
                preds.entry(s).or_default().push(b);
            }
        }
        preds
    }

    /// Dedicated accessor used by phi handling: the value flowing into
    /// `phi` from predecessor `pred`, if recorded.
    pub fn phi_incoming(&self, phi: InstId, pred: BlockId) -> Option<ValueId> {
        let inst = self.inst(phi);
        debug_assert_eq!(inst.opcode(), Opcode::Phi);
        inst.block_operands()
            .iter()
            .position(|&b| b == pred)
            .map(|i| inst.operands()[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeTable;

    fn simple_fn(tt: &mut TypeTable) -> Function {
        let int = tt.int();
        let fty = tt.function(int, vec![int, int], false);
        Function::new("f", fty, int, vec![int, int])
    }

    #[test]
    fn declaration_until_blocks_added() {
        let mut tt = TypeTable::new();
        let mut f = simple_fn(&mut tt);
        assert!(f.is_declaration());
        f.add_block("entry");
        assert!(!f.is_declaration());
        assert_eq!(f.block(f.entry_block()).name(), "entry");
    }

    #[test]
    fn args_are_values() {
        let mut tt = TypeTable::new();
        let f = simple_fn(&mut tt);
        assert_eq!(f.args().len(), 2);
        let int = {
            let mut tt2 = TypeTable::new();
            tt2.int()
        };
        // args carry their declared types
        let b = TypeId::from_index(999); // sentinel never used for args
        assert_eq!(f.value_type(f.args()[0], b), int);
    }

    #[test]
    fn append_and_result() {
        let mut tt = TypeTable::new();
        let int = tt.int();
        let void = tt.void();
        let mut f = simple_fn(&mut tt);
        let entry = f.add_block("entry");
        let (a, b) = (f.args()[0], f.args()[1]);
        let (id, res) = f.append_inst(entry, Instruction::new(Opcode::Add, int, vec![a, b], vec![]), void);
        assert!(res.is_some());
        assert_eq!(f.inst_parent(id), Some(entry));
        let (rid, rres) = f.append_inst(
            entry,
            Instruction::new(Opcode::Ret, void, vec![res.unwrap()], vec![]),
            void,
        );
        assert!(rres.is_none());
        assert_eq!(f.terminator(entry), Some(rid));
        assert_eq!(f.num_insts(), 2);
        assert!(f.has_terminators());
    }

    #[test]
    fn constants_are_interned_per_function() {
        let mut tt = TypeTable::new();
        let int = tt.int();
        let mut f = simple_fn(&mut tt);
        let c1 = f.constant(Constant::Int { ty: int, bits: 7 });
        let c2 = f.constant(Constant::Int { ty: int, bits: 7 });
        let c3 = f.constant(Constant::Int { ty: int, bits: 8 });
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let mut tt = TypeTable::new();
        let int = tt.int();
        let void = tt.void();
        let mut f = simple_fn(&mut tt);
        let entry = f.add_block("entry");
        let (a, b) = (f.args()[0], f.args()[1]);
        let (_, res) = f.append_inst(entry, Instruction::new(Opcode::Add, int, vec![a, a], vec![]), void);
        f.replace_all_uses(a, b);
        let add_id = f.block(entry).insts()[0];
        assert_eq!(f.inst(add_id).operands(), &[b, b]);
        assert_eq!(f.count_uses(a), 0);
        let _ = res;
    }

    #[test]
    fn remove_inst_unlinks() {
        let mut tt = TypeTable::new();
        let int = tt.int();
        let void = tt.void();
        let mut f = simple_fn(&mut tt);
        let entry = f.add_block("entry");
        let (a, b) = (f.args()[0], f.args()[1]);
        let (id, _) = f.append_inst(entry, Instruction::new(Opcode::Add, int, vec![a, b], vec![]), void);
        assert_eq!(f.num_insts(), 1);
        f.remove_inst(id);
        assert_eq!(f.num_insts(), 0);
        assert_eq!(f.inst_parent(id), None);
    }

    #[test]
    fn successors_and_predecessors() {
        let mut tt = TypeTable::new();
        let void = tt.void();
        let b = tt.bool();
        let mut f = simple_fn(&mut tt);
        let entry = f.add_block("entry");
        let then = f.add_block("then");
        let els = f.add_block("else");
        let mut fcond = f.constant(Constant::Bool(true));
        let _ = b;
        let _ = &mut fcond;
        f.append_inst(
            entry,
            Instruction::new(Opcode::Br, void, vec![fcond], vec![then, els]),
            void,
        );
        f.append_inst(then, Instruction::new(Opcode::Ret, void, vec![f.args()[0]], vec![]), void);
        f.append_inst(els, Instruction::new(Opcode::Ret, void, vec![f.args()[1]], vec![]), void);
        assert_eq!(f.successors(entry), vec![then, els]);
        let preds = f.predecessors();
        assert_eq!(preds[&then], vec![entry]);
        assert_eq!(preds[&els], vec![entry]);
        assert!(preds[&entry].is_empty());
    }
}
