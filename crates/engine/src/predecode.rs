//! The pre-decoded register-file interpreter: the *fast* semantic oracle.
//!
//! The structural [`Interpreter`](crate::interp::Interpreter) is the
//! readable executable spec: it walks `Module` structures on every step
//! and keeps SSA values in a per-frame `HashMap`. That is exactly the
//! right shape for auditing against the paper, and exactly the wrong
//! shape for the ~19-stage differential conformance sweeps that now run
//! it as their baseline.
//!
//! This module adds a one-time, per-function lowering of verified SSA
//! into a flat, dense [`PreFunction`]:
//!
//! * instructions live in one contiguous `Vec<PreInst>` in block layout
//!   order (phis excluded — they compile into edge move lists);
//! * every operand is resolved at decode time to either a dense
//!   register-file *slot* index or an immediate ([`Src`]) — constants,
//!   global addresses, and function addresses are materialized as
//!   immediates, never looked up again;
//! * block targets become flat PCs; each CFG edge carries the parallel
//!   move list compiled from the target block's phis;
//! * per-instruction metadata (access width, signedness, exception bit,
//!   cast kind, GEP step plan) is precomputed, and a side table maps
//!   each flat PC back to `(block, index)` so [`LlvaTrap`]s stay
//!   precise and identical to the structural interpreter's;
//! * pre-decoded functions are cached per module ([`PreModule`]),
//!   lazily on first call, so repeated oracle stages and repeated
//!   workload runs pay the decode cost once.
//!
//! Execution ([`FastInterpreter`]) then runs over a `Vec<u64>` register
//! slab (frames carved out of one reusable allocation instead of a
//! fresh `HashMap` per call), with a tight dispatch loop that never
//! touches [`Module`] on the hot path. The two interpreters must be
//! trap-for-trap, value-for-value identical; `crates/conform` enforces
//! this with a dedicated `fast-interp` oracle stage.

use crate::env::{Env, StackView};
use crate::interp::{
    canonicalize, from_bits, int_binary, to_bits, trap_number, InterpError, LlvaTrap,
    Name, DEFAULT_MEMORY_SIZE,
};
use llva_backend::common::{access_of, canonical_const, layout_globals, GlobalImage};
use llva_core::function::{BlockId, Function};
use llva_core::instruction::Opcode;
use llva_core::intrinsics::Intrinsic;
use llva_core::module::{FuncId, Module};
use llva_core::types::{TypeId, TypeKind, TypeTable};
use llva_core::value::{Constant, ValueId};
use llva_machine::common::TrapKind;
use llva_machine::memory::Memory;
use llva_machine::x86::{function_value, FUNC_TAG};
use llva_machine::Width;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A pre-resolved operand: a register-file slot or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Read the value from this frame-relative register slot.
    Reg(u32),
    /// The value itself (constants are materialized at decode time).
    Imm(u64),
}

/// A pre-classified comparison, so the hot loop needs no type table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpClass {
    /// Signed 64-bit integer ordering.
    Sint,
    /// Unsigned ordering (also bool and pointers).
    Uint,
    /// 32-bit float ordering (NaN compares unordered).
    F32,
    /// 64-bit float ordering.
    F64,
}

/// A pre-classified `cast`, mirroring [`crate::interp::cast_value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CastKind {
    /// Bit-identical (pointer↔int of same width, unknown targets).
    Identity,
    /// Integer/bool/pointer to bool: `v != 0`.
    IntToBool,
    /// Integer to integer: canonicalize to width/signedness.
    IntToInt { width: u32, signed: bool },
    /// Integer to float/double, respecting source signedness.
    IntToFloat { src_signed: bool, dst32: bool },
    /// Float/double to float/double.
    FloatToFloat { src32: bool, dst32: bool },
    /// Float/double to bool: `x != 0.0`.
    FloatToBool { src32: bool },
    /// Float/double to integer, canonicalized.
    FloatToInt { src32: bool, width: u32, signed: bool },
}

/// One step of a pre-planned `getelementptr` address computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GepStep {
    /// `addr += value(idx) * size` (array/pointer indexing).
    Scaled { idx: Src, size: i64 },
    /// `addr += offset` (constant indices and struct fields, folded).
    Const(u64),
    /// Indexing into a non-aggregate: precise `MemoryFault`, like the
    /// structural interpreter.
    Trap,
}

/// A CFG edge: flat target PC plus the parallel move list compiled from
/// the target block's phis.
#[derive(Debug, Clone)]
pub(crate) struct Edge {
    /// Flat PC of the target block's first non-phi instruction.
    pub(crate) target_pc: u32,
    /// Arena index of the target block (trap coordinates).
    pub(crate) target_block: u32,
    /// `(dst slot, src)` pairs, executed as one parallel assignment.
    pub(crate) moves: Vec<(u32, Src)>,
    /// A phi in the target block has no incoming value for this edge
    /// (malformed module): taking the edge raises a `Software` trap,
    /// exactly like `Interpreter::run_phis`.
    pub(crate) trap: bool,
}

/// One pre-decoded instruction.
#[derive(Debug, Clone)]
pub(crate) enum PreInst {
    /// Integer arithmetic/bitwise binary op.
    IntBin { op: Opcode, a: Src, b: Src, dst: u32, width: u32, signed: bool, exc: bool },
    /// Float/double arithmetic binary op (`add`–`rem` only).
    FloatBin { op: Opcode, a: Src, b: Src, dst: u32, is32: bool },
    /// One of the six `set*` comparisons.
    Cmp { op: Opcode, class: CmpClass, a: Src, b: Src, dst: u32 },
    /// Return, with optional value.
    Ret { val: Option<Src> },
    /// Unconditional branch.
    Jump { edge: u32 },
    /// Conditional branch.
    BrCond { cond: Src, then_edge: u32, else_edge: u32 },
    /// Multi-way branch: first matching case wins, else default.
    Mbr { disc: Src, cases: Vec<(Src, u32)>, default_edge: u32 },
    /// `call` / `invoke`. `normal_edge`/`unwind_edge` are `Some` only
    /// for `invoke`; both are edges of the *calling* function.
    Call {
        callee: Src,
        args: Vec<Src>,
        dst: Option<u32>,
        normal_edge: Option<u32>,
        unwind_edge: Option<u32>,
    },
    /// Unwind to the nearest enclosing `invoke`.
    Unwind,
    /// Scalar load with precomputed access width.
    Load { addr: Src, dst: u32, width: Width, signed: bool, exc: bool },
    /// Scalar store with precomputed access width.
    Store { val: Src, addr: Src, width: Width, exc: bool },
    /// General GEP with a step plan.
    Gep { base: Src, steps: Vec<GepStep>, dst: u32 },
    /// GEP whose indices folded entirely into one constant offset.
    GepConst { base: Src, offset: u64, dst: u32 },
    /// Stack allocation with precomputed unit size.
    Alloca { count: Option<Src>, unit: u64, dst: u32 },
    /// Type conversion with precomputed kind.
    Cast { src: Src, kind: CastKind, dst: u32 },
    /// An instruction that always raises this trap (e.g. a bitwise op
    /// on floats, which the structural interpreter traps as Software).
    AlwaysTrap { kind: TrapKind },
}

/// A function lowered to the flat pre-decoded form.
pub struct PreFunction {
    name: Name,
    /// Block names by arena index (trap coordinates).
    block_names: Vec<Name>,
    insts: Vec<PreInst>,
    /// Per flat PC: `(block arena index, index within the block's
    /// original instruction list, phis included)` — the precise trap
    /// coordinate the structural interpreter would report.
    traps: Vec<(u32, u32)>,
    edges: Vec<Edge>,
    num_slots: u32,
    num_args: u32,
    entry_pc: u32,
}

impl fmt::Debug for PreFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreFunction")
            .field("name", &self.name)
            .field("insts", &self.insts.len())
            .field("edges", &self.edges.len())
            .field("slots", &self.num_slots)
            .finish()
    }
}

impl PreFunction {
    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of flat (non-phi) instructions.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of distinct CFG edges with compiled move lists.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Register-file slots this function needs per frame.
    pub fn num_slots(&self) -> u32 {
        self.num_slots
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    module: &'a Module,
    func: &'a Function,
    global_addrs: &'a [u64],
    bool_ty: TypeId,
    slots: HashMap<ValueId, u32>,
    block_start: Vec<u32>,
    insts: Vec<PreInst>,
    traps: Vec<(u32, u32)>,
    edges: Vec<Edge>,
    edge_map: HashMap<(BlockId, BlockId), u32>,
}

impl<'a> Decoder<'a> {
    /// Resolves `v` to a slot or an immediate, exactly as
    /// `Interpreter::value` would evaluate it.
    fn resolve(&self, v: ValueId) -> Src {
        if let Some(&s) = self.slots.get(&v) {
            return Src::Reg(s);
        }
        match self.func.value_as_const(v) {
            Some(Constant::GlobalAddr { global, .. }) => {
                Src::Imm(self.global_addrs[global.index()])
            }
            Some(Constant::FunctionAddr { func, .. }) => {
                Src::Imm(function_value(func.index() as u32))
            }
            Some(c) => Src::Imm(canonical_const(self.module, c)),
            None => panic!("use of undefined value {v}"),
        }
    }

    fn vty(&self, v: ValueId) -> TypeId {
        self.func.value_type(v, self.bool_ty)
    }

    fn slot_of(&self, v: ValueId) -> u32 {
        self.slots[&v]
    }

    /// Interns the `pred → succ` edge, compiling the target's phis into
    /// a parallel move list.
    fn edge(&mut self, pred: BlockId, succ: BlockId) -> u32 {
        if let Some(&e) = self.edge_map.get(&(pred, succ)) {
            return e;
        }
        let mut moves = Vec::new();
        let mut trap = false;
        for &i in self.func.block(succ).insts() {
            if self.func.inst(i).opcode() != Opcode::Phi {
                break;
            }
            let incoming = self.func.phi_incoming(i, pred);
            let result = self.func.inst_result(i);
            match (incoming, result) {
                (Some(incoming), Some(result)) => {
                    moves.push((self.slot_of(result), self.resolve(incoming)));
                }
                _ => {
                    // `Interpreter::run_phis` delivers a Software trap
                    // before committing any of the edge's assignments.
                    moves.clear();
                    trap = true;
                    break;
                }
            }
        }
        let id = u32::try_from(self.edges.len()).expect("edge count overflow");
        self.edges.push(Edge {
            target_pc: self.block_start[succ.index()],
            target_block: succ.index() as u32,
            moves,
            trap,
        });
        self.edge_map.insert((pred, succ), id);
        id
    }

    /// Plans a GEP: constant indices (and all struct fields) fold into
    /// constant offsets; consecutive constants merge.
    fn plan_gep(&mut self, ops: &[ValueId]) -> (Src, Vec<GepStep>) {
        let tt = self.module.types();
        let cfg = self.module.target();
        let base = self.resolve(ops[0]);
        let mut cur = tt.pointee(self.vty(ops[0])).expect("gep base");
        let mut steps: Vec<GepStep> = Vec::new();
        let mut pending: u64 = 0;
        let mut has_pending = false;
        for (i, &idx) in ops[1..].iter().enumerate() {
            let elem = if i == 0 {
                // first index scales by the pointee size and does not
                // descend into the type
                cur
            } else {
                match tt.kind(cur).clone() {
                    TypeKind::Array { elem, .. } => {
                        cur = elem;
                        elem
                    }
                    TypeKind::LiteralStruct(_) | TypeKind::Struct(_) => {
                        let field = self
                            .func
                            .value_as_const(idx)
                            .and_then(Constant::as_int_bits)
                            .expect("struct index constant")
                            as usize;
                        pending = pending.wrapping_add(cfg.field_offset(tt, cur, field));
                        has_pending = true;
                        cur = tt.struct_fields(cur).expect("defined")[field];
                        continue;
                    }
                    _ => {
                        if has_pending {
                            steps.push(GepStep::Const(pending));
                        }
                        steps.push(GepStep::Trap);
                        return (base, steps);
                    }
                }
            };
            let size = cfg.size_of(tt, elem) as i64;
            match self.resolve(idx) {
                Src::Imm(k) => {
                    pending = pending.wrapping_add((k as i64).wrapping_mul(size) as u64);
                    has_pending = true;
                }
                s @ Src::Reg(_) => {
                    if has_pending {
                        steps.push(GepStep::Const(pending));
                        pending = 0;
                        has_pending = false;
                    }
                    steps.push(GepStep::Scaled { idx: s, size });
                }
            }
        }
        if has_pending {
            steps.push(GepStep::Const(pending));
        }
        (base, steps)
    }
}

/// Pre-classifies a cast, mirroring [`crate::interp::cast_value`]
/// branch for branch.
fn cast_kind(tt: &TypeTable, from: TypeId, to: TypeId) -> CastKind {
    if tt.is_float(from) {
        let src32 = matches!(tt.kind(from), TypeKind::Float);
        return match tt.kind(to) {
            TypeKind::Float => CastKind::FloatToFloat { src32, dst32: true },
            TypeKind::Double => CastKind::FloatToFloat { src32, dst32: false },
            TypeKind::Bool => CastKind::FloatToBool { src32 },
            _ if tt.is_integer(to) => CastKind::FloatToInt {
                src32,
                width: tt.int_bits(to).expect("int"),
                signed: tt.is_signed_integer(to),
            },
            _ => CastKind::Identity,
        };
    }
    match tt.kind(to) {
        TypeKind::Bool => CastKind::IntToBool,
        TypeKind::Float => CastKind::IntToFloat {
            src_signed: tt.is_signed_integer(from),
            dst32: true,
        },
        TypeKind::Double => CastKind::IntToFloat {
            src_signed: tt.is_signed_integer(from),
            dst32: false,
        },
        TypeKind::Pointer(_) => CastKind::Identity,
        _ if tt.is_integer(to) => CastKind::IntToInt {
            width: tt.int_bits(to).expect("int"),
            signed: tt.is_signed_integer(to),
        },
        _ => CastKind::Identity,
    }
}

/// Runtime half of [`cast_kind`].
fn apply_cast(kind: CastKind, v: u64) -> u64 {
    match kind {
        CastKind::Identity => v,
        CastKind::IntToBool => u64::from(v != 0),
        CastKind::IntToInt { width, signed } => canonicalize(v, width, signed),
        CastKind::IntToFloat { src_signed, dst32 } => {
            let x = if src_signed { v as i64 as f64 } else { v as f64 };
            to_bits(x, dst32)
        }
        CastKind::FloatToFloat { src32, dst32 } => to_bits(from_bits(v, src32), dst32),
        CastKind::FloatToBool { src32 } => u64::from(from_bits(v, src32) != 0.0),
        CastKind::FloatToInt { src32, width, signed } => {
            let x = from_bits(v, src32);
            let raw = if signed { (x as i64) as u64 } else { x as u64 };
            canonicalize(raw, width, signed)
        }
    }
}

/// Runtime comparison over a pre-classified operand class, mirroring
/// [`crate::interp::compare`].
fn do_cmp(op: Opcode, class: CmpClass, a: u64, b: u64) -> bool {
    use std::cmp::Ordering;
    let ord = match class {
        CmpClass::F32 | CmpClass::F64 => {
            let is32 = matches!(class, CmpClass::F32);
            let (x, y) = (from_bits(a, is32), from_bits(b, is32));
            match x.partial_cmp(&y) {
                Some(o) => o,
                None => return matches!(op, Opcode::SetNe),
            }
        }
        CmpClass::Sint => (a as i64).cmp(&(b as i64)),
        CmpClass::Uint => a.cmp(&b),
    };
    match op {
        Opcode::SetEq => ord == Ordering::Equal,
        Opcode::SetNe => ord != Ordering::Equal,
        Opcode::SetLt => ord == Ordering::Less,
        Opcode::SetGt => ord == Ordering::Greater,
        Opcode::SetLe => ord != Ordering::Greater,
        Opcode::SetGe => ord != Ordering::Less,
        _ => unreachable!("comparison opcode"),
    }
}

/// Lowers one function body into the flat pre-decoded form.
///
/// # Panics
///
/// Panics on malformed SSA that the verifier rejects (undefined value
/// uses, non-constant struct indices, phis after non-phis) — the same
/// inputs on which the structural interpreter panics.
#[allow(clippy::too_many_lines)]
fn decode_function(
    module: &Module,
    fid: FuncId,
    global_addrs: &[u64],
    bool_ty: TypeId,
) -> PreFunction {
    let func = module.function(fid);
    let tt = module.types();
    let cfg = module.target();
    let order = func.block_order().to_vec();
    let arena_len = order.iter().map(|b| b.index() + 1).max().unwrap_or(0);

    // slot assignment: arguments first (slot i == argument i), then
    // every instruction result in layout order
    let mut slots: HashMap<ValueId, u32> = HashMap::new();
    for (i, &a) in func.args().iter().enumerate() {
        slots.insert(a, i as u32);
    }
    let mut next = func.args().len() as u32;
    for (_, i) in func.inst_iter() {
        if let Some(r) = func.inst_result(i) {
            slots.insert(r, next);
            next += 1;
        }
    }

    // flat PCs: phis occupy no flat slots
    let mut block_start = vec![0u32; arena_len];
    let mut pc = 0u32;
    for &b in &order {
        block_start[b.index()] = pc;
        let insts = func.block(b).insts();
        let nphi = insts
            .iter()
            .take_while(|&&i| func.inst(i).opcode() == Opcode::Phi)
            .count();
        assert!(
            insts[nphi..]
                .iter()
                .all(|&i| func.inst(i).opcode() != Opcode::Phi),
            "phi not at block head in %{}",
            func.name()
        );
        pc += (insts.len() - nphi) as u32;
    }

    let mut block_names = vec![Name::new(""); arena_len];
    for &b in &order {
        block_names[b.index()] = Name::new(func.block(b).name());
    }

    let mut d = Decoder {
        module,
        func,
        global_addrs,
        bool_ty,
        slots,
        block_start,
        insts: Vec::with_capacity(pc as usize),
        traps: Vec::with_capacity(pc as usize),
        edges: Vec::new(),
        edge_map: HashMap::new(),
    };

    for &b in &order {
        for (pos, &iid) in func.block(b).insts().iter().enumerate() {
            let inst = func.inst(iid);
            let op = inst.opcode();
            if op == Opcode::Phi {
                continue;
            }
            let ops = inst.operands();
            let blocks = inst.block_operands();
            let exc = inst.exceptions_enabled();
            let result_ty = inst.result_type();
            let dst = func.inst_result(iid).map(|r| d.slot_of(r));
            let pre = match op {
                _ if op.is_binary() => {
                    let a = d.resolve(ops[0]);
                    let bb = d.resolve(ops[1]);
                    if tt.is_float(result_ty) {
                        if matches!(
                            op,
                            Opcode::Add | Opcode::Sub | Opcode::Mul | Opcode::Div | Opcode::Rem
                        ) {
                            PreInst::FloatBin {
                                op,
                                a,
                                b: bb,
                                dst: dst.expect("binary result"),
                                is32: matches!(tt.kind(result_ty), TypeKind::Float),
                            }
                        } else {
                            // bitwise op on floats: the structural
                            // interpreter traps Software
                            PreInst::AlwaysTrap { kind: TrapKind::Software }
                        }
                    } else {
                        PreInst::IntBin {
                            op,
                            a,
                            b: bb,
                            dst: dst.expect("binary result"),
                            width: tt.int_bits(result_ty).expect("integer binary op"),
                            signed: tt.is_signed_integer(result_ty),
                            exc,
                        }
                    }
                }
                _ if op.is_comparison() => {
                    let ty = d.vty(ops[0]);
                    let class = if tt.is_float(ty) {
                        if matches!(tt.kind(ty), TypeKind::Float) {
                            CmpClass::F32
                        } else {
                            CmpClass::F64
                        }
                    } else if tt.is_signed_integer(ty) {
                        CmpClass::Sint
                    } else {
                        CmpClass::Uint
                    };
                    PreInst::Cmp {
                        op,
                        class,
                        a: d.resolve(ops[0]),
                        b: d.resolve(ops[1]),
                        dst: dst.expect("cmp result"),
                    }
                }
                Opcode::Ret => PreInst::Ret {
                    val: ops.first().map(|&v| d.resolve(v)),
                },
                Opcode::Br => {
                    if ops.is_empty() {
                        PreInst::Jump { edge: d.edge(b, blocks[0]) }
                    } else {
                        PreInst::BrCond {
                            cond: d.resolve(ops[0]),
                            then_edge: d.edge(b, blocks[0]),
                            else_edge: d.edge(b, blocks[1]),
                        }
                    }
                }
                Opcode::Mbr => PreInst::Mbr {
                    disc: d.resolve(ops[0]),
                    cases: ops[1..]
                        .iter()
                        .zip(&blocks[1..])
                        .map(|(&c, &t)| (d.resolve(c), d.edge(b, t)))
                        .collect(),
                    default_edge: d.edge(b, blocks[0]),
                },
                Opcode::Call | Opcode::Invoke => PreInst::Call {
                    callee: d.resolve(ops[0]),
                    args: ops[1..].iter().map(|&a| d.resolve(a)).collect(),
                    dst,
                    normal_edge: (op == Opcode::Invoke).then(|| d.edge(b, blocks[0])),
                    unwind_edge: (op == Opcode::Invoke).then(|| d.edge(b, blocks[1])),
                },
                Opcode::Unwind => PreInst::Unwind,
                Opcode::Load => {
                    let pointee = tt.pointee(d.vty(ops[0])).expect("pointer");
                    let (width, signed) = access_of(module, pointee);
                    PreInst::Load {
                        addr: d.resolve(ops[0]),
                        dst: dst.expect("load result"),
                        width,
                        signed,
                        exc,
                    }
                }
                Opcode::Store => {
                    let pointee = tt.pointee(d.vty(ops[1])).expect("pointer");
                    let (width, _) = access_of(module, pointee);
                    PreInst::Store {
                        val: d.resolve(ops[0]),
                        addr: d.resolve(ops[1]),
                        width,
                        exc,
                    }
                }
                Opcode::GetElementPtr => {
                    let (base, steps) = d.plan_gep(ops);
                    let dst = dst.expect("gep result");
                    match steps.as_slice() {
                        [] => PreInst::GepConst { base, offset: 0, dst },
                        [GepStep::Const(off)] => PreInst::GepConst { base, offset: *off, dst },
                        _ => PreInst::Gep { base, steps, dst },
                    }
                }
                Opcode::Alloca => {
                    let pointee = tt.pointee(result_ty).expect("alloca pointer");
                    PreInst::Alloca {
                        count: ops.first().map(|&c| d.resolve(c)),
                        unit: cfg.size_of(tt, pointee).max(1),
                        dst: dst.expect("alloca result"),
                    }
                }
                Opcode::Cast => PreInst::Cast {
                    src: d.resolve(ops[0]),
                    kind: cast_kind(tt, d.vty(ops[0]), result_ty),
                    dst: dst.expect("cast result"),
                },
                Opcode::Phi => unreachable!("phis skipped above"),
                _ => unreachable!("all opcodes covered"),
            };
            d.insts.push(pre);
            d.traps.push((b.index() as u32, pos as u32));
        }
    }

    let entry_pc = d.block_start[func.entry_block().index()];
    PreFunction {
        name: Name::new(func.name()),
        block_names,
        insts: d.insts,
        traps: d.traps,
        edges: d.edges,
        num_slots: next,
        num_args: func.args().len() as u32,
        entry_pc,
    }
}

// ---------------------------------------------------------------------------
// The per-module pre-decode cache
// ---------------------------------------------------------------------------

/// Per-module pre-decode state: the global layout, interned function
/// metadata, and the lazily-populated [`PreFunction`] cache.
///
/// Share one `Rc<PreModule>` across repeated [`FastInterpreter`]
/// constructions (oracle stages, benchmark iterations) so each function
/// is decoded exactly once per module.
pub struct PreModule<'m> {
    module: &'m Module,
    image: GlobalImage,
    bool_ty: TypeId,
    /// Function names for [`Env`] (`llva.stack.funcname`).
    func_names: Vec<String>,
    /// Which functions are intrinsics, resolved once by name.
    intrinsics: Vec<Option<Intrinsic>>,
    is_declaration: Vec<bool>,
    decoded: RefCell<Vec<Option<Rc<PreFunction>>>>,
}

impl<'m> fmt::Debug for PreModule<'m> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreModule")
            .field("module", &self.module.name())
            .field("decoded", &self.decoded_functions())
            .finish()
    }
}

impl<'m> PreModule<'m> {
    /// Builds the per-module state; no function is decoded yet.
    pub fn new(module: &'m Module) -> PreModule<'m> {
        let image = layout_globals(module);
        let bool_ty = module
            .types()
            .iter()
            .find_map(|(id, k)| matches!(k, TypeKind::Bool).then_some(id))
            .unwrap_or_else(|| TypeId::from_index((u32::MAX - 1) as usize));
        let n = module.num_functions();
        let mut func_names = Vec::with_capacity(n);
        let mut intrinsics = Vec::with_capacity(n);
        let mut is_declaration = Vec::with_capacity(n);
        for (_, f) in module.functions() {
            func_names.push(f.name().to_string());
            intrinsics.push(Intrinsic::by_name(f.name()));
            is_declaration.push(f.is_declaration());
        }
        PreModule {
            module,
            image,
            bool_ty,
            func_names,
            intrinsics,
            is_declaration,
            decoded: RefCell::new(vec![None; n]),
        }
    }

    /// The underlying module.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The pre-decoded body of `fid`, decoding it on first use.
    pub fn get(&self, fid: FuncId) -> Rc<PreFunction> {
        if let Some(p) = &self.decoded.borrow()[fid.index()] {
            return p.clone();
        }
        let p = Rc::new(decode_function(
            self.module,
            fid,
            &self.image.addrs,
            self.bool_ty,
        ));
        self.decoded.borrow_mut()[fid.index()] = Some(p.clone());
        p
    }

    /// Eagerly decodes every defined function (benchmark harnesses use
    /// this to separate decode time from run time).
    pub fn decode_all(&self) {
        for fid in self.module.function_ids() {
            if !self.is_declaration[fid.index()] {
                let _ = self.get(fid);
            }
        }
    }

    /// How many functions have been decoded so far.
    pub fn decoded_functions(&self) -> usize {
        self.decoded.borrow().iter().filter(|p| p.is_some()).count()
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Debug-build fill pattern for unused register-slab words; reads of it
/// mean a use-before-def escaped the verifier, frees catch stale reads.
const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

struct FastFrame {
    /// Function index (for [`StackView`]).
    func: u32,
    pre: Rc<PreFunction>,
    /// Saved PC: meaningful while a callee runs (points at the call).
    pc: u32,
    /// This frame's first register slot in the slab.
    base: usize,
    slots: u32,
    saved_sp: u64,
    /// Edge (in the *caller's* function) to take when an `unwind`
    /// reaches this frame; `Some` iff the frame was entered via `invoke`.
    unwind_edge: Option<u32>,
}

/// The pre-decoded register-file interpreter.
///
/// Semantically identical to [`Interpreter`](crate::interp::Interpreter)
/// — same values, same precise traps (kind, function, block, index),
/// same instruction counts — but executing flat [`PreFunction`] code
/// over a dense register slab. Use it when throughput matters (the
/// conformance oracle, workload sweeps); use the structural interpreter
/// when you want code that reads like the paper's semantics.
pub struct FastInterpreter<'m> {
    pre: Rc<PreModule<'m>>,
    /// The memory image (globals initialized at construction).
    pub mem: Memory,
    /// Intrinsic state shared with native execution.
    pub env: Env,
    frames: Vec<FastFrame>,
    /// The frame slab: every live frame's registers, contiguously.
    regs: Vec<u64>,
    /// High-water mark of live registers (`regs[top..]` is free).
    top: usize,
    sp: u64,
    insts: u64,
    fuel: u64,
    /// Fault injection: panic once `insts` reaches this count (see
    /// [`FastInterpreter::arm_panic_after`]). `None` = disarmed.
    panic_after: Option<u64>,
    phi_scratch: Vec<u64>,
    arg_buf: Vec<u64>,
}

impl<'m> fmt::Debug for FastInterpreter<'m> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FastInterpreter")
            .field("module", &self.pre.module.name())
            .field("frames", &self.frames.len())
            .field("insts", &self.insts)
            .finish()
    }
}

#[inline]
fn read(regs: &[u64], base: usize, s: Src) -> u64 {
    match s {
        Src::Reg(r) => regs[base + r as usize],
        Src::Imm(v) => v,
    }
}

impl<'m> FastInterpreter<'m> {
    /// Creates a fast interpreter with its own pre-decode cache and the
    /// default 16 MiB memory ([`DEFAULT_MEMORY_SIZE`]).
    pub fn new(module: &'m Module) -> FastInterpreter<'m> {
        FastInterpreter::with_predecoded(Rc::new(PreModule::new(module)))
    }

    /// Creates a fast interpreter with a custom memory size.
    pub fn with_memory_size(module: &'m Module, mem_size: u64) -> FastInterpreter<'m> {
        FastInterpreter::with_predecoded_memory(Rc::new(PreModule::new(module)), mem_size)
    }

    /// Creates a fast interpreter sharing an existing pre-decode cache
    /// (repeated runs pay the decode cost once).
    pub fn with_predecoded(pre: Rc<PreModule<'m>>) -> FastInterpreter<'m> {
        FastInterpreter::with_predecoded_memory(pre, DEFAULT_MEMORY_SIZE)
    }

    /// [`FastInterpreter::with_predecoded`] with a custom memory size.
    pub fn with_predecoded_memory(pre: Rc<PreModule<'m>>, mem_size: u64) -> FastInterpreter<'m> {
        let module = pre.module;
        let mut mem = Memory::new(mem_size, pre.image.heap_base, module.target().endianness);
        mem.write_bytes(llva_machine::memory::GLOBAL_BASE, &pre.image.image)
            .expect("global image fits");
        let sp = mem.initial_sp();
        FastInterpreter {
            pre,
            mem,
            env: Env::new(),
            frames: Vec::new(),
            regs: Vec::new(),
            top: 0,
            sp,
            insts: 0,
            fuel: u64::MAX,
            panic_after: None,
            phi_scratch: Vec::new(),
            arg_buf: Vec::new(),
        }
    }

    /// Limits the number of LLVA instructions executed.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Fault injection for the supervisor and robustness tests: panic
    /// (deterministically, mid-dispatch) once `insts` instructions have
    /// executed — the unwind crosses a live register slab and frame
    /// stack, the worst case for `catch_unwind` recovery.
    pub fn arm_panic_after(&mut self, insts: u64) {
        self.panic_after = Some(insts);
    }

    /// LLVA instructions executed so far (identical to the structural
    /// interpreter's count on the same program).
    pub fn insts_executed(&self) -> u64 {
        self.insts
    }

    /// The shared pre-decode cache.
    pub fn predecoded(&self) -> &Rc<PreModule<'m>> {
        &self.pre
    }

    /// Checks frame-slab invariants: live frames tile `regs[..top]`
    /// contiguously in stack order, and (in debug builds, where freed
    /// slots are poisoned) nothing above `top` holds live data.
    pub fn slab_consistent(&self) -> bool {
        let mut expect = 0usize;
        for f in &self.frames {
            if f.base != expect {
                return false;
            }
            expect += f.slots as usize;
        }
        if expect != self.top {
            return false;
        }
        #[cfg(debug_assertions)]
        if !self.regs[self.top..].iter().all(|&v| v == POISON) {
            return false;
        }
        true
    }

    /// Current depth of the call stack.
    pub fn call_depth(&self) -> usize {
        self.frames.len()
    }

    /// Runs function `name` with the given argument values.
    ///
    /// # Errors
    ///
    /// Exactly as [`Interpreter::run`](crate::interp::Interpreter::run):
    /// precise traps (after invoking a registered trap handler, §3.5),
    /// [`InterpError::OutOfFuel`], or [`InterpError::NoSuchFunction`].
    pub fn run(&mut self, name: &str, args: &[u64]) -> Result<u64, InterpError> {
        let module = self.pre.module;
        let fid = module
            .function_by_name(name)
            .filter(|&f| !module.function(f).is_declaration())
            .ok_or_else(|| InterpError::NoSuchFunction(name.to_string()))?;
        match self.run_function(fid, args) {
            Err(InterpError::Trap(trap)) => {
                // §3.5: deliver to a registered trap handler, then report.
                let trap_no = trap_number(trap.kind);
                if let Some(&handler) = self.env.trap_handlers.get(&trap_no) {
                    if (handler as usize) < module.num_functions() {
                        let h = FuncId::from_index(handler as usize);
                        if !module.function(h).is_declaration() {
                            let _ = self.run_function(h, &[u64::from(trap_no), 0]);
                        }
                    }
                }
                Err(InterpError::Trap(trap))
            }
            other => other,
        }
    }

    fn reset(&mut self) {
        self.frames.clear();
        #[cfg(debug_assertions)]
        for v in &mut self.regs[..self.top] {
            *v = POISON;
        }
        self.top = 0;
    }

    fn push_frame(
        &mut self,
        fid: FuncId,
        args: &[u64],
        unwind_edge: Option<u32>,
    ) -> Rc<PreFunction> {
        let pre = self.pre.get(fid);
        let base = self.top;
        let needed = base + pre.num_slots as usize;
        if self.regs.len() < needed {
            let fill = if cfg!(debug_assertions) { POISON } else { 0 };
            self.regs.resize(needed, fill);
        }
        debug_assert!(
            self.regs[base..needed].iter().all(|&v| v == POISON),
            "frame slab region reused without poisoning"
        );
        self.top = needed;
        for i in 0..pre.num_args as usize {
            self.regs[base + i] = args.get(i).copied().unwrap_or(0);
        }
        self.frames.push(FastFrame {
            func: fid.index() as u32,
            pre: pre.clone(),
            pc: pre.entry_pc,
            base,
            slots: pre.num_slots,
            saved_sp: self.sp,
            unwind_edge,
        });
        pre
    }

    fn pop_frame(&mut self) -> FastFrame {
        let f = self.frames.pop().expect("active frame");
        self.sp = f.saved_sp;
        #[cfg(debug_assertions)]
        for v in &mut self.regs[f.base..self.top] {
            *v = POISON;
        }
        self.top = f.base;
        f
    }

    /// Builds the precise trap for the instruction at `pc` of `cur`.
    fn trap_at(&self, cur: &PreFunction, pc: u32, kind: TrapKind) -> InterpError {
        let (b, i) = cur.traps[pc as usize];
        InterpError::Trap(LlvaTrap {
            kind,
            function: cur.name.clone(),
            block: cur.block_names[b as usize].clone(),
            index: i as usize,
        })
    }

    /// Performs edge `e` of `cur`: the parallel phi moves, then returns
    /// the new PC (or the Software trap for a malformed edge).
    fn take_edge(&mut self, cur: &PreFunction, base: usize, e: u32) -> Result<u32, InterpError> {
        let edge = &cur.edges[e as usize];
        if edge.trap {
            return Err(InterpError::Trap(LlvaTrap {
                kind: TrapKind::Software,
                function: cur.name.clone(),
                block: cur.block_names[edge.target_block as usize].clone(),
                index: 0,
            }));
        }
        match edge.moves.as_slice() {
            [] => {}
            &[(d, s)] => {
                let v = read(&self.regs, base, s);
                self.regs[base + d as usize] = v;
            }
            moves => {
                self.phi_scratch.clear();
                for &(_, s) in moves {
                    let v = read(&self.regs, base, s);
                    self.phi_scratch.push(v);
                }
                for (k, &(d, _)) in moves.iter().enumerate() {
                    self.regs[base + d as usize] = self.phi_scratch[k];
                }
            }
        }
        Ok(edge.target_pc)
    }

    /// The dispatch loop. Never touches [`Module`] structures: all hot
    /// state is the current [`PreFunction`], the register slab, `pc`,
    /// and `base`.
    #[allow(clippy::too_many_lines)]
    fn run_function(&mut self, fid: FuncId, args: &[u64]) -> Result<u64, InterpError> {
        self.reset();
        let mut cur = self.push_frame(fid, args, None);
        let mut pc = cur.entry_pc;
        let mut base = self.frames.last().expect("frame just pushed").base;
        loop {
            if self.fuel == 0 {
                self.frames.last_mut().expect("active frame").pc = pc;
                return Err(InterpError::OutOfFuel);
            }
            if self.panic_after.is_some_and(|n| self.insts >= n) {
                panic!("injected fast-interpreter fault after {} insts", self.insts);
            }
            self.fuel -= 1;
            self.insts += 1;
            self.env.clock += 1;

            let inst = &cur.insts[pc as usize];
            match inst {
                PreInst::IntBin { op, a, b, dst, width, signed, exc } => {
                    let x = read(&self.regs, base, *a);
                    let y = read(&self.regs, base, *b);
                    let out = match int_binary(*op, x, y, *width, *signed) {
                        Some(v) => v,
                        None => {
                            if *exc {
                                return Err(self.trap_at(&cur, pc, TrapKind::DivideByZero));
                            }
                            0
                        }
                    };
                    self.regs[base + *dst as usize] = out;
                    pc += 1;
                }
                PreInst::FloatBin { op, a, b, dst, is32 } => {
                    let x = from_bits(read(&self.regs, base, *a), *is32);
                    let y = from_bits(read(&self.regs, base, *b), *is32);
                    let r = match op {
                        Opcode::Add => x + y,
                        Opcode::Sub => x - y,
                        Opcode::Mul => x * y,
                        Opcode::Div => x / y,
                        Opcode::Rem => x % y,
                        _ => unreachable!("decode rejects other float ops"),
                    };
                    self.regs[base + *dst as usize] = to_bits(r, *is32);
                    pc += 1;
                }
                PreInst::Cmp { op, class, a, b, dst } => {
                    let x = read(&self.regs, base, *a);
                    let y = read(&self.regs, base, *b);
                    self.regs[base + *dst as usize] = u64::from(do_cmp(*op, *class, x, y));
                    pc += 1;
                }
                PreInst::Ret { val } => {
                    let ret = val.map(|s| read(&self.regs, base, s)).unwrap_or(0);
                    self.pop_frame();
                    let Some(caller) = self.frames.last() else {
                        return Ok(ret);
                    };
                    cur = caller.pre.clone();
                    base = caller.base;
                    pc = caller.pc;
                    let PreInst::Call { dst, normal_edge, .. } = &cur.insts[pc as usize] else {
                        unreachable!("caller pc rests on its call instruction");
                    };
                    let (dst, normal_edge) = (*dst, *normal_edge);
                    if let Some(d) = dst {
                        self.regs[base + d as usize] = ret;
                    }
                    match normal_edge {
                        Some(e) => pc = self.take_edge(&cur, base, e)?,
                        None => pc += 1,
                    }
                }
                PreInst::Jump { edge } => {
                    let e = *edge;
                    pc = self.take_edge(&cur, base, e)?;
                }
                PreInst::BrCond { cond, then_edge, else_edge } => {
                    let e = if read(&self.regs, base, *cond) != 0 {
                        *then_edge
                    } else {
                        *else_edge
                    };
                    pc = self.take_edge(&cur, base, e)?;
                }
                PreInst::Mbr { disc, cases, default_edge } => {
                    let dv = read(&self.regs, base, *disc);
                    let mut e = *default_edge;
                    for &(c, t) in cases {
                        if read(&self.regs, base, c) == dv {
                            e = t;
                            break;
                        }
                    }
                    pc = self.take_edge(&cur, base, e)?;
                }
                PreInst::Call { callee, args, dst, normal_edge, unwind_edge } => {
                    let cv = read(&self.regs, base, *callee);
                    let idx = (cv & !FUNC_TAG) as usize;
                    if cv & FUNC_TAG == 0 || idx >= self.pre.intrinsics.len() {
                        return Err(self.trap_at(&cur, pc, TrapKind::BadFunctionPointer));
                    }
                    self.arg_buf.clear();
                    for &a in args {
                        let v = read(&self.regs, base, a);
                        self.arg_buf.push(v);
                    }
                    let (dst, normal_edge, unwind_edge) = (*dst, *normal_edge, *unwind_edge);
                    if let Some(intr) = self.pre.intrinsics[idx] {
                        let stack = StackView {
                            functions: self.frames.iter().rev().map(|f| f.func).collect(),
                        };
                        let argv = std::mem::take(&mut self.arg_buf);
                        let result = self.env.handle(
                            intr,
                            &argv,
                            &mut self.mem,
                            &stack,
                            &self.pre.func_names,
                        );
                        self.arg_buf = argv;
                        let ret = match result {
                            Ok(v) => v,
                            Err(k) => return Err(self.trap_at(&cur, pc, k)),
                        };
                        if let Some(d) = dst {
                            self.regs[base + d as usize] = ret;
                        }
                        match normal_edge {
                            Some(e) => pc = self.take_edge(&cur, base, e)?,
                            None => pc += 1,
                        }
                        continue;
                    }
                    if self.pre.is_declaration[idx] {
                        return Err(self.trap_at(&cur, pc, TrapKind::BadFunctionPointer));
                    }
                    if self.frames.len() > 4096 {
                        return Err(self.trap_at(&cur, pc, TrapKind::StackOverflow));
                    }
                    self.frames.last_mut().expect("active frame").pc = pc;
                    let argv = std::mem::take(&mut self.arg_buf);
                    cur = self.push_frame(FuncId::from_index(idx), &argv, unwind_edge);
                    self.arg_buf = argv;
                    pc = cur.entry_pc;
                    base = self.frames.last().expect("frame just pushed").base;
                }
                PreInst::Unwind => {
                    // pop frames to the nearest enclosing invoke (§3.1)
                    let unhandled = self.trap_at(&cur, pc, TrapKind::UnhandledUnwind);
                    loop {
                        if self.frames.is_empty() {
                            return Err(unhandled);
                        }
                        let f = self.pop_frame();
                        if let Some(e) = f.unwind_edge {
                            let Some(caller) = self.frames.last() else {
                                return Err(unhandled);
                            };
                            cur = caller.pre.clone();
                            base = caller.base;
                            pc = self.take_edge(&cur, base, e)?;
                            break;
                        }
                        if self.frames.is_empty() {
                            return Err(unhandled);
                        }
                    }
                }
                PreInst::Load { addr, dst, width, signed, exc } => {
                    let a = read(&self.regs, base, *addr);
                    let loaded = if *signed {
                        self.mem.load_signed(a, *width)
                    } else {
                        self.mem.load(a, *width)
                    };
                    let v = match loaded {
                        Ok(v) => v,
                        Err(k) => {
                            if *exc {
                                return Err(self.trap_at(&cur, pc, k));
                            }
                            0
                        }
                    };
                    self.regs[base + *dst as usize] = v;
                    pc += 1;
                }
                PreInst::Store { val, addr, width, exc } => {
                    let v = read(&self.regs, base, *val);
                    let a = read(&self.regs, base, *addr);
                    if let Err(k) = self.mem.store(a, v, *width) {
                        if *exc {
                            return Err(self.trap_at(&cur, pc, k));
                        }
                    }
                    pc += 1;
                }
                PreInst::Gep { base: b, steps, dst } => {
                    let mut addr = read(&self.regs, base, *b);
                    let mut fault = false;
                    for step in steps {
                        match *step {
                            GepStep::Scaled { idx, size } => {
                                let k = read(&self.regs, base, idx) as i64;
                                addr = addr.wrapping_add(k.wrapping_mul(size) as u64);
                            }
                            GepStep::Const(off) => addr = addr.wrapping_add(off),
                            GepStep::Trap => {
                                fault = true;
                                break;
                            }
                        }
                    }
                    if fault {
                        return Err(self.trap_at(&cur, pc, TrapKind::MemoryFault));
                    }
                    self.regs[base + *dst as usize] = addr;
                    pc += 1;
                }
                PreInst::GepConst { base: b, offset, dst } => {
                    let addr = read(&self.regs, base, *b).wrapping_add(*offset);
                    self.regs[base + *dst as usize] = addr;
                    pc += 1;
                }
                PreInst::Alloca { count, unit, dst } => {
                    let count = count.map(|c| read(&self.regs, base, c)).unwrap_or(1);
                    let size = (unit * count + 7) & !7;
                    if self.sp < self.mem.stack_limit() + size {
                        return Err(self.trap_at(&cur, pc, TrapKind::StackOverflow));
                    }
                    self.sp -= size;
                    self.regs[base + *dst as usize] = self.sp;
                    pc += 1;
                }
                PreInst::Cast { src, kind, dst } => {
                    let v = read(&self.regs, base, *src);
                    self.regs[base + *dst as usize] = apply_cast(*kind, v);
                    pc += 1;
                }
                PreInst::AlwaysTrap { kind } => {
                    return Err(self.trap_at(&cur, pc, *kind));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{cast_value, compare};

    fn parse(src: &str) -> Module {
        let m = llva_core::parser::parse_module(src).expect("parses");
        llva_core::verifier::verify_module(&m).expect("verifies");
        m
    }

    #[test]
    fn cast_kind_matches_cast_value_on_every_scalar_pair() {
        let mut tt = TypeTable::new();
        let scalars = [
            tt.bool(),
            tt.ubyte(),
            tt.sbyte(),
            tt.ushort(),
            tt.short(),
            tt.uint(),
            tt.int(),
            tt.ulong(),
            tt.long(),
            tt.float(),
            tt.double(),
        ];
        let long = tt.long();
        let ptr = tt.pointer_to(long);
        let all: Vec<TypeId> = scalars.iter().copied().chain([ptr]).collect();
        let samples = [
            0u64,
            1,
            2,
            0x7F,
            0x80,
            0xFF,
            0xFFFF_FFFF,
            u64::MAX,
            (-5i64) as u64,
            f32::consts_sample_bits(),
            (2.5f64).to_bits(),
            (-3.75f64).to_bits(),
            f64::INFINITY.to_bits(),
            f64::NAN.to_bits(),
        ];
        for &from in &all {
            for &to in &all {
                let kind = cast_kind(&tt, from, to);
                for &v in &samples {
                    assert_eq!(
                        apply_cast(kind, v),
                        cast_value(&tt, from, to, v),
                        "cast {} -> {} of {v:#x} (kind {kind:?})",
                        tt.display(from),
                        tt.display(to),
                    );
                }
            }
        }
    }

    trait SampleBits {
        fn consts_sample_bits() -> u64;
    }

    impl SampleBits for f32 {
        fn consts_sample_bits() -> u64 {
            u64::from((1.5f32).to_bits())
        }
    }

    #[test]
    fn cmp_class_matches_structural_compare() {
        let mut tt = TypeTable::new();
        let cases = [
            (tt.int(), CmpClass::Sint),
            (tt.uint(), CmpClass::Uint),
            (tt.bool(), CmpClass::Uint),
            (tt.float(), CmpClass::F32),
            (tt.double(), CmpClass::F64),
        ];
        let ops = [
            Opcode::SetEq,
            Opcode::SetNe,
            Opcode::SetLt,
            Opcode::SetGt,
            Opcode::SetLe,
            Opcode::SetGe,
        ];
        let samples = [
            0u64,
            1,
            (-1i64) as u64,
            42,
            (1.5f64).to_bits(),
            u64::from((1.5f32).to_bits()),
            f64::NAN.to_bits(),
            u64::from(f32::NAN.to_bits()),
        ];
        for &(ty, class) in &cases {
            for &op in &ops {
                for &a in &samples {
                    for &b in &samples {
                        assert_eq!(
                            do_cmp(op, class, a, b),
                            compare(op, a, b, &tt, ty),
                            "{op} on {} with {a:#x}, {b:#x}",
                            tt.display(ty),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn constants_become_immediates() {
        let m = parse(
            r#"
int %f(int %x) {
entry:
    %a = add int %x, 7
    ret int %a
}
"#,
        );
        let pre = PreModule::new(&m);
        let f = pre.get(m.function_by_name("f").expect("f"));
        assert_eq!(f.num_insts(), 2);
        let PreInst::IntBin { a, b, .. } = &f.insts[0] else {
            panic!("expected IntBin, got {:?}", f.insts[0]);
        };
        assert!(matches!(a, Src::Reg(0)), "arg is slot 0: {a:?}");
        assert_eq!(*b, Src::Imm(7), "constant folded to immediate");
    }

    #[test]
    fn struct_gep_folds_to_constant_offset() {
        let m = parse(
            r#"
%Pair = type { int, long }

long* %f(%Pair* %p) {
entry:
    %f1 = getelementptr %Pair* %p, long 0, ubyte 1
    ret long* %f1
}
"#,
        );
        let pre = PreModule::new(&m);
        let f = pre.get(m.function_by_name("f").expect("f"));
        let PreInst::GepConst { offset, .. } = &f.insts[0] else {
            panic!("expected fully-folded GEP, got {:?}", f.insts[0]);
        };
        assert_eq!(*offset, 8, "long field sits at offset 8");
    }

    #[test]
    fn phis_compile_into_edge_moves() {
        let m = parse(
            r#"
int %sum(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %i
}
"#,
        );
        let pre = PreModule::new(&m);
        let f = pre.get(m.function_by_name("sum").expect("sum"));
        // the phi occupies no flat slot
        assert_eq!(f.num_insts(), 6, "br, setlt, br, add, br, ret (no phi)");
        // entry->header and body->header each carry one move
        let with_moves = f.edges.iter().filter(|e| !e.moves.is_empty()).count();
        assert_eq!(with_moves, 2, "two phi-carrying edges: {:?}", f.edges);
        assert!(f.edges.iter().all(|e| !e.trap));
    }

    #[test]
    fn predecode_is_cached_per_function() {
        let m = parse(
            r#"
int %helper(int %x) {
entry:
    ret int %x
}
int %main() {
entry:
    %a = call int %helper(int 1)
    %b = call int %helper(int 2)
    %s = add int %a, %b
    ret int %s
}
"#,
        );
        let pre = Rc::new(PreModule::new(&m));
        assert_eq!(pre.decoded_functions(), 0, "decode is lazy");
        let mut i = FastInterpreter::with_predecoded(pre.clone());
        assert_eq!(i.run("main", &[]), Ok(3));
        assert_eq!(pre.decoded_functions(), 2);
        // a second interpreter over the same cache decodes nothing new
        let mut j = FastInterpreter::with_predecoded(pre.clone());
        assert_eq!(j.run("main", &[]), Ok(3));
        assert_eq!(pre.decoded_functions(), 2);
    }

    #[test]
    fn slab_reused_across_calls() {
        let m = parse(
            r#"
int %leaf(int %x) {
entry:
    %y = add int %x, 1
    ret int %y
}
int %main(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %i2 = call int %leaf(int %i)
    br label %header
exit:
    ret int %i
}
"#,
        );
        let mut i = FastInterpreter::new(&m);
        assert_eq!(i.run("main", &[100]), Ok(100));
        assert!(i.slab_consistent());
        // 100 leaf calls reuse one slab: high water = main + leaf frames
        let main_pre = i.pre.get(m.function_by_name("main").expect("main"));
        let leaf_pre = i.pre.get(m.function_by_name("leaf").expect("leaf"));
        assert!(
            i.regs.len() <= (main_pre.num_slots() + leaf_pre.num_slots()) as usize,
            "slab high water {} exceeds one main+leaf frame pair",
            i.regs.len()
        );
    }
}
