//! CFG simplification.
//!
//! Three cleanups, iterated to a local fixpoint per function:
//!
//! 1. remove blocks unreachable from the entry (pruning their `phi`
//!    entries in surviving successors),
//! 2. merge a block into its unique predecessor when that predecessor
//!    ends in an unconditional branch to it (straight-line fusion), and
//! 3. collapse conditional branches whose two targets are identical.
//!
//! Together with `constfold`'s constant-branch rewriting this removes
//! the dead arms the static compiler could prove away — optimization the
//! paper argues should happen *before* translation (§4.2, item 1).

use crate::pass::ModulePass;
use llva_core::dominators::reverse_postorder;
use llva_core::function::{BlockId, Function};
use llva_core::instruction::Opcode;
use llva_core::module::Module;
use std::collections::HashSet;

/// The CFG simplification pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimplifyCfg {
    removed_blocks: usize,
    merged_blocks: usize,
}

impl SimplifyCfg {
    /// Creates the pass.
    pub fn new() -> SimplifyCfg {
        SimplifyCfg::default()
    }

    /// Unreachable blocks removed by the last run.
    pub fn removed_blocks(&self) -> usize {
        self.removed_blocks
    }

    /// Straight-line merges performed by the last run.
    pub fn merged_blocks(&self) -> usize {
        self.merged_blocks
    }
}

impl ModulePass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplifycfg"
    }

    fn run(&mut self, module: &mut Module) -> bool {
        self.removed_blocks = 0;
        self.merged_blocks = 0;
        for fid in module.function_ids() {
            let func = module.function_mut(fid);
            if func.is_declaration() {
                continue;
            }
            loop {
                let mut changed = false;
                changed |= collapse_same_target_cond_br(func);
                let removed = remove_unreachable(func);
                self.removed_blocks += removed;
                changed |= removed > 0;
                let merged = merge_straight_line(func);
                self.merged_blocks += merged;
                changed |= merged > 0;
                if !changed {
                    break;
                }
            }
        }
        self.removed_blocks + self.merged_blocks > 0
    }
}

/// `br bool %c, label %x, label %x` → `br label %x` (with a phi fix:
/// such a branch would create duplicate phi predecessors downstream).
fn collapse_same_target_cond_br(func: &mut Function) -> bool {
    let mut changed = false;
    for &b in &func.block_order().to_vec() {
        let Some(t) = func.terminator(b) else { continue };
        let inst = func.inst(t);
        if inst.opcode() == Opcode::Br && inst.operands().len() == 1 {
            let targets = inst.block_operands();
            if targets.len() == 2 && targets[0] == targets[1] {
                let dest = targets[0];
                func.inst_mut(t).set_operands(vec![]);
                func.inst_mut(t).set_block_operands(vec![dest]);
                changed = true;
            }
        }
    }
    changed
}

/// Removes blocks unreachable from the entry, pruning phi entries in
/// the remaining blocks. Returns how many were removed.
fn remove_unreachable(func: &mut Function) -> usize {
    let reachable: HashSet<BlockId> = reverse_postorder(func).into_iter().collect();
    let dead: Vec<BlockId> = func
        .block_order()
        .iter()
        .copied()
        .filter(|b| !reachable.contains(b))
        .collect();
    if dead.is_empty() {
        return 0;
    }
    // prune phi entries that flow in from dead blocks
    for &b in &reachable {
        let phis: Vec<_> = func
            .block(b)
            .insts()
            .iter()
            .copied()
            .filter(|&i| func.inst(i).opcode() == Opcode::Phi)
            .collect();
        for phi in phis {
            let inst = func.inst(phi);
            let keep: Vec<usize> = inst
                .block_operands()
                .iter()
                .enumerate()
                .filter(|(_, pb)| reachable.contains(pb))
                .map(|(i, _)| i)
                .collect();
            if keep.len() != inst.block_operands().len() {
                let ops: Vec<_> = keep.iter().map(|&i| inst.operands()[i]).collect();
                let blocks: Vec<_> = keep.iter().map(|&i| inst.block_operands()[i]).collect();
                func.inst_mut(phi).set_operands(ops);
                func.inst_mut(phi).set_block_operands(blocks);
            }
        }
    }
    let n = dead.len();
    for b in dead {
        func.remove_block(b);
    }
    n
}

/// Merges `b2` into `b1` when `b1` ends in `br label %b2` and `b2` has
/// exactly one predecessor. Returns how many merges were performed.
fn merge_straight_line(func: &mut Function) -> usize {
    let mut merged = 0;
    loop {
        let preds = func.predecessors();
        let mut candidate: Option<(BlockId, BlockId)> = None;
        for &b1 in func.block_order() {
            let Some(t) = func.terminator(b1) else { continue };
            let inst = func.inst(t);
            if inst.opcode() != Opcode::Br || !inst.operands().is_empty() {
                continue;
            }
            let b2 = inst.block_operands()[0];
            if b2 == b1 {
                continue; // self-loop
            }
            if b2 == func.entry_block() {
                continue;
            }
            let p = preds.get(&b2).map(Vec::as_slice).unwrap_or(&[]);
            if p.len() == 1 && p[0] == b1 {
                // b2 must not start with phis referencing b1 (after a
                // single-pred prune they are collapsible, but leave that
                // to constfold's phi collapse; skip if phis present).
                let has_phi = func
                    .block(b2)
                    .insts()
                    .first()
                    .map(|&i| func.inst(i).opcode() == Opcode::Phi)
                    .unwrap_or(false);
                if !has_phi {
                    candidate = Some((b1, b2));
                    break;
                }
            }
        }
        let Some((b1, b2)) = candidate else { break };
        // Move b2's instructions into b1 (dropping b1's terminator).
        let term = func.terminator(b1).expect("b1 has a br");
        func.remove_inst(term);
        let b2_insts: Vec<_> = func.block(b2).insts().to_vec();
        for i in b2_insts {
            func.remove_inst(i);
            func.reattach_inst(b1, i);
        }
        // phis in b2's successors must now name b1 as predecessor.
        for succ in func.successors(b1) {
            let phis: Vec<_> = func
                .block(succ)
                .insts()
                .iter()
                .copied()
                .filter(|&i| func.inst(i).opcode() == Opcode::Phi)
                .collect();
            for phi in phis {
                for pb in func.inst_mut(phi).block_operands_mut() {
                    if *pb == b2 {
                        *pb = b1;
                    }
                }
            }
        }
        func.remove_block(b2);
        merged += 1;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constfold::ConstFold;
    use crate::pass::PassManager;
    use llva_core::builder::FunctionBuilder;
    use llva_core::layout::TargetConfig;
    use llva_core::verifier::verify_module;

    #[test]
    fn removes_unreachable_block() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        let dead = b.block("dead");
        b.switch_to(e);
        let x = b.func().args()[0];
        b.ret(Some(x));
        b.switch_to(dead);
        b.ret(Some(x));
        let mut pass = SimplifyCfg::new();
        assert!(pass.run(&mut m));
        assert_eq!(pass.removed_blocks(), 1);
        assert_eq!(m.function(f).num_blocks(), 1);
        verify_module(&m).expect("verifies");
    }

    #[test]
    fn merges_straight_line_blocks() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        let mid = b.block("mid");
        let end = b.block("end");
        b.switch_to(e);
        b.br(mid);
        b.switch_to(mid);
        let x = b.func().args()[0];
        let y = b.add(x, x);
        b.br(end);
        b.switch_to(end);
        b.ret(Some(y));
        let mut pass = SimplifyCfg::new();
        assert!(pass.run(&mut m));
        assert_eq!(m.function(f).num_blocks(), 1);
        assert_eq!(m.function(f).num_insts(), 2);
        verify_module(&m).expect("verifies");
    }

    #[test]
    fn constant_branch_then_simplify_removes_dead_arm() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        let t = b.block("t");
        let u = b.block("u");
        b.switch_to(e);
        let c = b.bconst(false);
        b.cond_br(c, t, u);
        b.switch_to(t);
        let one = b.iconst(int, 1);
        b.ret(Some(one));
        b.switch_to(u);
        let two = b.iconst(int, 2);
        b.ret(Some(two));
        let mut pm = PassManager::new();
        pm.add(ConstFold::new())
            .add(SimplifyCfg::new())
            .verify_after_each(true);
        pm.run(&mut m);
        let func = m.function(f);
        assert_eq!(func.num_blocks(), 1);
        let ret = func.block(func.entry_block()).insts()[0];
        let rv = func.inst(ret).operands()[0];
        assert_eq!(
            func.value_as_const(rv)
                .and_then(llva_core::value::Constant::as_int_bits),
            Some(2)
        );
    }

    #[test]
    fn phi_entries_pruned_when_pred_dies() {
        let src = r#"
int %f(bool %c) {
entry:
    br bool %c, label %a, label %join
a:
    br label %join
dead:
    br label %join
join:
    %v = phi int [ 1, %entry ], [ 2, %a ], [ 3, %dead ]
    ret int %v
}
"#;
        let mut m = llva_core::parser::parse_module(src).expect("parses");
        let mut pass = SimplifyCfg::new();
        assert!(pass.run(&mut m));
        verify_module(&m).expect("verifies after pruning");
        let f = m.function_by_name("f").expect("f");
        let func = m.function(f);
        let phi = func
            .inst_iter()
            .find(|&(_, i)| func.inst(i).opcode() == Opcode::Phi)
            .map(|(_, i)| i)
            .expect("phi survives");
        assert_eq!(func.inst(phi).operands().len(), 2);
    }

    #[test]
    fn same_target_cond_br_collapses() {
        let src = r#"
int %f(bool %c) {
entry:
    br bool %c, label %x, label %x
x:
    ret int 1
}
"#;
        let mut m = llva_core::parser::parse_module(src).expect("parses");
        let mut pass = SimplifyCfg::new();
        assert!(pass.run(&mut m));
        verify_module(&m).expect("verifies");
        let f = m.function_by_name("f").expect("f");
        // entry and x should have merged into one block
        assert_eq!(m.function(f).num_blocks(), 1);
    }
}
