//! Per-rewrite-rule equivalence for the shared peephole pass.
//!
//! The unit tests in `src/peephole.rs` check the rewrites structurally
//! (what the stream looks like after); these tests check them
//! *semantically*: for each rule on each target, a hand-built
//! instruction stream that triggers exactly that rule is executed on
//! the machine simulator before and after the pass, and the final
//! machine state — return value, the registers the stream touches,
//! and the memory it stores to — must be identical.
//!
//! The second half is the "peephole off vs on" oracle: whole modules
//! translated with the pass disabled (`ExecutionManager::set_peephole`)
//! must produce the same observable outcome and the same global-memory
//! image as with it enabled, across all three targets. (The standing
//! conformance sweep runs the same comparison as the `<isa>:nopeep`
//! oracle stages.)

use llva_backend::peephole::{self, PeepholeConfig, PeepholeStats};
use llva_conform::{generate, GenConfig};
use llva_core::layout::Endianness;
use llva_engine::llee::{ExecutionManager, TargetIsa};
use llva_machine::common::Exit;
use llva_machine::memory::{Memory, GLOBAL_BASE};
use llva_machine::Width;

const MEM_SIZE: u64 = 1 << 20;
/// Scratch address the store/load streams use — inside the heap
/// segment, clear of the null guard page and the globals.
const SCRATCH: i64 = 0x2000;

// ---------------------------------------------------------------------------
// x86
// ---------------------------------------------------------------------------

mod x86_rules {
    use super::*;
    use llva_machine::x86::{Cond, Gpr, MemOp, X86Inst, X86Machine, X86Program};

    /// Runs `code` as function 0 and returns (halt value, gprs, scratch word).
    fn exec(code: &[X86Inst]) -> (u64, Vec<u64>, u64) {
        let mut program = X86Program::new(1, Vec::new());
        program.install(0, code.to_vec());
        let mem = Memory::new(MEM_SIZE, GLOBAL_BASE, Endianness::Little);
        let mut m = X86Machine::new(mem);
        m.call_entry(0, &[]).expect("entry");
        match m.run(&program, 10_000) {
            Exit::Halt(v) => {
                let regs: Vec<u64> = Gpr::ALL
                    .iter()
                    .filter(|r| **r != Gpr::Esp) // stream lengths differ only in pc
                    .map(|r| m.reg(*r))
                    .collect();
                let word = m.mem.load(SCRATCH as u64, Width::B8).unwrap_or(0);
                (v, regs, word)
            }
            other => panic!("stream did not halt: {other:?}"),
        }
    }

    /// Applies the pass, asserts `expect_rule` fired, and checks
    /// machine-state equivalence of the before/after streams.
    fn check_rule(before: Vec<X86Inst>, expect_rule: fn(&PeepholeStats) -> usize, shrinks: bool) {
        let (after, stats) = peephole::run::<peephole::X86Peep>(before.clone(), &PeepholeConfig::on());
        assert!(expect_rule(&stats) > 0, "rule did not fire: {stats:?}");
        if shrinks {
            assert!(after.len() < before.len(), "pass removed nothing");
        } else {
            // replacement rewrites keep the stream length
            assert_eq!(after.len(), before.len());
            assert_ne!(after, before, "pass rewrote nothing");
        }
        assert_eq!(exec(&before), exec(&after), "machine state diverged");
    }

    #[test]
    fn redundant_move_elision_preserves_state() {
        check_rule(
            vec![
                X86Inst::MovRI(Gpr::Eax, 42),
                X86Inst::MovRR(Gpr::Eax, Gpr::Eax),
                X86Inst::Ret,
            ],
            |s| s.moves_elided,
            true,
        );
    }

    #[test]
    fn load_after_store_forwarding_preserves_state() {
        let slot = MemOp { base: Gpr::Ecx, disp: 0 };
        check_rule(
            vec![
                X86Inst::MovRI(Gpr::Ecx, SCRATCH),
                X86Inst::MovRI(Gpr::Eax, 7),
                X86Inst::Store { src: Gpr::Eax, mem: slot, width: Width::B8 },
                X86Inst::Load { dst: Gpr::Edx, mem: slot, width: Width::B8, signed: false },
                X86Inst::MovRR(Gpr::Eax, Gpr::Edx),
                X86Inst::Ret,
            ],
            |s| s.loads_forwarded,
            false,
        );
    }

    #[test]
    fn branch_over_branch_folding_preserves_state() {
        check_rule(
            vec![
                X86Inst::MovRI(Gpr::Eax, 5),
                X86Inst::CmpRI(Gpr::Eax, 5),
                X86Inst::Jcc(Cond::E, 4),
                X86Inst::Jmp(6),
                X86Inst::MovRI(Gpr::Eax, 111),
                X86Inst::Ret,
                X86Inst::MovRI(Gpr::Eax, 222),
                X86Inst::Ret,
            ],
            |s| s.branches_folded,
            true,
        );
    }
}

// ---------------------------------------------------------------------------
// SPARC
// ---------------------------------------------------------------------------

mod sparc_rules {
    use super::*;
    use llva_machine::sparc::{
        AluOp, Cond, RegOrImm, SparcInst, SparcMachine, SparcProgram, G1, G2, G3, O0,
    };

    fn exec(code: &[SparcInst]) -> (u64, Vec<u64>, u64) {
        let mut program = SparcProgram::new(1, Vec::new());
        program.install(0, code.to_vec());
        let mem = Memory::new(MEM_SIZE, GLOBAL_BASE, Endianness::Big);
        let mut m = SparcMachine::new(mem);
        m.call_entry(0, &[]).expect("entry");
        match m.run(&program, 10_000) {
            Exit::Halt(v) => {
                let regs = vec![m.reg(O0), m.reg(G1), m.reg(G2), m.reg(G3)];
                let word = m.mem.load(SCRATCH as u64, Width::B8).unwrap_or(0);
                (v, regs, word)
            }
            other => panic!("stream did not halt: {other:?}"),
        }
    }

    fn check_rule(before: Vec<SparcInst>, expect_rule: fn(&PeepholeStats) -> usize, shrinks: bool) {
        let (after, stats) =
            peephole::run::<peephole::SparcPeep>(before.clone(), &PeepholeConfig::on());
        assert!(expect_rule(&stats) > 0, "rule did not fire: {stats:?}");
        if shrinks {
            assert!(after.len() < before.len(), "pass removed nothing");
        } else {
            assert_eq!(after.len(), before.len());
            assert_ne!(after, before, "pass rewrote nothing");
        }
        assert_eq!(exec(&before), exec(&after), "machine state diverged");
    }

    fn movi(rd: llva_machine::sparc::Reg, imm: i16) -> SparcInst {
        SparcInst::Alu {
            op: AluOp::Or,
            rs1: llva_machine::sparc::G0,
            rhs: RegOrImm::Imm(imm),
            rd,
            trapping: false,
        }
    }

    #[test]
    fn redundant_move_elision_preserves_state() {
        check_rule(
            vec![
                movi(O0, 42),
                // `or %o0, %o0, 0` — the collapsed move idiom
                SparcInst::Alu {
                    op: AluOp::Or,
                    rs1: O0,
                    rhs: RegOrImm::Imm(0),
                    rd: O0,
                    trapping: false,
                },
                SparcInst::Ret,
            ],
            |s| s.moves_elided,
            true,
        );
    }

    #[test]
    fn load_after_store_forwarding_preserves_state() {
        check_rule(
            vec![
                movi(G1, SCRATCH as i16),
                movi(O0, 7),
                SparcInst::St { rs: O0, rs1: G1, off: RegOrImm::Imm(0), width: Width::B8 },
                SparcInst::Ld {
                    rd: G2,
                    rs1: G1,
                    off: RegOrImm::Imm(0),
                    width: Width::B8,
                    signed: false,
                },
                SparcInst::Alu {
                    op: AluOp::Add,
                    rs1: G2,
                    rhs: RegOrImm::Imm(1),
                    rd: O0,
                    trapping: false,
                },
                SparcInst::Ret,
            ],
            |s| s.loads_forwarded,
            false,
        );
    }

    #[test]
    fn branch_over_branch_folding_preserves_state() {
        check_rule(
            vec![
                movi(O0, 5),
                SparcInst::Cmp { rs1: O0, rhs: RegOrImm::Imm(5) },
                SparcInst::Br { cond: Cond::E, target: 4 },
                SparcInst::Ba { target: 6 },
                movi(O0, 111),
                SparcInst::Ret,
                movi(O0, 222),
                SparcInst::Ret,
            ],
            |s| s.branches_folded,
            true,
        );
    }
}

// ---------------------------------------------------------------------------
// RISC-V
// ---------------------------------------------------------------------------

mod riscv_rules {
    use super::*;
    use llva_machine::riscv::{
        AluOp, BrCond, RegOrImm, RiscvInst, RiscvMachine, RiscvProgram, A0, T0, T1, X0,
    };

    fn exec(code: &[RiscvInst]) -> (u64, Vec<u64>, u64) {
        let mut program = RiscvProgram::new(1, Vec::new());
        program.install(0, code.to_vec());
        let mem = Memory::new(MEM_SIZE, GLOBAL_BASE, Endianness::Little);
        let mut m = RiscvMachine::new(mem);
        m.call_entry(0, &[]).expect("entry");
        match m.run(&program, 10_000) {
            Exit::Halt(v) => {
                let regs = vec![m.reg(A0), m.reg(T0), m.reg(T1)];
                let word = m.mem.load(SCRATCH as u64, Width::B8).unwrap_or(0);
                (v, regs, word)
            }
            other => panic!("stream did not halt: {other:?}"),
        }
    }

    fn check_rule(before: Vec<RiscvInst>, expect_rule: fn(&PeepholeStats) -> usize, shrinks: bool) {
        let (after, stats) =
            peephole::run::<peephole::RiscvPeep>(before.clone(), &PeepholeConfig::on());
        assert!(expect_rule(&stats) > 0, "rule did not fire: {stats:?}");
        if shrinks {
            assert!(after.len() < before.len(), "pass removed nothing");
        } else {
            assert_eq!(after.len(), before.len());
            assert_ne!(after, before, "pass rewrote nothing");
        }
        assert_eq!(exec(&before), exec(&after), "machine state diverged");
    }

    fn movi(rd: llva_machine::riscv::Reg, imm: i16) -> RiscvInst {
        RiscvInst::Alu {
            op: AluOp::Add,
            rs1: X0,
            rhs: RegOrImm::Imm(imm),
            rd,
            trapping: false,
        }
    }

    #[test]
    fn redundant_move_elision_preserves_state() {
        check_rule(
            vec![
                movi(A0, 42),
                // `addi a0, a0, 0` — the collapsed move idiom
                RiscvInst::Alu {
                    op: AluOp::Add,
                    rs1: A0,
                    rhs: RegOrImm::Imm(0),
                    rd: A0,
                    trapping: false,
                },
                RiscvInst::Ret,
            ],
            |s| s.moves_elided,
            true,
        );
    }

    #[test]
    fn load_after_store_forwarding_preserves_state() {
        check_rule(
            vec![
                movi(T0, SCRATCH as i16),
                movi(A0, 7),
                RiscvInst::St { rs: A0, rs1: T0, off: 0, width: Width::B8 },
                RiscvInst::Ld { rd: T1, rs1: T0, off: 0, width: Width::B8, signed: false },
                RiscvInst::Alu {
                    op: AluOp::Add,
                    rs1: T1,
                    rhs: RegOrImm::Imm(1),
                    rd: A0,
                    trapping: false,
                },
                RiscvInst::Ret,
            ],
            |s| s.loads_forwarded,
            false,
        );
    }

    #[test]
    fn branch_over_branch_folding_preserves_state() {
        check_rule(
            vec![
                movi(A0, 5),
                movi(T0, 5),
                RiscvInst::Br { cond: BrCond::Eq, rs1: A0, rs2: T0, target: 4 },
                RiscvInst::J { target: 6 },
                movi(A0, 111),
                RiscvInst::Ret,
                movi(A0, 222),
                RiscvInst::Ret,
            ],
            |s| s.branches_folded,
            true,
        );
    }
}

// ---------------------------------------------------------------------------
// Peephole off vs on: whole-module observable equivalence
// ---------------------------------------------------------------------------

/// Runs `module` through LLEE with the peephole pass on and off and
/// returns both (outcome-string, global-memory image) observations.
fn off_vs_on(
    module: &llva_core::module::Module,
    isa: TargetIsa,
    entry: &str,
    args: &[u64],
) -> [(String, Option<Vec<u8>>); 2] {
    [true, false].map(|enabled| {
        let mut mgr = ExecutionManager::new(module.clone(), isa);
        mgr.set_peephole(enabled);
        mgr.set_fuel(50_000_000);
        let outcome = match mgr.run(entry, args) {
            Ok(out) => format!("value {:#x}", out.value),
            Err(e) => format!("error {e}"),
        };
        let image = llva_backend::layout_globals(module);
        let globals = mgr.read_memory(GLOBAL_BASE, image.heap_base - GLOBAL_BASE);
        (outcome, globals)
    })
}

#[test]
fn peephole_off_matches_on_for_generated_modules() {
    // 24 generated seeds × 3 targets: same outcome, same final global
    // memory, with and without the pass.
    let cfg = GenConfig::default();
    for seed in 0..24u64 {
        let tc = generate(seed, &cfg);
        for isa in TargetIsa::ALL {
            let [on, off] = off_vs_on(&tc.module, isa, &tc.entry, &tc.args);
            assert_eq!(on, off, "seed {seed} isa {isa}: peephole changed observable state");
        }
    }
}

#[test]
fn peephole_off_matches_on_for_workloads() {
    // a few Table 2 programs end to end (the full set runs in the
    // cross-target suite; this adds the off/on axis on real code)
    for name in ["ptrdist-anagram", "ptrdist-bc", "164.gzip"] {
        let w = llva_workloads::by_name(name).expect("known workload");
        let module = w.compile(llva_core::layout::TargetConfig::ia32());
        for isa in TargetIsa::ALL {
            let [on, off] = off_vs_on(&module, isa, "main", &[]);
            assert_eq!(on, off, "{name} isa {isa}: peephole changed observable state");
        }
    }
}
