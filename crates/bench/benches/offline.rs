//! Offline-translation throughput bench: serial vs parallel
//! `translate_all`, and cold vs warm runs of the per-function
//! incremental cache (paper §4.1, scaled up).
//!
//! The interesting comparisons:
//! * `offline/serial` vs `offline/parallel-N` — fanning per-function
//!   compilation across worker threads beats one thread on any
//!   multi-core host, since `compile_x86`/`compile_sparc` are pure
//!   over `&Module`. (On a single-CPU machine the parallel rows only
//!   show the thread overhead; the speedup needs ≥2 cores.)
//! * `incremental/cold` vs `incremental/warm-after-one-edit` — after a
//!   constrained SMC edit of a single function, per-function content
//!   hashes mean the warm pass re-translates exactly one function and
//!   loads the rest from the cache.

use criterion::{criterion_group, criterion_main, Criterion};
use llva_engine::llee::{ExecutionManager, TargetIsa};
use llva_engine::storage::{MemStorage, SyncStorage};

/// A big multi-function module: a realistic workload (254.gap, run
/// through the standard pipeline) is only a handful of functions, so
/// per-call thread overhead would dominate; a large synthetic module
/// with many mid-sized functions is what offline translation of a real
/// application looks like and is where fan-out pays off.
fn big_module() -> llva_core::module::Module {
    let mut src = String::new();
    for i in 0..160 {
        src.push_str(&format!(
            r#"
int %f{i}(int %x, int %y) {{
entry:
    %a0 = add int %x, {i}
    %a1 = mul int %a0, %y
    %a2 = xor int %a1, 48271
    %a3 = shr int %a2, 3
    %a4 = sub int %a3, %x
    %c0 = setlt int %a4, 1000
    br bool %c0, label %loop, label %done
loop:
    %i0 = phi int [ 0, %entry ], [ %i1, %loop ]
    %s0 = phi int [ %a4, %entry ], [ %s1, %loop ]
    %s1 = add int %s0, %i0
    %i1 = add int %i0, 1
    %c1 = setlt int %i1, 8
    br bool %c1, label %loop, label %done
done:
    %r = phi int [ %a4, %entry ], [ %s1, %loop ]
    ret int %r
}}
"#
        ));
    }
    src.push_str(
        r#"
int %main() {
entry:
    %r = call int %f0(int 3, int 4)
    ret int %r
}
"#,
    );
    llva_core::parser::parse_module(&src).expect("parses")
}

fn bench_offline_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(15);
    let module = big_module();

    group.bench_function("serial", |b| {
        b.iter_batched(
            || ExecutionManager::new(module.clone(), TargetIsa::X86),
            |mut mgr| {
                mgr.translate_all().expect("translates");
                mgr
            },
            criterion::BatchSize::SmallInput,
        );
    });
    for workers in [2, 4, 8] {
        group.bench_function(format!("parallel-{workers}"), |b| {
            b.iter_batched(
                || ExecutionManager::new(module.clone(), TargetIsa::X86),
                |mut mgr| {
                    mgr.translate_all_parallel(workers).expect("translates");
                    mgr
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_incremental_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(15);
    let module = big_module();
    let edited = module
        .functions()
        .find(|(_, f)| !f.is_declaration())
        .map(|(_, f)| f.name().to_string())
        .expect("a defined function");

    // cold: empty cache, everything compiles
    group.bench_function("cold", |b| {
        b.iter_batched(
            || {
                let mut mgr = ExecutionManager::new(module.clone(), TargetIsa::X86);
                mgr.set_storage(Box::new(SyncStorage::new(MemStorage::new())), "bench");
                mgr
            },
            |mut mgr| {
                mgr.translate_all_parallel(0).expect("translates");
                mgr
            },
            criterion::BatchSize::SmallInput,
        );
    });

    // warm-after-one-edit: the cache holds every translation; one
    // function was edited through the SMC path, so exactly one
    // translation is stale
    let storage = SyncStorage::new(MemStorage::new());
    {
        let mut mgr = ExecutionManager::new(module.clone(), TargetIsa::X86);
        mgr.set_storage(Box::new(storage.clone()), "bench");
        mgr.translate_all_parallel(0).expect("translates");
    }
    group.bench_function("warm-after-one-edit", |b| {
        b.iter_batched(
            || {
                let mut mgr = ExecutionManager::new(module.clone(), TargetIsa::X86);
                mgr.set_storage(Box::new(storage.clone()), "bench");
                mgr.modify_function(&edited, |m, fid| {
                    m.discard_function_body(fid);
                    let int = m.types_mut().int();
                    let mut b = llva_core::builder::FunctionBuilder::new(m, fid);
                    let e = b.block("entry");
                    b.switch_to(e);
                    let v = b.iconst(int, 0);
                    b.ret(Some(v));
                });
                mgr
            },
            |mut mgr| {
                mgr.translate_all_parallel(0).expect("translates");
                assert!(
                    mgr.stats().functions_translated <= 1,
                    "warm pass must re-translate at most the edited function"
                );
                mgr
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_offline_parallel, bench_incremental_cache);
criterion_main!(benches);
