//! `llva-run` — LLEE from the command line: execute virtual object code
//! (or assembly) on the reference interpreter or a simulated processor,
//! with optional offline caching through the storage API and persistent
//! module images for warm starts.
//!
//! Usage:
//!   llva-run program.bc [args...]
//!       [--isa x86|sparc|riscv|interp] [--entry NAME]
//!       [--cache DIR]            # enable the offline storage API (§4.1)
//!       [--emit-image FILE]      # translate offline, write a module image
//!       [--image FILE]           # warm-load from a module image
//!       [--stats]

use llva::engine::llee::{ExecutionManager, TargetIsa};
use std::process::exit;

fn load(path: &str) -> llva::core::module::Module {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("llva-run: cannot read {path}: {e}");
        exit(1);
    });
    if bytes.starts_with(llva::core::bytecode::MAGIC) {
        llva::core::bytecode::decode_module(&bytes).unwrap_or_else(|e| {
            eprintln!("llva-run: {path}: {e}");
            exit(1);
        })
    } else {
        let src = String::from_utf8_lossy(&bytes);
        llva::core::parser::parse_module(&src).unwrap_or_else(|e| {
            eprintln!("llva-run: {path}: {e}");
            exit(1);
        })
    }
}

/// Reads a module image, repairing corrupt sections in place first
/// (quarantine + rebuild of only the damage; see `engine::image`).
fn load_image(path: &str) -> llva::engine::LlvaImage {
    let image = llva::engine::read_image_file(path).unwrap_or_else(|e| {
        eprintln!("llva-run: {path}: {e}");
        exit(1);
    });
    if image.sections().iter().all(|&k| image.section_ok(k)) {
        return image;
    }
    match llva::engine::repair_image_file(path) {
        Ok(report) => {
            let rebuilt: Vec<String> = report.rebuilt.iter().map(ToString::to_string).collect();
            eprintln!(
                "llva-run: {path}: repaired corrupt section(s) [{}] (original quarantined)",
                rebuilt.join(", ")
            );
        }
        Err(e) => {
            eprintln!("llva-run: {path}: unrepairable image: {e}");
            exit(1);
        }
    }
    llva::engine::read_image_file(path).unwrap_or_else(|e| {
        eprintln!("llva-run: {path}: {e}");
        exit(1);
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut isa = "x86".to_string();
    let mut entry = "main".to_string();
    let mut cache: Option<String> = None;
    let mut emit_image: Option<String> = None;
    let mut image_path: Option<String> = None;
    let mut stats = false;
    let mut prog_args: Vec<u64> = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--isa" => isa = it.next().cloned().unwrap_or_default(),
            "--entry" => entry = it.next().cloned().unwrap_or_default(),
            "--cache" => cache = it.next().cloned(),
            "--emit-image" => emit_image = it.next().cloned(),
            "--image" => image_path = it.next().cloned(),
            "--stats" => stats = true,
            "-h" | "--help" => {
                eprintln!(
                    "usage: llva-run program.bc [args...] [--isa x86|sparc|riscv|interp] \
                     [--entry NAME] [--cache DIR] [--emit-image FILE] [--image FILE] [--stats]"
                );
                exit(0);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => prog_args.push(other.parse().unwrap_or_else(|_| {
                eprintln!("llva-run: program arguments must be integers, got '{other}'");
                exit(1);
            })),
        }
    }
    // a warm start needs no program file: the image is self-contained
    let (module, image) = match (&image_path, &path) {
        (Some(img), _) => {
            let image = load_image(img);
            let module = image.decode_module().unwrap_or_else(|e| {
                eprintln!("llva-run: {img}: {e}");
                exit(1);
            });
            (module, Some(std::sync::Arc::new(image)))
        }
        (None, Some(path)) => (load(path), None),
        (None, None) => {
            eprintln!("usage: llva-run program.bc [args...]  (or --image FILE)");
            exit(1);
        }
    };

    if let Some(out) = emit_image {
        // offline image build (§4.1 translation during idle time):
        // bytecode + full pre-decode, plus native code unless interp
        let bytes = if isa == "interp" {
            let pre = llva::engine::PreModule::new(&module);
            pre.decode_all();
            let mut b = llva::engine::ImageBuilder::new(&module);
            b.add_predecode(&pre);
            b.finish()
        } else {
            let target = parse_isa(&isa);
            let mut mgr = ExecutionManager::new(module, target);
            if let Err(e) = mgr.translate_all_parallel(0) {
                eprintln!("llva-run: translation failed: {e}");
                exit(1);
            }
            mgr.build_image(true)
        };
        if let Err(e) = llva::engine::write_image_file(&out, &bytes) {
            eprintln!("llva-run: cannot write {out}: {e}");
            exit(1);
        }
        if stats {
            eprintln!("llva-run: wrote {} image bytes to {out}", bytes.len());
        }
        exit(0);
    }

    if isa == "interp" {
        // with an image: run from the deserialized pre-decode (no SSA
        // re-lowering); without: the structural reference interpreter
        if let Some(image) = &image {
            let (pre, covered) = image.premodule(&module).unwrap_or_else(|e| {
                eprintln!("llva-run: {e}");
                exit(1);
            });
            let mut interp = llva::engine::FastInterpreter::with_predecoded(pre);
            match interp.run(&entry, &prog_args) {
                Ok(v) => {
                    print!("{}", interp.env.stdout_string());
                    if stats {
                        eprintln!(
                            "llva-run: result={} ({} LLVA instructions executed, \
                             {covered} functions warm-loaded from image)",
                            v,
                            interp.insts_executed()
                        );
                    }
                    exit((v & 0xff) as i32);
                }
                Err(e) => {
                    print!("{}", interp.env.stdout_string());
                    eprintln!("llva-run: {e}");
                    exit(101);
                }
            }
        }
        let mut interp = llva::engine::Interpreter::new(&module);
        match interp.run(&entry, &prog_args) {
            Ok(v) => {
                print!("{}", interp.env.stdout_string());
                if stats {
                    eprintln!(
                        "llva-run: result={} ({} LLVA instructions executed)",
                        v,
                        interp.insts_executed()
                    );
                }
                exit((v & 0xff) as i32);
            }
            Err(e) => {
                print!("{}", interp.env.stdout_string());
                eprintln!("llva-run: {e}");
                exit(101);
            }
        }
    }

    let target = parse_isa(&isa);
    let mut mgr = ExecutionManager::new(module, target);
    if let Some(image) = &image {
        mgr.set_image(image.clone());
    }
    if let Some(dir) = cache {
        let name = image_path
            .as_deref()
            .or(path.as_deref())
            .map(|p| {
                std::path::Path::new(p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "program".into())
            })
            .unwrap_or_else(|| "program".into());
        mgr.set_storage(
            Box::new(llva::engine::storage::DirStorage::new(dir)),
            &name,
        );
    }
    match mgr.run(&entry, &prog_args) {
        Ok(out) => {
            print!("{}", mgr.env.stdout_string());
            if stats {
                let t = mgr.stats();
                eprintln!(
                    "llva-run: result={} | translated {} fns in {:?}, cache hits {}, image hits {} | \
                     {} native insts executed, {} simulated cycles",
                    out.value,
                    t.functions_translated,
                    t.translate_time,
                    t.cache_hits,
                    t.image_hits,
                    out.stats.instructions,
                    out.stats.cycles
                );
            }
            exit((out.value & 0xff) as i32);
        }
        Err(e) => {
            print!("{}", mgr.env.stdout_string());
            eprintln!("llva-run: {e}");
            exit(101);
        }
    }
}

fn parse_isa(isa: &str) -> TargetIsa {
    match isa {
        "x86" => TargetIsa::X86,
        "sparc" => TargetIsa::Sparc,
        "riscv" => TargetIsa::Riscv,
        other => {
            eprintln!("llva-run: unknown --isa '{other}' (x86|sparc|riscv|interp)");
            exit(1);
        }
    }
}
