//! # llva-machine — simulated hardware processors (implementation ISAs)
//!
//! The paper evaluates LLVA by translating to two real hardware ISAs,
//! Intel IA-32 and SPARC V9. This reproduction has no silicon, so this
//! crate provides the substitution documented in DESIGN.md §4: two
//! cycle-counting functional simulators whose ISAs mirror the relevant
//! properties of the originals —
//!
//! * [`x86`]: CISC, two-address, 8 GPRs, memory operands, variable
//!   instruction sizes;
//! * [`sparc`]: RISC, three-address, 32 GPRs (`%g0` = 0), 13-bit
//!   immediates (`sethi`/`or` for larger constants), fixed 4-byte
//!   instructions, big-endian memory;
//! * [`riscv`]: RISC, three-address, 32 GPRs (`x0` = 0), 12-bit
//!   immediates (`lui`/`addi` for larger constants), compare-and-branch
//!   instead of condition codes, little-endian memory.
//!
//! Both expose the execution-manager interface the paper's LLEE needs:
//! a call to untranslated code exits with [`common::Exit::NeedFunction`]
//! so the JIT can translate on demand, intrinsic calls (§3.5) exit to
//! the engine, and all traps are precise ([`common::Trap`] names the
//! exact faulting instruction).

pub mod common;
pub mod memory;
pub mod riscv;
pub mod sparc;
pub mod x86;

pub use common::{ExecStats, Exit, Sym, Trap, TrapKind, Width};
pub use memory::{Memory, GLOBAL_BASE};
