//! The `GET /metrics`-style text surface.
//!
//! Prometheus exposition format (the `# HELP` / `# TYPE` / labelled
//! sample layout), rendered from the caller-visible atomics plus each
//! tenant's latest executor-published snapshot — a scrape never queues
//! behind an executor, so a wedged tenant cannot stall the metrics
//! endpoint (it just serves that tenant's last snapshot).

use std::fmt::Write as _;

use llva_engine::supervisor::Tier;

use crate::service::ExecService;

/// One labelled sample: `name{labels} value`.
fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{v}\"");
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

impl ExecService {
    /// Renders the whole service state in Prometheus text exposition
    /// format: per-tenant quota/rejection/outcome counters, fuel
    /// gauges, per-(tenant, module, tier) occupancy, quarantine and
    /// incident-log gauges (including ring-buffer drops), translation
    /// cache statistics, and the most recent incident lines as
    /// comments.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        let mut out = String::with_capacity(4096);
        let tenants = self.tenant_names();

        header(
            &mut out,
            "llva_serve_tenants",
            "gauge",
            "Registered tenants.",
        );
        sample(&mut out, "llva_serve_tenants", &[], tenants.len() as u64);
        header(
            &mut out,
            "llva_serve_cache_shards",
            "gauge",
            "Translation cache shards.",
        );
        sample(
            &mut out,
            "llva_serve_cache_shards",
            &[],
            self.config().shards as u64,
        );

        header(
            &mut out,
            "llva_serve_calls_total",
            "counter",
            "Calls by admission/outcome result.",
        );
        for tenant in &tenants {
            let Some(c) = self.tenant_counters(tenant) else { continue };
            let t = tenant.as_str();
            let rows: [(&str, u64); 12] = [
                ("admitted", c.admitted),
                ("rejected_busy", c.rejected_busy),
                ("rejected_fuel", c.rejected_fuel),
                ("rejected_module", c.rejected_module),
                ("rejected_breaker", c.rejected_breaker),
                ("rejected_draining", c.rejected_draining),
                ("deadline_expired", c.deadline_expired),
                ("executor_lost", c.executor_lost),
                ("ok", c.calls_ok),
                ("trapped", c.calls_trapped),
                ("out_of_fuel", c.calls_out_of_fuel),
                ("tiers_exhausted", c.calls_exhausted),
            ];
            for (result, value) in rows {
                sample(
                    &mut out,
                    "llva_serve_calls_total",
                    &[("tenant", t), ("result", result)],
                    value,
                );
            }
        }

        header(
            &mut out,
            "llva_serve_retries_total",
            "counter",
            "Serve-level bounded retries (transient-fault recovery).",
        );
        header(
            &mut out,
            "llva_serve_fuel_used_total",
            "counter",
            "Steps burned against each tenant's fuel budget.",
        );
        header(
            &mut out,
            "llva_serve_fuel_remaining",
            "gauge",
            "Fuel remaining in each tenant's budget.",
        );
        header(
            &mut out,
            "llva_serve_in_flight",
            "gauge",
            "Calls admitted but not yet answered.",
        );
        for tenant in &tenants {
            let Some(c) = self.tenant_counters(tenant) else { continue };
            let t = tenant.as_str();
            sample(&mut out, "llva_serve_retries_total", &[("tenant", t)], c.retries);
            sample(&mut out, "llva_serve_fuel_used_total", &[("tenant", t)], c.fuel_used);
            if let Some(fuel) = self.tenant_fuel_remaining(tenant) {
                sample(&mut out, "llva_serve_fuel_remaining", &[("tenant", t)], fuel);
            }
            if let Some(inflight) = self.tenant_in_flight(tenant) {
                sample(
                    &mut out,
                    "llva_serve_in_flight",
                    &[("tenant", t)],
                    u64::from(inflight),
                );
            }
        }

        header(
            &mut out,
            "llva_serve_executor_restarts_total",
            "counter",
            "Executor respawns by the supervision monitor (dead or wedged).",
        );
        header(
            &mut out,
            "llva_serve_journal_modules",
            "gauge",
            "Modules held in each tenant's crash-recovery journal.",
        );
        header(
            &mut out,
            "llva_serve_journal_bytes",
            "gauge",
            "Approximate size of each tenant's crash-recovery journal.",
        );
        for tenant in &tenants {
            let t = tenant.as_str();
            if let Some(restarts) = self.tenant_restarts(tenant) {
                sample(
                    &mut out,
                    "llva_serve_executor_restarts_total",
                    &[("tenant", t)],
                    restarts,
                );
            }
            if let Some((modules, bytes)) = self.tenant_journal(tenant) {
                sample(
                    &mut out,
                    "llva_serve_journal_modules",
                    &[("tenant", t)],
                    modules as u64,
                );
                sample(&mut out, "llva_serve_journal_bytes", &[("tenant", t)], bytes);
            }
        }

        header(
            &mut out,
            "llva_serve_breaker_state",
            "gauge",
            "Circuit breaker state per (tenant, module, function): 0 closed, 1 half-open, 2 open.",
        );
        header(
            &mut out,
            "llva_serve_breaker_opens_total",
            "counter",
            "Lifetime circuit-breaker opens per (tenant, module, function).",
        );
        for tenant in &tenants {
            let Some(breakers) = self.tenant_breakers(tenant) else { continue };
            let t = tenant.as_str();
            for b in &breakers {
                let labels = [
                    ("tenant", t),
                    ("module", b.module.as_str()),
                    ("function", b.function.as_str()),
                ];
                sample(
                    &mut out,
                    "llva_serve_breaker_state",
                    &labels,
                    b.state.as_metric(),
                );
                sample(
                    &mut out,
                    "llva_serve_breaker_opens_total",
                    &labels,
                    b.opened_total,
                );
            }
        }

        header(
            &mut out,
            "llva_serve_draining",
            "gauge",
            "1 once a graceful drain has started (admission closed).",
        );
        sample(
            &mut out,
            "llva_serve_draining",
            &[],
            u64::from(self.draining()),
        );
        header(
            &mut out,
            "llva_serve_drain_duration_ms",
            "gauge",
            "How long the drain waited for in-flight work (0 until a drain ran).",
        );
        sample(
            &mut out,
            "llva_serve_drain_duration_ms",
            &[],
            self.drain_duration_ms(),
        );

        header(
            &mut out,
            "llva_serve_tier_served_total",
            "counter",
            "Calls answered per (tenant, module, tier) — the tier occupancy surface.",
        );
        header(
            &mut out,
            "llva_serve_tier_faults_total",
            "counter",
            "Tier faults (panics + engine faults + watchdog + divergences).",
        );
        header(
            &mut out,
            "llva_serve_tier_probes_total",
            "counter",
            "Quarantine recovery probes attempted.",
        );
        header(
            &mut out,
            "llva_serve_quarantined",
            "gauge",
            "Quarantined (function, tier) pairs right now.",
        );
        header(
            &mut out,
            "llva_serve_incidents_total",
            "counter",
            "Lifetime incidents recorded (including ring-buffer-dropped ones).",
        );
        header(
            &mut out,
            "llva_serve_incidents_dropped_total",
            "counter",
            "Incidents dropped by the ring-buffer cap.",
        );
        let mut incident_comments = String::new();
        for tenant in &tenants {
            let Some(snapshot) = self.tenant_snapshot(tenant) else { continue };
            let t = tenant.as_str();
            for m in &snapshot.modules {
                let labels = [("tenant", t), ("module", m.name.as_str())];
                for tier in Tier::LADDER {
                    let counters = m.tier_counters[tier.index()];
                    let tier_name = tier.to_string();
                    let tier_labels = [
                        ("tenant", t),
                        ("module", m.name.as_str()),
                        ("tier", tier_name.as_str()),
                    ];
                    sample(
                        &mut out,
                        "llva_serve_tier_served_total",
                        &tier_labels,
                        counters.served,
                    );
                    sample(
                        &mut out,
                        "llva_serve_tier_faults_total",
                        &tier_labels,
                        counters.panics
                            + counters.faults
                            + counters.watchdog_expiries
                            + counters.divergences,
                    );
                    sample(
                        &mut out,
                        "llva_serve_tier_probes_total",
                        &tier_labels,
                        counters.probes,
                    );
                }
                sample(
                    &mut out,
                    "llva_serve_quarantined",
                    &labels,
                    m.quarantined.len() as u64,
                );
                sample(&mut out, "llva_serve_incidents_total", &labels, m.incidents_total);
                sample(
                    &mut out,
                    "llva_serve_incidents_dropped_total",
                    &labels,
                    m.incidents_dropped,
                );
                for line in &m.recent_incidents {
                    let _ = writeln!(incident_comments, "# incident{{tenant=\"{t}\",module=\"{}\"}} {line}", m.name);
                }
            }
        }

        header(
            &mut out,
            "llva_serve_translation_total",
            "counter",
            "Translation/cache events per (tenant, module), warmup + calls.",
        );
        for tenant in &tenants {
            let Some(snapshot) = self.tenant_snapshot(tenant) else { continue };
            let t = tenant.as_str();
            for m in &snapshot.modules {
                let s = m.translation;
                let rows: [(&str, u64); 8] = [
                    ("translated", s.functions_translated as u64),
                    ("cache_hits", s.cache_hits as u64),
                    ("cache_misses", s.cache_misses as u64),
                    ("cache_stale", s.cache_stale as u64),
                    ("cache_corrupt", s.cache_corrupt as u64),
                    ("storage_retried_ok", s.retried_ok as u64),
                    ("storage_gave_up", s.gave_up as u64),
                    ("invalidations", s.invalidations as u64),
                ];
                for (event, value) in rows {
                    sample(
                        &mut out,
                        "llva_serve_translation_total",
                        &[("tenant", t), ("module", m.name.as_str()), ("event", event)],
                        value,
                    );
                }
            }
        }

        if !incident_comments.is_empty() {
            out.push_str("# Recent incidents (newest last):\n");
            out.push_str(&incident_comments);
        }
        out
    }
}
