//! The multi-tenant execution service.
//!
//! # Architecture
//!
//! One [`ExecService`] owns a sharded translation cache
//! ([`ShardedStorage`]) and a set of tenants. Each tenant gets its own
//! **executor thread**: the thread creates and owns one
//! [`Supervisor`] per loaded module, so all non-[`Send`] execution
//! state (supervisors hold `Box<dyn Storage>`) lives on exactly one
//! thread, and only plain data — module source text, argument vectors,
//! result enums — ever crosses a thread boundary.
//!
//! The caller-facing half is pure admission control: quota checks and
//! an in-flight CAS happen on the *caller's* thread before anything is
//! queued, so an over-quota tenant is rejected in nanoseconds without
//! waking its executor. Admitted commands travel over a bounded
//! [`mpsc::sync_channel`] sized to the in-flight quota — the queue
//! physically cannot grow beyond what admission already allowed.
//!
//! Fault isolation falls out of the ownership structure: a poisoned
//! function quarantines `(function, tier)` pairs inside one tenant's
//! supervisor; other tenants never see that supervisor. The only
//! shared mutable state is the sharded cache, which tolerates
//! poisoned-lock recovery per shard (see `llva_engine::storage`).

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use llva_engine::llee::{self, ExecutionManager};
use llva_engine::storage::{MemStorage, ShardedStorage, Storage};
use llva_engine::supervisor::{
    Supervisor, SupervisorError, Tier, TierCounters, TierKill, TierOutcome,
};
use llva_engine::image::{ImageBuilder, LlvaImage, IMAGE_ENTRY};
use llva_engine::{PreModule, TargetIsa, TranslationStats};

use crate::quota::{CounterValues, QuotaKind, ServeError, TenantCounters, TenantQuota};

/// The boxed storage backend the service shards over. `Send` because
/// shards hop between tenant executor threads.
pub type BoxedStorage = Box<dyn Storage + Send>;

/// Service-wide configuration (per-tenant limits live in
/// [`TenantQuota`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Target ISA for the translated tier.
    pub isa: TargetIsa,
    /// Translation-cache shards (keyed by entry-name hash).
    pub shards: usize,
    /// How long a caller waits for a call answer before giving up
    /// ([`ServeError::DeadlineExpired`]; the call still completes and
    /// is accounted in the background).
    pub call_deadline: Duration,
    /// How long a caller waits for a module load (loads include the
    /// translation warmup, so the default is more generous).
    pub load_deadline: Duration,
    /// Serve-level bounded retry budget for a call whose tier ladder
    /// ran dry: each retry lifts the function's quarantines (transient
    /// storage faults heal; a genuinely poisoned function exhausts the
    /// budget and fails).
    pub max_retries: u32,
    /// Base backoff between those retries (attempt `n` sleeps
    /// `base * 2^(n-1)`).
    pub retry_backoff: Duration,
    /// Faults a `(function, tier)` pair tolerates before quarantine.
    pub max_faults: u32,
    /// Quarantine recovery probes: after this many successful
    /// lower-tier calls, a quarantined pair earns one supervised
    /// retry. `None` disables probing.
    pub probe_after: Option<u32>,
    /// Per-module incident-log ring-buffer capacity.
    pub incident_capacity: usize,
    /// Worker threads for the translation warmup at module load
    /// (0 = [`ExecutionManager::default_workers`]).
    pub translate_workers: usize,
    /// Step watchdog for fast tiers (see `Supervisor::set_watchdog`).
    pub watchdog: Option<u64>,
    /// Cross-check every answer against the structural interpreter
    /// (expensive; catches silent wrong values).
    pub cross_check: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            isa: TargetIsa::X86,
            shards: 4,
            call_deadline: Duration::from_secs(30),
            load_deadline: Duration::from_secs(120),
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            max_faults: 1,
            probe_after: None,
            incident_capacity: llva_engine::supervisor::DEFAULT_INCIDENT_CAPACITY,
            translate_workers: 0,
            watchdog: None,
            cross_check: false,
        }
    }
}

/// What a successful module load reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReply {
    /// The tenant-chosen module name.
    pub module: String,
    /// The content-addressed cache this module translates into
    /// (identical module text ⇒ identical cache, shared across
    /// tenants; different text ⇒ disjoint cache, zero collision).
    pub cache: String,
    /// Defined (body-carrying) functions in the module.
    pub functions: usize,
    /// Translation/cache statistics from the load-time warmup.
    pub warmup: TranslationStats,
}

/// What a successful call reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallResult {
    /// The semantic outcome (value, precise trap, or out-of-fuel).
    pub outcome: TierOutcome,
    /// The tier that answered.
    pub tier: Tier,
    /// True when a faster tier faulted or was skipped on the way.
    pub degraded: bool,
    /// Steps the answering tier executed.
    pub steps: u64,
    /// Serve-level retries this call consumed.
    pub retries: u32,
}

impl CallResult {
    /// The returned raw bits, if the call completed normally.
    #[must_use]
    pub fn value(&self) -> Option<u64> {
        match self.outcome {
            TierOutcome::Value(v) => Some(v),
            _ => None,
        }
    }
}

/// Executor-published health snapshot for one loaded module.
#[derive(Debug, Clone)]
pub struct ModuleSnapshot {
    /// Tenant-chosen module name.
    pub name: String,
    /// Content-addressed cache name.
    pub cache: String,
    /// Defined functions.
    pub functions: usize,
    /// Incidents currently held in the ring buffer.
    pub incidents_len: usize,
    /// Older incidents dropped by the ring-buffer cap.
    pub incidents_dropped: u64,
    /// Lifetime incident count (`len + dropped`).
    pub incidents_total: u64,
    /// Display lines for the most recent incidents (newest last).
    pub recent_incidents: Vec<String>,
    /// Quarantined `(function, tier)` pairs right now.
    pub quarantined: Vec<(String, Tier)>,
    /// Per-tier counters, indexed by [`Tier::index`].
    pub tier_counters: [TierCounters; 4],
    /// Aggregated translation/cache statistics (warmup + every call).
    pub translation: TranslationStats,
}

/// Executor-published health snapshot for one tenant.
#[derive(Debug, Clone, Default)]
pub struct TenantSnapshot {
    /// One entry per loaded module, in load order.
    pub modules: Vec<ModuleSnapshot>,
}

/// How many incident display lines a snapshot carries per module.
const SNAPSHOT_RECENT_INCIDENTS: usize = 8;

/// Caller-visible shared state for one tenant (atomics + the snapshot
/// mailbox; everything here is written without involving the executor
/// or read without blocking on it).
struct TenantShared {
    counters: TenantCounters,
    in_flight: AtomicU32,
    fuel_remaining: AtomicU64,
    snapshot: Mutex<TenantSnapshot>,
}

struct TenantHandle {
    quota: TenantQuota,
    shared: Arc<TenantShared>,
    sender: SyncSender<Command>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

/// Commands crossing into an executor thread — plain `Send` data only.
enum Command {
    Load {
        module: String,
        source: String,
        reply: mpsc::Sender<Result<LoadReply, ServeError>>,
    },
    Unload {
        module: String,
        reply: mpsc::Sender<Result<(), ServeError>>,
    },
    Call {
        module: String,
        entry: String,
        args: Vec<u64>,
        fuel: u64,
        reply: mpsc::Sender<Result<CallResult, ServeError>>,
    },
    /// Fault-injection hook (tests, soaks, CI): arm kills on one
    /// module's supervisor for the next `calls` calls (0 = until
    /// re-armed or the module is unloaded).
    ArmKills {
        module: String,
        kills: Vec<TierKill>,
        calls: u32,
        reply: mpsc::Sender<Result<(), ServeError>>,
    },
    Shutdown,
}

struct Inner {
    config: ServeConfig,
    storage: ShardedStorage<BoxedStorage>,
    tenants: RwLock<BTreeMap<String, Arc<TenantHandle>>>,
}

/// The fault-isolated multi-tenant execution service. Cheap to clone
/// (a handle); see the module docs for the architecture.
#[derive(Clone)]
pub struct ExecService {
    inner: Arc<Inner>,
}

fn lock_snapshot(shared: &TenantShared) -> std::sync::MutexGuard<'_, TenantSnapshot> {
    shared
        .snapshot
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ExecService {
    /// A service over in-memory cache shards.
    #[must_use]
    pub fn new(config: ServeConfig) -> ExecService {
        ExecService::with_storage(config, |_| Box::new(MemStorage::new()) as BoxedStorage)
    }

    /// A service whose cache shards come from `mk` (tests inject
    /// `FaultyStorage` here).
    #[must_use]
    pub fn with_storage(
        config: ServeConfig,
        mk: impl FnMut(usize) -> BoxedStorage,
    ) -> ExecService {
        let storage = ShardedStorage::new(config.shards, mk);
        ExecService {
            inner: Arc::new(Inner {
                config,
                storage,
                tenants: RwLock::new(BTreeMap::new()),
            }),
        }
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// A handle to the sharded translation cache (tests reach through
    /// this to disarm fault plans or inspect shards).
    #[must_use]
    pub fn storage(&self) -> &ShardedStorage<BoxedStorage> {
        &self.inner.storage
    }

    fn tenants(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<TenantHandle>>> {
        self.inner
            .tenants
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn handle(&self, tenant: &str) -> Result<Arc<TenantHandle>, ServeError> {
        self.tenants()
            .get(tenant)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))
    }

    /// Registers a tenant and spawns its executor thread.
    ///
    /// # Errors
    ///
    /// [`ServeError::TenantExists`] on a duplicate name.
    pub fn add_tenant(&self, name: &str, quota: TenantQuota) -> Result<(), ServeError> {
        let mut tenants = self
            .inner
            .tenants
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if tenants.contains_key(name) {
            return Err(ServeError::TenantExists(name.to_string()));
        }
        let shared = Arc::new(TenantShared {
            counters: TenantCounters::default(),
            in_flight: AtomicU32::new(0),
            fuel_remaining: AtomicU64::new(quota.fuel_budget),
            snapshot: Mutex::new(TenantSnapshot::default()),
        });
        // Queue depth = in-flight quota: admission's CAS already gates
        // every send, so the channel can never reject an admitted
        // command, and memory stays bounded by construction.
        let (sender, receiver) = mpsc::sync_channel(quota.max_in_flight.max(1) as usize);
        let thread = {
            let shared = Arc::clone(&shared);
            let config = self.inner.config.clone();
            let storage = self.inner.storage.clone();
            std::thread::Builder::new()
                .name(format!("llva-serve:{name}"))
                .spawn(move || executor_loop(&receiver, &shared, &config, &storage, quota))
                .expect("spawn tenant executor")
        };
        tenants.insert(
            name.to_string(),
            Arc::new(TenantHandle {
                quota,
                shared,
                sender,
                thread: Mutex::new(Some(thread)),
            }),
        );
        Ok(())
    }

    /// Unregisters a tenant: shuts its executor down (draining queued
    /// commands first) and joins the thread.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn remove_tenant(&self, name: &str) -> Result<(), ServeError> {
        let handle = {
            let mut tenants = self
                .inner
                .tenants
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            tenants
                .remove(name)
                .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))?
        };
        stop_tenant(&handle);
        Ok(())
    }

    /// Registered tenant names, sorted.
    #[must_use]
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants().keys().cloned().collect()
    }

    /// The tenant's quota, if it exists.
    #[must_use]
    pub fn tenant_quota(&self, tenant: &str) -> Option<TenantQuota> {
        self.tenants().get(tenant).map(|h| h.quota)
    }

    /// Calls currently admitted but unanswered for a tenant.
    #[must_use]
    pub fn tenant_in_flight(&self, tenant: &str) -> Option<u32> {
        self.tenants()
            .get(tenant)
            .map(|h| h.shared.in_flight.load(Ordering::Acquire))
    }

    /// A tenant's admission/outcome counters.
    #[must_use]
    pub fn tenant_counters(&self, tenant: &str) -> Option<CounterValues> {
        self.tenants()
            .get(tenant)
            .map(|h| h.shared.counters.values())
    }

    /// Fuel remaining in a tenant's budget.
    #[must_use]
    pub fn tenant_fuel_remaining(&self, tenant: &str) -> Option<u64> {
        self.tenants()
            .get(tenant)
            .map(|h| h.shared.fuel_remaining.load(Ordering::Acquire))
    }

    /// The tenant's latest executor-published health snapshot.
    #[must_use]
    pub fn tenant_snapshot(&self, tenant: &str) -> Option<TenantSnapshot> {
        self.tenants()
            .get(tenant)
            .map(|h| lock_snapshot(&h.shared).clone())
    }

    /// Adds `fuel` back to a tenant's budget (operator hook; saturates
    /// at `u64::MAX`).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn refill_fuel(&self, tenant: &str, fuel: u64) -> Result<(), ServeError> {
        let handle = self.handle(tenant)?;
        let _ = handle
            .shared
            .fuel_remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                Some(cur.saturating_add(fuel))
            });
        Ok(())
    }

    /// Takes one in-flight slot or rejects with [`ServeError::Busy`].
    fn admit_slot(handle: &TenantHandle) -> Result<(), ServeError> {
        let shared = &handle.shared;
        let mut cur = shared.in_flight.load(Ordering::Acquire);
        loop {
            if cur >= handle.quota.max_in_flight {
                shared.counters.rejected_busy.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Busy { in_flight: cur });
            }
            match shared.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(now) => cur = now,
            }
        }
    }

    fn release_slot(handle: &TenantHandle) {
        handle.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Sends an admitted command (the slot is already held). `Full`
    /// can only happen in the narrow race where a slot was released
    /// before its command left the queue; treat it as busy rather than
    /// blocking the caller.
    fn send_admitted(handle: &TenantHandle, command: Command) -> Result<(), ServeError> {
        match handle.sender.try_send(command) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                Self::release_slot(handle);
                handle
                    .shared
                    .counters
                    .rejected_busy
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Busy {
                    in_flight: handle.shared.in_flight.load(Ordering::Acquire),
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                Self::release_slot(handle);
                Err(ServeError::Shutdown)
            }
        }
    }

    fn await_reply<T>(
        handle: &TenantHandle,
        reply: &mpsc::Receiver<Result<T, ServeError>>,
        deadline: Duration,
    ) -> Result<T, ServeError> {
        match reply.recv_timeout(deadline) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => {
                // The executor still finishes the command (and releases
                // the slot); only this caller stops waiting.
                handle
                    .shared
                    .counters
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServeError::DeadlineExpired)
            }
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::Shutdown),
        }
    }

    /// Loads a module for a tenant: parse, create/attach the
    /// content-addressed cache, run the parallel translation warmup,
    /// and stand up the module's supervisor.
    ///
    /// # Errors
    ///
    /// Admission rejections ([`ServeError::Busy`],
    /// [`ServeError::QuotaExceeded`]), [`ServeError::BadModule`], and
    /// the deadline/shutdown errors.
    pub fn load_module(
        &self,
        tenant: &str,
        module: &str,
        source: &str,
    ) -> Result<LoadReply, ServeError> {
        let handle = self.handle(tenant)?;
        if source.len() > handle.quota.max_module_bytes {
            handle
                .shared
                .counters
                .rejected_module
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QuotaExceeded {
                kind: QuotaKind::Module,
                detail: format!(
                    "module source is {} bytes, quota allows {}",
                    source.len(),
                    handle.quota.max_module_bytes
                ),
            });
        }
        // The module *count* check happens executor-side only: the
        // executor's module map is authoritative and knows whether this
        // load is a fresh module or a same-name update.
        Self::admit_slot(&handle)?;
        handle.shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        Self::send_admitted(
            &handle,
            Command::Load {
                module: module.to_string(),
                source: source.to_string(),
                reply: tx,
            },
        )?;
        Self::await_reply(&handle, &rx, self.inner.config.load_deadline)
    }

    /// Unloads a module (its supervisor, incidents, and quarantines go
    /// with it; the shared cache keeps its entries for future loads).
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSuchModule`] and the admission/deadline errors.
    pub fn unload_module(&self, tenant: &str, module: &str) -> Result<(), ServeError> {
        let handle = self.handle(tenant)?;
        Self::admit_slot(&handle)?;
        let (tx, rx) = mpsc::channel();
        Self::send_admitted(
            &handle,
            Command::Unload {
                module: module.to_string(),
                reply: tx,
            },
        )?;
        Self::await_reply(&handle, &rx, self.inner.config.call_deadline)
    }

    /// Calls `module`'s `entry` with the quota's default per-call fuel.
    ///
    /// # Errors
    ///
    /// See [`ExecService::call_with_fuel`].
    pub fn call(
        &self,
        tenant: &str,
        module: &str,
        entry: &str,
        args: &[u64],
    ) -> Result<CallResult, ServeError> {
        self.call_with_fuel(tenant, module, entry, args, 0)
    }

    /// Calls `module`'s `entry` with an explicit fuel request (`0` =
    /// the quota's per-call ceiling; always clamped to both the
    /// ceiling and the remaining budget).
    ///
    /// # Errors
    ///
    /// Admission rejections ([`ServeError::Busy`],
    /// [`ServeError::QuotaExceeded`] with [`QuotaKind::Fuel`]),
    /// [`ServeError::NoSuchModule`] / [`ServeError::NoSuchFunction`],
    /// [`ServeError::TiersExhausted`] after the bounded retry budget,
    /// and the deadline/shutdown errors.
    pub fn call_with_fuel(
        &self,
        tenant: &str,
        module: &str,
        entry: &str,
        args: &[u64],
        fuel: u64,
    ) -> Result<CallResult, ServeError> {
        let handle = self.handle(tenant)?;
        if handle.shared.fuel_remaining.load(Ordering::Acquire) == 0 {
            handle
                .shared
                .counters
                .rejected_fuel
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QuotaExceeded {
                kind: QuotaKind::Fuel,
                detail: format!("fuel budget of {} exhausted", handle.quota.fuel_budget),
            });
        }
        Self::admit_slot(&handle)?;
        handle.shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        Self::send_admitted(
            &handle,
            Command::Call {
                module: module.to_string(),
                entry: entry.to_string(),
                args: args.to_vec(),
                fuel,
                reply: tx,
            },
        )?;
        Self::await_reply(&handle, &rx, self.inner.config.call_deadline)
    }

    /// Arms fault-injection kills on one tenant's module for the next
    /// `calls` calls (`0` = until re-armed; an empty `kills` disarms).
    /// Test/ops hook — this is how soaks sabotage a victim tenant
    /// without touching its neighbours.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSuchModule`] and the admission/deadline errors.
    pub fn arm_kills(
        &self,
        tenant: &str,
        module: &str,
        kills: Vec<TierKill>,
        calls: u32,
    ) -> Result<(), ServeError> {
        let handle = self.handle(tenant)?;
        Self::admit_slot(&handle)?;
        let (tx, rx) = mpsc::channel();
        Self::send_admitted(
            &handle,
            Command::ArmKills {
                module: module.to_string(),
                kills,
                calls,
                reply: tx,
            },
        )?;
        Self::await_reply(&handle, &rx, self.inner.config.call_deadline)
    }

    /// Shuts every tenant executor down and joins the threads. Called
    /// automatically when the last service handle drops.
    pub fn shutdown(&self) {
        let handles: Vec<Arc<TenantHandle>> = {
            let mut tenants = self
                .inner
                .tenants
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *tenants).into_values().collect()
        };
        for handle in handles {
            stop_tenant(&handle);
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        let tenants = std::mem::take(
            &mut *self
                .tenants
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for handle in tenants.into_values() {
            stop_tenant(&handle);
        }
    }
}

fn stop_tenant(handle: &TenantHandle) {
    // `send` (not `try_send`): queued commands drain first, then the
    // executor sees Shutdown. The queue is bounded, so this blocks at
    // most `max_in_flight` commands long.
    let _ = handle.sender.send(Command::Shutdown);
    let thread = handle
        .thread
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take();
    if let Some(thread) = thread {
        let _ = thread.join();
    }
}

// ---------------------------------------------------------------------------
// Executor side (one thread per tenant; owns all non-Send state)
// ---------------------------------------------------------------------------

struct ModuleRuntime {
    supervisor: Supervisor,
    cache: String,
    functions: usize,
    warmup: TranslationStats,
    /// Armed-kill countdown: `Some(n)` clears the kills after `n` more
    /// calls; `None` leaves them armed.
    kill_calls_left: Option<u32>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn executor_loop(
    receiver: &Receiver<Command>,
    shared: &Arc<TenantShared>,
    config: &ServeConfig,
    storage: &ShardedStorage<BoxedStorage>,
    quota: TenantQuota,
) {
    let mut modules: BTreeMap<String, ModuleRuntime> = BTreeMap::new();
    while let Ok(command) = receiver.recv() {
        match command {
            Command::Shutdown => break,
            Command::Load { module, source, reply } => {
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    handle_load(&mut modules, shared, config, storage, quota, &module, &source)
                }))
                .unwrap_or_else(|p| Err(ServeError::Internal(panic_message(p))));
                // Publish + release before replying: a caller that acts
                // on the reply (metrics scrape, next call) must see this
                // command's snapshot and its freed slot.
                publish_snapshot(shared, &modules);
                ExecService::release_slot_shared(shared);
                let _ = reply.send(result);
            }
            Command::Unload { module, reply } => {
                let result = if modules.remove(&module).is_some() {
                    Ok(())
                } else {
                    Err(ServeError::NoSuchModule(module))
                };
                publish_snapshot(shared, &modules);
                ExecService::release_slot_shared(shared);
                let _ = reply.send(result);
            }
            Command::Call { module, entry, args, fuel, reply } => {
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    handle_call(&mut modules, shared, config, quota, &module, &entry, &args, fuel)
                }))
                .unwrap_or_else(|p| Err(ServeError::Internal(panic_message(p))));
                match &result {
                    Ok(run) => {
                        let counter = match run.outcome {
                            TierOutcome::Value(_) => &shared.counters.calls_ok,
                            TierOutcome::Trap(_) => &shared.counters.calls_trapped,
                            TierOutcome::OutOfFuel => &shared.counters.calls_out_of_fuel,
                        };
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ServeError::TiersExhausted { .. }) => {
                        shared.counters.calls_exhausted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {}
                }
                publish_snapshot(shared, &modules);
                ExecService::release_slot_shared(shared);
                let _ = reply.send(result);
            }
            Command::ArmKills { module, kills, calls, reply } => {
                let result = match modules.get_mut(&module) {
                    None => Err(ServeError::NoSuchModule(module)),
                    Some(rt) => {
                        rt.supervisor.clear_kills();
                        for kill in kills {
                            rt.supervisor.arm_kill(kill);
                        }
                        rt.kill_calls_left = (calls > 0).then_some(calls);
                        Ok(())
                    }
                };
                ExecService::release_slot_shared(shared);
                let _ = reply.send(result);
            }
        }
    }
}

impl ExecService {
    /// Slot release reachable from the executor (which has the shared
    /// state, not the handle).
    fn release_slot_shared(shared: &TenantShared) {
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_load(
    modules: &mut BTreeMap<String, ModuleRuntime>,
    shared: &TenantShared,
    config: &ServeConfig,
    storage: &ShardedStorage<BoxedStorage>,
    quota: TenantQuota,
    module_name: &str,
    source: &str,
) -> Result<LoadReply, ServeError> {
    if modules.len() >= quota.max_modules && !modules.contains_key(module_name) {
        shared.counters.rejected_module.fetch_add(1, Ordering::Relaxed);
        return Err(ServeError::QuotaExceeded {
            kind: QuotaKind::Module,
            detail: format!("{} module(s) already loaded", quota.max_modules),
        });
    }
    let parsed = llva_core::parser::parse_module(source)
        .map_err(|e| ServeError::BadModule(e.to_string()))?;
    let functions = parsed
        .functions()
        .filter(|(_, f)| !f.is_declaration())
        .count();
    // Content-addressed cache: identical module text shares translations
    // across tenants; different text gets a disjoint cache, so tenants
    // can never thrash each other's entries.
    let module_stamp = llee::stamp(&parsed);
    let cache = format!("m{module_stamp:016x}");
    {
        let mut handle = storage.clone();
        handle.create_cache(&cache);
    }
    // Warm-load probe: an earlier process (or another tenant of this
    // shared cache) may have published a persistent module image under
    // IMAGE_ENTRY. Validate the storage timestamp AND the image's own
    // stamp against this module before trusting it; a corrupt or stale
    // image degrades to the cold path, never to an error.
    let mut image: Option<Arc<LlvaImage>> = storage
        .read(&cache, IMAGE_ENTRY)
        .filter(|&(_, ts)| ts == module_stamp)
        .and_then(|(bytes, _)| LlvaImage::parse(bytes).ok())
        .filter(|img| img.stamp() == module_stamp)
        .map(Arc::new);
    // Translation warmup through the worker pool: the module's supervisor
    // then starts with a hot cache (its per-call managers hit, not miss).
    // With an image, installed native code makes the warmup a no-op.
    let workers = if config.translate_workers == 0 {
        ExecutionManager::default_workers()
    } else {
        config.translate_workers
    };
    let mut warm =
        ExecutionManager::with_memory_size(parsed.clone(), config.isa, quota.memory_bytes);
    warm.set_storage(Box::new(storage.clone()), &cache);
    if let Some(img) = &image {
        warm.set_image(img.clone());
    }
    warm.translate_all_parallel(workers)
        .map_err(|e| ServeError::BadModule(format!("translation failed: {e}")))?;
    let warmup = warm.stats();
    // Cold start: publish an image so every later load of this module —
    // any tenant, any process — skips translation AND SSA re-lowering.
    // Built over the *parsed* module (its stamp is the cache address);
    // the native section carries the warm manager's target-configured
    // per-function stamps.
    if image.is_none() {
        let pre = PreModule::new(&parsed);
        pre.decode_all();
        let mut builder = ImageBuilder::new(&parsed);
        builder.add_predecode(&pre);
        builder.add_native(config.isa, &warm.native_image_entries());
        let bytes = builder.finish();
        let mut handle = storage.clone();
        handle.write(&cache, IMAGE_ENTRY, &bytes, module_stamp);
        image = LlvaImage::parse(bytes).ok().map(Arc::new);
    }
    drop(warm);

    let mut supervisor =
        Supervisor::with_memory_size(parsed, config.isa, quota.memory_bytes);
    supervisor.set_storage(Box::new(storage.clone()), &cache);
    if let Some(img) = image {
        supervisor.set_image(img);
    }
    supervisor.set_max_faults(config.max_faults);
    supervisor.set_incident_capacity(config.incident_capacity);
    supervisor.set_cross_check(config.cross_check);
    if let Some(calls) = config.probe_after {
        supervisor.set_probe_after(calls);
    }
    if let Some(budget) = config.watchdog {
        supervisor.set_watchdog(budget);
    }
    modules.insert(
        module_name.to_string(),
        ModuleRuntime {
            supervisor,
            cache: cache.clone(),
            functions,
            warmup,
            kill_calls_left: None,
        },
    );
    Ok(LoadReply {
        module: module_name.to_string(),
        cache,
        functions,
        warmup,
    })
}

#[allow(clippy::too_many_arguments)]
fn handle_call(
    modules: &mut BTreeMap<String, ModuleRuntime>,
    shared: &TenantShared,
    config: &ServeConfig,
    quota: TenantQuota,
    module: &str,
    entry: &str,
    args: &[u64],
    fuel: u64,
) -> Result<CallResult, ServeError> {
    let rt = modules
        .get_mut(module)
        .ok_or_else(|| ServeError::NoSuchModule(module.to_string()))?;
    // Clamp to the per-call ceiling AND the remaining budget: a tenant
    // on its last fuel can never overshoot the budget by more than the
    // final clamped call actually burns.
    let remaining = shared.fuel_remaining.load(Ordering::Acquire);
    let requested = if fuel == 0 { quota.max_call_fuel } else { fuel };
    let call_fuel = requested.min(quota.max_call_fuel).min(remaining.max(1));
    rt.supervisor.set_fuel(call_fuel);

    let mut retries_used = 0u32;
    let mut incidents_total = 0u32;
    let result = loop {
        let attempt = rt.supervisor.run(entry, args);
        // The armed-kill countdown ticks per supervisor attempt, not per
        // command: kills armed for N calls model a transient fault that
        // clears while the serve-level retry loop is still working the
        // same call, so a retry after the countdown runs against healthy
        // tiers — the deterministic stand-in for a fault that healed.
        if let Some(left) = rt.kill_calls_left {
            if left <= 1 {
                rt.supervisor.clear_kills();
                rt.kill_calls_left = None;
            } else {
                rt.kill_calls_left = Some(left - 1);
            }
        }
        match attempt {
            Ok(run) => {
                break Ok(CallResult {
                    outcome: run.outcome,
                    tier: run.tier,
                    degraded: run.degraded,
                    steps: run.steps,
                    retries: retries_used,
                });
            }
            Err(SupervisorError::NoSuchFunction(n)) => {
                break Err(ServeError::NoSuchFunction(n));
            }
            Err(SupervisorError::TiersExhausted { function, incidents }) => {
                incidents_total += incidents;
                if retries_used >= config.max_retries {
                    break Err(ServeError::TiersExhausted {
                        incidents: incidents_total,
                        retries: retries_used,
                    });
                }
                retries_used += 1;
                shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                // Exponential backoff, then a clean ladder: a transient
                // storage fault heals across the retry; a genuinely
                // poisoned function just re-quarantines and exhausts
                // the bounded budget.
                std::thread::sleep(config.retry_backoff * (1u32 << (retries_used - 1).min(16)));
                rt.supervisor.lift_all_quarantines(&function);
            }
        }
    };
    if let Ok(run) = &result {
        shared.counters.fuel_used.fetch_add(run.steps, Ordering::Relaxed);
        let _ = shared
            .fuel_remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                Some(cur.saturating_sub(run.steps))
            });
    }
    result
}

fn publish_snapshot(shared: &TenantShared, modules: &BTreeMap<String, ModuleRuntime>) {
    let snapshot = TenantSnapshot {
        modules: modules
            .iter()
            .map(|(name, rt)| {
                let log = rt.supervisor.incident_log();
                let recent = log
                    .incidents()
                    .iter()
                    .rev()
                    .take(SNAPSHOT_RECENT_INCIDENTS)
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                let mut translation = rt.warmup;
                translation.merge(&rt.supervisor.translation_stats());
                ModuleSnapshot {
                    name: name.clone(),
                    cache: rt.cache.clone(),
                    functions: rt.functions,
                    incidents_len: log.len(),
                    incidents_dropped: log.dropped(),
                    incidents_total: log.total_recorded(),
                    recent_incidents: recent,
                    quarantined: rt.supervisor.quarantined(),
                    tier_counters: *rt.supervisor.tier_counters(),
                    translation,
                }
            })
            .collect(),
    };
    *lock_snapshot(shared) = snapshot;
}
