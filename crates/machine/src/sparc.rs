//! The SPARC-V9-like implementation ISA and its simulated processor.
//!
//! The second I-ISA of the reproduction: a big-endian, 3-address RISC
//! with 32 integer registers (`%g0` hard-wired to zero), 13-bit
//! immediates (larger constants need `sethi`/`or` sequences — the main
//! reason the paper's SPARC instruction-count ratios exceed the x86
//! ones), and fixed 4-byte instruction encoding. Deviations from real
//! SPARC V9, documented in DESIGN.md: no register windows (the backend
//! uses an explicit callee-save discipline instead), no branch delay
//! slots, and return addresses live in a simulator-internal frame stack.

use crate::common::{Exit, Sym, Trap, TrapKind, Width};
use crate::memory::Memory;
use llva_core::intrinsics::Intrinsic;
use std::sync::Arc;

/// An integer register number (0–31; register 0 always reads zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// The hard-wired zero register `%g0`.
pub const G0: Reg = Reg(0);
/// The stack pointer `%sp` (`%o6`).
pub const SP: Reg = Reg(14);
/// First argument / return-value register `%o0`.
pub const O0: Reg = Reg(8);
/// Scratch register `%g1`.
pub const G1: Reg = Reg(1);
/// Scratch register `%g2`.
pub const G2: Reg = Reg(2);
/// Scratch register `%g3`.
pub const G3: Reg = Reg(3);
/// Scratch register `%g4` (used for address materialization).
pub const G4: Reg = Reg(4);

/// A float register number (0–15, each 64 bits wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FReg(pub u8);

/// Second ALU operand: register or 13-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegOrImm {
    /// Register operand.
    Reg(Reg),
    /// Sign-extended 13-bit immediate.
    Imm(i16),
}

/// Whether `v` fits a signed 13-bit immediate field.
pub fn fits_imm13(v: i64) -> bool {
    (-4096..=4095).contains(&v)
}

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division.
    Sdiv,
    /// Unsigned division.
    Udiv,
    /// Signed remainder.
    Srem,
    /// Unsigned remainder.
    Urem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
}

/// Branch conditions over the condition codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Equal.
    E,
    /// Not equal.
    Ne,
    /// Signed less.
    L,
    /// Signed greater.
    G,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below.
    Lu,
    /// Unsigned above.
    Gu,
    /// Unsigned below-or-equal.
    Leu,
    /// Unsigned above-or-equal.
    Geu,
}

/// Floating-point ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// One SPARC-like instruction (4 bytes each; `MovSym` is the
/// `sethi`+`or` relocation pair and counts as two).
#[derive(Debug, Clone, PartialEq)]
pub enum SparcInst {
    /// `sethi imm22, rd` — rd := imm22 << 10.
    Sethi {
        /// The 22-bit immediate.
        imm22: u32,
        /// Destination.
        rd: Reg,
    },
    /// Three-address ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// First source.
        rs1: Reg,
        /// Second source (register or imm13).
        rhs: RegOrImm,
        /// Destination.
        rd: Reg,
        /// Division by zero traps when set (clear for translations of
        /// `[noexc]` LLVA `div`, §3.3).
        trapping: bool,
    },
    /// `subcc rs1, rhs, %g0` — compare, setting condition codes.
    Cmp {
        /// First source.
        rs1: Reg,
        /// Second source.
        rhs: RegOrImm,
    },
    /// Integer load.
    Ld {
        /// Destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Offset.
        off: RegOrImm,
        /// Width.
        width: Width,
        /// Sign-extend.
        signed: bool,
    },
    /// Integer store.
    St {
        /// Source.
        rs: Reg,
        /// Base.
        rs1: Reg,
        /// Offset.
        off: RegOrImm,
        /// Width.
        width: Width,
    },
    /// Float load.
    LdF {
        /// Destination.
        fd: FReg,
        /// Base.
        rs1: Reg,
        /// Offset.
        off: RegOrImm,
        /// 32-bit vs 64-bit.
        is32: bool,
    },
    /// Float store.
    StF {
        /// Source.
        fs: FReg,
        /// Base.
        rs1: Reg,
        /// Offset.
        off: RegOrImm,
        /// 32-bit vs 64-bit.
        is32: bool,
    },
    /// Conditional branch.
    Br {
        /// Condition.
        cond: Cond,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional branch.
    Ba {
        /// Target instruction index.
        target: u32,
    },
    /// Direct call.
    Call {
        /// Callee function index.
        func: u32,
        /// Optional unwind landing pad.
        unwind: Option<u32>,
    },
    /// Indirect call through a register.
    CallIndirect {
        /// Register with the tagged function value.
        rs: Reg,
        /// Optional unwind landing pad.
        unwind: Option<u32>,
    },
    /// Intrinsic call (§3.5); arguments in `%o0`–`%o5`.
    CallIntrinsic {
        /// Which intrinsic.
        which: Intrinsic,
        /// Number of register arguments.
        nargs: u8,
    },
    /// Return to the caller.
    Ret,
    /// LLVA `unwind`.
    Unwind,
    /// Relocated symbol address (assembles to `sethi`+`or`, counted as
    /// 2 instructions / 8 bytes).
    MovSym {
        /// Destination.
        rd: Reg,
        /// The symbol.
        sym: Sym,
    },
    /// Float register move.
    FMov(FReg, FReg),
    /// Float ALU: `fd := fs1 ⊕ fs2`.
    FAlu {
        /// Operation.
        op: FpOp,
        /// First source.
        fs1: FReg,
        /// Second source.
        fs2: FReg,
        /// Destination.
        fd: FReg,
        /// 32-bit vs 64-bit.
        is32: bool,
    },
    /// Float compare, setting the condition codes.
    FCmp {
        /// First source.
        fs1: FReg,
        /// Second source.
        fs2: FReg,
        /// 32-bit vs 64-bit.
        is32: bool,
    },
    /// Integer → float conversion.
    CvtIF {
        /// Destination float register.
        fd: FReg,
        /// Source integer register.
        rs: Reg,
        /// Produce f32.
        to32: bool,
        /// Source is signed.
        signed: bool,
    },
    /// Float → integer conversion (truncating).
    CvtFI {
        /// Destination integer register.
        rd: Reg,
        /// Source float register.
        fs: FReg,
        /// Source is f32.
        from32: bool,
        /// Produce signed.
        signed: bool,
    },
    /// f32 ↔ f64 conversion.
    CvtFF {
        /// Destination.
        fd: FReg,
        /// Source.
        fs: FReg,
        /// Destination is f32.
        to32: bool,
    },
    /// Move float bits into an integer register.
    MovGF(Reg, FReg),
    /// Move integer bits into a float register.
    MovFG(FReg, Reg),
}

impl SparcInst {
    /// How many real SPARC instructions this represents (MovSym = 2).
    pub fn weight(&self) -> u32 {
        match self {
            SparcInst::MovSym { .. } => 2,
            _ => 1,
        }
    }

    /// Encoded size in bytes (4 per real instruction).
    pub fn native_size(&self) -> u32 {
        self.weight() * 4
    }
}

/// A translated SPARC program.
#[derive(Debug, Clone, Default)]
pub struct SparcProgram {
    functions: Vec<Option<Arc<Vec<SparcInst>>>>,
    global_addrs: Vec<u64>,
}

impl SparcProgram {
    /// Creates an empty program.
    pub fn new(num_functions: usize, global_addrs: Vec<u64>) -> SparcProgram {
        SparcProgram {
            functions: vec![None; num_functions],
            global_addrs,
        }
    }

    /// Grows the translation table to at least `n` slots (self-
    /// extending code adds functions after program creation, §3.4).
    pub fn ensure_slots(&mut self, n: usize) {
        if self.functions.len() < n {
            self.functions.resize(n, None);
        }
    }

    /// Installs translated code for a function.
    pub fn install(&mut self, idx: u32, code: Vec<SparcInst>) {
        self.functions[idx as usize] = Some(Arc::new(code));
    }

    /// Removes installed code (SMC invalidation).
    pub fn invalidate(&mut self, idx: u32) {
        self.functions[idx as usize] = None;
    }

    /// Whether function `idx` has installed code.
    pub fn is_installed(&self, idx: u32) -> bool {
        self.functions
            .get(idx as usize)
            .map(Option::is_some)
            .unwrap_or(false)
    }

    /// Installed code for `idx`.
    pub fn code(&self, idx: u32) -> Option<&Arc<Vec<SparcInst>>> {
        self.functions.get(idx as usize).and_then(Option::as_ref)
    }

    /// Relocated address of global `idx`.
    pub fn global_addr(&self, idx: u32) -> u64 {
        self.global_addrs[idx as usize]
    }

    /// Total native instruction count (weighted; the "#SPARC Inst."
    /// column of Table 2).
    pub fn total_insts(&self) -> usize {
        self.functions
            .iter()
            .flatten()
            .flat_map(|c| c.iter())
            .map(|i| i.weight() as usize)
            .sum()
    }

    /// Total native code bytes.
    pub fn total_bytes(&self) -> usize {
        self.total_insts() * 4
    }
}

/// Tagged function value helper (same scheme as the x86 machine).
pub use crate::x86::{function_value, FUNC_TAG};

#[derive(Debug, Clone, Copy)]
struct Frame {
    func: u32,
    ret_pc: u32,
    saved_sp: u64,
    unwind: Option<u32>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Flags {
    lhs: u64,
    rhs: u64,
    float: bool,
    unordered: bool,
    flhs: f64,
    frhs: f64,
}

/// The simulated SPARC-like processor.
#[derive(Debug)]
pub struct SparcMachine {
    /// The processor's memory.
    pub mem: Memory,
    regs: [u64; 32],
    fregs: [u64; 16],
    flags: Flags,
    frames: Vec<Frame>,
    cur_func: u32,
    pc: u32,
    stats: crate::common::ExecStats,
    pending_intrinsic: bool,
}

impl SparcMachine {
    /// Creates a machine over `mem`.
    pub fn new(mem: Memory) -> SparcMachine {
        let sp = mem.initial_sp();
        let mut m = SparcMachine {
            mem,
            regs: [0; 32],
            fregs: [0; 16],
            flags: Flags::default(),
            frames: Vec::new(),
            cur_func: 0,
            pc: 0,
            stats: crate::common::ExecStats::default(),
            pending_intrinsic: false,
        };
        m.regs[SP.0 as usize] = sp;
        m
    }

    /// Execution statistics.
    pub fn stats(&self) -> crate::common::ExecStats {
        self.stats
    }

    /// Reads a register (`%g0` reads zero).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.0 == 0 {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    /// Writes a register (writes to `%g0` are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }

    /// Reads a float register's raw bits.
    pub fn freg(&self, r: FReg) -> u64 {
        self.fregs[r.0 as usize]
    }

    /// Positions the machine at the entry of `func` with register
    /// arguments in `%o0`–`%o5` (extras on the stack).
    pub fn call_entry(&mut self, func: u32, args: &[u64]) -> Result<(), Trap> {
        for (i, &a) in args.iter().take(6).enumerate() {
            self.set_reg(Reg(8 + i as u8), a);
        }
        if args.len() > 6 {
            let extra = &args[6..];
            let mut sp = self.reg(SP);
            sp -= (extra.len() as u64) * 8;
            for (i, &a) in extra.iter().enumerate() {
                self.mem
                    .store(sp + 8 * i as u64, a, Width::B8)
                    .map_err(|k| Trap {
                        kind: k,
                        function: func,
                        pc: 0,
                    })?;
            }
            self.set_reg(SP, sp);
        }
        self.cur_func = func;
        self.pc = 0;
        self.frames.clear();
        Ok(())
    }

    /// The (function, pc) the machine is currently positioned at.
    pub fn current_location(&self) -> (u32, u32) {
        (self.cur_func, self.pc)
    }

    /// Current call depth.
    pub fn call_depth(&self) -> usize {
        self.frames.len() + 1
    }

    /// Function executing at `depth` (0 = innermost).
    pub fn frame_function(&self, depth: usize) -> Option<u32> {
        if depth == 0 {
            return Some(self.cur_func);
        }
        self.frames.iter().rev().nth(depth - 1).map(|f| f.func)
    }

    fn trap_here(&self, kind: TrapKind) -> Trap {
        Trap {
            kind,
            function: self.cur_func,
            pc: self.pc,
        }
    }

    fn operand(&self, roi: RegOrImm) -> u64 {
        match roi {
            RegOrImm::Reg(r) => self.reg(r),
            RegOrImm::Imm(v) => v as i64 as u64,
        }
    }

    fn cond(&self, c: Cond) -> bool {
        if self.flags.float {
            let (a, b) = (self.flags.flhs, self.flags.frhs);
            if self.flags.unordered {
                return matches!(c, Cond::Ne);
            }
            return match c {
                Cond::E => a == b,
                Cond::Ne => a != b,
                Cond::L | Cond::Lu => a < b,
                Cond::G | Cond::Gu => a > b,
                Cond::Le | Cond::Leu => a <= b,
                Cond::Ge | Cond::Geu => a >= b,
            };
        }
        let (a, b) = (self.flags.lhs, self.flags.rhs);
        let (sa, sb) = (a as i64, b as i64);
        match c {
            Cond::E => a == b,
            Cond::Ne => a != b,
            Cond::L => sa < sb,
            Cond::G => sa > sb,
            Cond::Le => sa <= sb,
            Cond::Ge => sa >= sb,
            Cond::Lu => a < b,
            Cond::Gu => a > b,
            Cond::Leu => a <= b,
            Cond::Geu => a >= b,
        }
    }

    /// Completes a pending intrinsic call; result goes to `%o0`.
    pub fn finish_intrinsic(&mut self, ret: u64) {
        debug_assert!(self.pending_intrinsic);
        self.set_reg(O0, ret);
        self.pending_intrinsic = false;
        self.pc += 1;
    }

    /// Runs until an [`Exit`], executing at most `fuel` instructions.
    pub fn run(&mut self, program: &SparcProgram, fuel: u64) -> Exit {
        let mut remaining = fuel;
        loop {
            if remaining == 0 {
                return Exit::OutOfFuel;
            }
            remaining -= 1;
            let Some(code) = program.code(self.cur_func) else {
                return Exit::NeedFunction(self.cur_func);
            };
            let code = Arc::clone(code);
            let Some(inst) = code.get(self.pc as usize) else {
                match self.do_ret() {
                    Some(exit) => return exit,
                    None => continue,
                }
            };
            self.stats.instructions += u64::from(inst.weight());
            match self.step(inst, program) {
                Ok(None) => {}
                Ok(Some(exit)) => return exit,
                Err(kind) => return Exit::Trapped(self.trap_here(kind)),
            }
        }
    }

    fn do_ret(&mut self) -> Option<Exit> {
        match self.frames.pop() {
            None => Some(Exit::Halt(self.reg(O0))),
            Some(f) => {
                self.cur_func = f.func;
                self.pc = f.ret_pc;
                None
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, inst: &SparcInst, program: &SparcProgram) -> Result<Option<Exit>, TrapKind> {
        use SparcInst as I;
        let mut next_pc = self.pc + 1;
        let mut cycles = 1u64;
        match inst {
            I::Sethi { imm22, rd } => {
                self.set_reg(*rd, u64::from(*imm22) << 10);
            }
            I::Alu {
                op,
                rs1,
                rhs,
                rd,
                trapping,
            } => {
                let a = self.reg(*rs1);
                let b = self.operand(*rhs);
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mul => {
                        cycles = 3;
                        a.wrapping_mul(b)
                    }
                    AluOp::Sdiv | AluOp::Udiv | AluOp::Srem | AluOp::Urem => {
                        cycles = 20;
                        if b == 0 {
                            if *trapping {
                                return Err(TrapKind::DivideByZero);
                            }
                            0
                        } else {
                            match op {
                                AluOp::Sdiv => (a as i64).wrapping_div(b as i64) as u64,
                                AluOp::Udiv => a / b,
                                AluOp::Srem => (a as i64).wrapping_rem(b as i64) as u64,
                                AluOp::Urem => a % b,
                                _ => unreachable!(),
                            }
                        }
                    }
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Sll => a.wrapping_shl((b & 63) as u32),
                    AluOp::Srl => a.wrapping_shr((b & 63) as u32),
                    AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
                };
                self.set_reg(*rd, v);
            }
            I::Cmp { rs1, rhs } => {
                self.flags = Flags {
                    lhs: self.reg(*rs1),
                    rhs: self.operand(*rhs),
                    ..Flags::default()
                };
            }
            I::Ld {
                rd,
                rs1,
                off,
                width,
                signed,
            } => {
                let a = self.reg(*rs1).wrapping_add(self.operand(*off));
                let v = if *signed {
                    self.mem.load_signed(a, *width)?
                } else {
                    self.mem.load(a, *width)?
                };
                self.set_reg(*rd, v);
                self.stats.loads += 1;
                cycles = 2;
            }
            I::St {
                rs,
                rs1,
                off,
                width,
            } => {
                let a = self.reg(*rs1).wrapping_add(self.operand(*off));
                self.mem.store(a, self.reg(*rs), *width)?;
                self.stats.stores += 1;
                cycles = 2;
            }
            I::LdF { fd, rs1, off, is32 } => {
                let a = self.reg(*rs1).wrapping_add(self.operand(*off));
                let v = if *is32 {
                    self.mem.load(a, Width::B4)?
                } else {
                    self.mem.load(a, Width::B8)?
                };
                self.fregs[fd.0 as usize] = v;
                self.stats.loads += 1;
                cycles = 2;
            }
            I::StF { fs, rs1, off, is32 } => {
                let a = self.reg(*rs1).wrapping_add(self.operand(*off));
                let v = self.fregs[fs.0 as usize];
                if *is32 {
                    self.mem.store(a, v & 0xFFFF_FFFF, Width::B4)?;
                } else {
                    self.mem.store(a, v, Width::B8)?;
                }
                self.stats.stores += 1;
                cycles = 2;
            }
            I::Br { cond, target } => {
                if self.cond(*cond) {
                    next_pc = *target;
                    self.stats.taken_branches += 1;
                }
            }
            I::Ba { target } => {
                next_pc = *target;
                self.stats.taken_branches += 1;
            }
            I::Call { func, unwind } => {
                self.stats.calls += 1;
                cycles = 2;
                if !program.is_installed(*func) {
                    return Ok(Some(Exit::NeedFunction(*func)));
                }
                self.frames.push(Frame {
                    func: self.cur_func,
                    ret_pc: next_pc,
                    saved_sp: self.reg(SP),
                    unwind: *unwind,
                });
                self.cur_func = *func;
                self.pc = 0;
                self.stats.cycles += cycles;
                return Ok(None);
            }
            I::CallIndirect { rs, unwind } => {
                let v = self.reg(*rs);
                if v & FUNC_TAG == 0 {
                    return Err(TrapKind::BadFunctionPointer);
                }
                let func = (v & !FUNC_TAG) as u32;
                self.stats.calls += 1;
                cycles = 3;
                if !program.is_installed(func) {
                    return Ok(Some(Exit::NeedFunction(func)));
                }
                self.frames.push(Frame {
                    func: self.cur_func,
                    ret_pc: next_pc,
                    saved_sp: self.reg(SP),
                    unwind: *unwind,
                });
                self.cur_func = func;
                self.pc = 0;
                self.stats.cycles += cycles;
                return Ok(None);
            }
            I::CallIntrinsic { which, nargs } => {
                self.stats.calls += 1;
                let args: Vec<u64> = (0..*nargs).map(|i| self.reg(Reg(8 + i))).collect();
                self.pending_intrinsic = true;
                return Ok(Some(Exit::Intrinsic {
                    which: *which,
                    args,
                }));
            }
            I::Ret => {
                self.stats.cycles += 2;
                return Ok(self.do_ret());
            }
            I::Unwind => loop {
                match self.frames.pop() {
                    None => return Err(TrapKind::UnhandledUnwind),
                    Some(f) => {
                        if let Some(pad) = f.unwind {
                            self.cur_func = f.func;
                            self.pc = pad;
                            self.set_reg(SP, f.saved_sp);
                            self.stats.cycles += 2;
                            return Ok(None);
                        }
                    }
                }
            },
            I::MovSym { rd, sym } => {
                let v = match sym {
                    Sym::Global(g) => program.global_addr(*g),
                    Sym::Function(f) => function_value(*f),
                };
                self.set_reg(*rd, v);
                cycles = 2; // sethi + or
            }
            I::FMov(d, s) => self.fregs[d.0 as usize] = self.fregs[s.0 as usize],
            I::FAlu {
                op,
                fs1,
                fs2,
                fd,
                is32,
            } => {
                let a = fbits(self.fregs[fs1.0 as usize], *is32);
                let b = fbits(self.fregs[fs2.0 as usize], *is32);
                let r = match op {
                    FpOp::Add => a + b,
                    FpOp::Sub => a - b,
                    FpOp::Mul => a * b,
                    FpOp::Div => a / b,
                };
                self.fregs[fd.0 as usize] = to_fbits(r, *is32);
                cycles = 3;
            }
            I::FCmp { fs1, fs2, is32 } => {
                let a = fbits(self.fregs[fs1.0 as usize], *is32);
                let b = fbits(self.fregs[fs2.0 as usize], *is32);
                self.flags = Flags {
                    float: true,
                    unordered: a.is_nan() || b.is_nan(),
                    flhs: a,
                    frhs: b,
                    ..Flags::default()
                };
                cycles = 2;
            }
            I::CvtIF {
                fd,
                rs,
                to32,
                signed,
            } => {
                let v = self.reg(*rs);
                let f = if *signed { v as i64 as f64 } else { v as f64 };
                self.fregs[fd.0 as usize] = to_fbits(f, *to32);
                cycles = 3;
            }
            I::CvtFI {
                rd,
                fs,
                from32,
                signed,
            } => {
                let f = fbits(self.fregs[fs.0 as usize], *from32);
                let v = if *signed { (f as i64) as u64 } else { f as u64 };
                self.set_reg(*rd, v);
                cycles = 3;
            }
            I::CvtFF { fd, fs, to32 } => {
                let f = fbits(self.fregs[fs.0 as usize], !*to32);
                self.fregs[fd.0 as usize] = to_fbits(f, *to32);
                cycles = 2;
            }
            I::MovGF(rd, fs) => self.set_reg(*rd, self.fregs[fs.0 as usize]),
            I::MovFG(fd, rs) => self.fregs[fd.0 as usize] = self.reg(*rs),
        }
        self.pc = next_pc;
        self.stats.cycles += cycles;
        Ok(None)
    }
}

fn fbits(bits: u64, is32: bool) -> f64 {
    if is32 {
        f32::from_bits(bits as u32) as f64
    } else {
        f64::from_bits(bits)
    }
}

fn to_fbits(v: f64, is32: bool) -> u64 {
    if is32 {
        (v as f32).to_bits() as u64
    } else {
        v.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_core::layout::Endianness;

    fn machine() -> SparcMachine {
        SparcMachine::new(Memory::new(1 << 20, 0x2000, Endianness::Big))
    }

    #[test]
    fn g0_is_always_zero() {
        let mut m = machine();
        m.set_reg(G0, 42);
        assert_eq!(m.reg(G0), 0);
    }

    #[test]
    fn sethi_or_builds_constants() {
        use SparcInst as I;
        let mut p = SparcProgram::new(1, vec![]);
        // build 0x12345678 into %o0: sethi hi22, o0; or o0, lo10
        let v = 0x1234_5678u64;
        p.install(
            0,
            vec![
                I::Sethi {
                    imm22: (v >> 10) as u32,
                    rd: O0,
                },
                I::Alu {
                    op: AluOp::Or,
                    rs1: O0,
                    rhs: RegOrImm::Imm((v & 0x3FF) as i16),
                    rd: O0,
                    trapping: false,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&p, 100), Exit::Halt(v));
    }

    #[test]
    fn register_args_and_return() {
        use SparcInst as I;
        let mut p = SparcProgram::new(1, vec![]);
        // o0 = o0 + o1
        p.install(
            0,
            vec![
                I::Alu {
                    op: AluOp::Add,
                    rs1: Reg(8),
                    rhs: RegOrImm::Reg(Reg(9)),
                    rd: O0,
                    trapping: false,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[30, 12]).unwrap();
        assert_eq!(m.run(&p, 100), Exit::Halt(42));
    }

    #[test]
    fn branch_loop_sums() {
        use SparcInst as I;
        // sum 1..=n: l0 (r16) = acc, o0 = n
        let mut p = SparcProgram::new(1, vec![]);
        p.install(
            0,
            vec![
                I::Alu {
                    op: AluOp::Or,
                    rs1: G0,
                    rhs: RegOrImm::Imm(0),
                    rd: Reg(16),
                    trapping: false,
                }, // acc = 0
                // loop:
                I::Alu {
                    op: AluOp::Add,
                    rs1: Reg(16),
                    rhs: RegOrImm::Reg(O0),
                    rd: Reg(16),
                    trapping: false,
                },
                I::Alu {
                    op: AluOp::Sub,
                    rs1: O0,
                    rhs: RegOrImm::Imm(1),
                    rd: O0,
                    trapping: false,
                },
                I::Cmp {
                    rs1: O0,
                    rhs: RegOrImm::Imm(0),
                },
                I::Br {
                    cond: Cond::G,
                    target: 1,
                },
                I::Alu {
                    op: AluOp::Or,
                    rs1: Reg(16),
                    rhs: RegOrImm::Imm(0),
                    rd: O0,
                    trapping: false,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[5]).unwrap();
        assert_eq!(m.run(&p, 1000), Exit::Halt(15));
    }

    #[test]
    fn memory_is_big_endian() {
        use SparcInst as I;
        let mut p = SparcProgram::new(1, vec![]);
        p.install(
            0,
            vec![
                I::Alu {
                    op: AluOp::Or,
                    rs1: G0,
                    rhs: RegOrImm::Imm(0x1AB),
                    rd: G1,
                    trapping: false,
                },
                I::St {
                    rs: G1,
                    rs1: SP,
                    off: RegOrImm::Imm(-8),
                    width: Width::B4,
                },
                I::Ld {
                    rd: O0,
                    rs1: SP,
                    off: RegOrImm::Imm(-8),
                    width: Width::B1,
                    signed: false,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        // big-endian: first byte of 0x000001AB is 0x00
        assert_eq!(m.run(&p, 100), Exit::Halt(0));
    }

    #[test]
    fn div_by_zero_trap_and_nontrapping() {
        use SparcInst as I;
        for (trapping, expect_trap) in [(true, true), (false, false)] {
            let mut p = SparcProgram::new(1, vec![]);
            p.install(
                0,
                vec![
                    I::Alu {
                        op: AluOp::Sdiv,
                        rs1: O0,
                        rhs: RegOrImm::Reg(G0),
                        rd: O0,
                        trapping,
                    },
                    I::Ret,
                ],
            );
            let mut m = machine();
            m.call_entry(0, &[10]).unwrap();
            match m.run(&p, 100) {
                Exit::Trapped(t) if expect_trap => assert_eq!(t.kind, TrapKind::DivideByZero),
                Exit::Halt(0) if !expect_trap => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn movsym_weight_counts_double() {
        use SparcInst as I;
        let inst = I::MovSym {
            rd: O0,
            sym: Sym::Global(0),
        };
        assert_eq!(inst.weight(), 2);
        assert_eq!(inst.native_size(), 8);
        let mut p = SparcProgram::new(1, vec![0x4000]);
        p.install(0, vec![inst, I::Ret]);
        assert_eq!(p.total_insts(), 3);
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&p, 100), Exit::Halt(0x4000));
    }

    #[test]
    fn float_and_conversion() {
        use SparcInst as I;
        let mut p = SparcProgram::new(1, vec![]);
        // o0 = (int)(1.5 + 2.25) -> 3
        p.install(
            0,
            vec![
                I::Alu {
                    op: AluOp::Or,
                    rs1: G0,
                    rhs: RegOrImm::Imm(3),
                    rd: G1,
                    trapping: false,
                },
                I::CvtIF {
                    fd: FReg(0),
                    rs: G1,
                    to32: false,
                    signed: true,
                }, // f0 = 3.0
                I::Alu {
                    op: AluOp::Or,
                    rs1: G0,
                    rhs: RegOrImm::Imm(2),
                    rd: G1,
                    trapping: false,
                },
                I::CvtIF {
                    fd: FReg(1),
                    rs: G1,
                    to32: false,
                    signed: true,
                }, // f1 = 2.0
                I::FAlu {
                    op: FpOp::Div,
                    fs1: FReg(0),
                    fs2: FReg(1),
                    fd: FReg(2),
                    is32: false,
                }, // 1.5
                I::CvtFI {
                    rd: O0,
                    fs: FReg(2),
                    from32: false,
                    signed: true,
                }, // 1
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&p, 100), Exit::Halt(1));
    }

    #[test]
    fn intrinsic_args_from_o_regs() {
        use SparcInst as I;
        let mut p = SparcProgram::new(1, vec![]);
        p.install(
            0,
            vec![
                I::Alu {
                    op: AluOp::Or,
                    rs1: G0,
                    rhs: RegOrImm::Imm(65),
                    rd: O0,
                    trapping: false,
                },
                I::CallIntrinsic {
                    which: Intrinsic::IoPutChar,
                    nargs: 1,
                },
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        match m.run(&p, 100) {
            Exit::Intrinsic { which, args } => {
                assert_eq!(which, Intrinsic::IoPutChar);
                assert_eq!(args, vec![65]);
            }
            other => panic!("unexpected {other:?}"),
        }
        m.finish_intrinsic(0);
        assert_eq!(m.run(&p, 100), Exit::Halt(0));
    }

    #[test]
    fn unwind_across_frames() {
        use SparcInst as I;
        let mut p = SparcProgram::new(3, vec![]);
        p.install(2, vec![I::Unwind]); // innermost
        p.install(
            1,
            vec![
                I::Call {
                    func: 2,
                    unwind: None,
                },
                I::Ret,
            ],
        ); // middle, no pad
        p.install(
            0,
            vec![
                I::Call {
                    func: 1,
                    unwind: Some(3),
                },
                I::Alu {
                    op: AluOp::Or,
                    rs1: G0,
                    rhs: RegOrImm::Imm(1),
                    rd: O0,
                    trapping: false,
                },
                I::Ret,
                I::Alu {
                    op: AluOp::Or,
                    rs1: G0,
                    rhs: RegOrImm::Imm(99),
                    rd: O0,
                    trapping: false,
                }, // pad
                I::Ret,
            ],
        );
        let mut m = machine();
        m.call_entry(0, &[]).unwrap();
        assert_eq!(m.run(&p, 1000), Exit::Halt(99));
    }
}
