//! The tiered execution supervisor: graceful degradation for LLEE.
//!
//! The paper's premise is that the translator and execution engine are
//! *invisible* system software (§4.1): a bad translation, a panicking
//! fast path, or a runaway tier must never surface as a crash of the
//! "hardware". The [`Supervisor`] makes that discipline explicit: every
//! run walks a **tier ladder**
//!
//! ```text
//! translated native code  →  traced FastInterpreter  →  pre-decoded FastInterpreter  →  structural Interpreter
//! ```
//!
//! where each tier executes under `catch_unwind` plus a fuel/step
//! watchdog. On a panic, an engine fault, or watchdog expiry the
//! supervisor **quarantines** that `(function, tier)` pair, records a
//! structured [`Incident`] (tier, function, cause, recovery action,
//! prior-fault count), and transparently re-runs on the next tier — the
//! caller still gets a [`SupervisedRun`]. The structural [`Interpreter`]
//! is the last rung: it is the semantic oracle (PR 3/4) and always runs
//! with the caller's full fuel.
//!
//! # Cross-check mode
//!
//! With [`Supervisor::set_cross_check`] enabled (used by the
//! conformance oracle and the fault-injection suites), the answering
//! fast tier's outcome is verified against the structural interpreter
//! before being served. A divergence is treated as a *fault of the fast
//! tier*: it is quarantined and the ladder continues, so a wrong answer
//! is never propagated. This mirrors the SMC/SEC invalidation model of
//! §3.4 — distrust the derived artifact, never the virtual object code.
//!
//! # Determinism
//!
//! Incidents carry no wall-clock data, quarantine state is kept in
//! ordered maps, and fault injection ([`TierKill`], the interpreters'
//! `arm_panic_after` hooks, [`crate::storage::FaultyStorage`]) is
//! seed/count based — the same inputs replay the same [`IncidentLog`]
//! bit for bit.

use crate::interp::Interpreter;
use crate::llee::{EngineError, ExecutionManager, TargetIsa};
use crate::predecode::FastInterpreter;
use crate::traced::TraceConfig;
use crate::storage::Storage;
use crate::InterpError;
use llva_core::module::Module;
use llva_machine::common::TrapKind;
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// One rung of the execution ladder, fastest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// LLEE-translated native code on the simulated processor.
    Translated,
    /// The pre-decoded interpreter with the hot-trace tier enabled:
    /// profile-guided trace compilation with fused superinstructions.
    Traced,
    /// The pre-decoded register-file interpreter.
    FastInterp,
    /// The structural reference interpreter (the semantic oracle).
    Interp,
}

impl Tier {
    /// The full ladder, fastest tier first.
    pub const LADDER: [Tier; 4] =
        [Tier::Translated, Tier::Traced, Tier::FastInterp, Tier::Interp];

    /// Dense index (for per-tier counter arrays).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Tier::Translated => 0,
            Tier::Traced => 1,
            Tier::FastInterp => 2,
            Tier::Interp => 3,
        }
    }

    /// Parses the names used by `LLVA_KILL_TIER` (`translated`,
    /// `traced`/`traced-interp`, `fast-interp`/`predecode`, `interp`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Tier> {
        match s.trim() {
            "translated" => Some(Tier::Translated),
            "traced" | "traced-interp" => Some(Tier::Traced),
            "fast-interp" | "predecode" => Some(Tier::FastInterp),
            "interp" => Some(Tier::Interp),
            _ => None,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tier::Translated => "translated",
            Tier::Traced => "traced",
            Tier::FastInterp => "fast-interp",
            Tier::Interp => "interp",
        })
    }
}

/// The semantic outcome of one tier — the only observations all tiers
/// must agree on (return bits, precise trap kind, or fuel exhaustion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierOutcome {
    /// Normal completion with the returned raw bits.
    Value(u64),
    /// A precise trap of this kind.
    Trap(TrapKind),
    /// The caller's fuel limit was genuinely exhausted (not the
    /// watchdog — that is an [`IncidentCause::Watchdog`] fault).
    OutOfFuel,
}

impl fmt::Display for TierOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierOutcome::Value(v) => write!(f, "value {v:#x} ({})", *v as i64),
            TierOutcome::Trap(k) => write!(f, "trap: {k}"),
            TierOutcome::OutOfFuel => f.write_str("out of fuel"),
        }
    }
}

/// Why a tier was taken out of service for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncidentCause {
    /// The tier panicked; the payload message is preserved.
    Panic(String),
    /// The tier reported an engine fault that is not a semantic
    /// outcome (e.g. a missing body or a poisoned translation).
    Fault(String),
    /// The tier exceeded the supervisor's step watchdog while the
    /// caller's fuel budget still had headroom.
    Watchdog {
        /// The step budget the tier blew through.
        budget: u64,
    },
    /// Cross-check mode: the tier's outcome disagreed with the
    /// structural interpreter.
    Divergence {
        /// What the structural interpreter observed.
        expected: TierOutcome,
        /// What this tier produced instead.
        got: TierOutcome,
    },
    /// A quarantine probe succeeded: the pair had earned a one-shot
    /// retry by serving lower-tier calls, the retry passed (including
    /// cross-check when enabled), and the tier was restored to service.
    ProbeRecovered {
        /// Successful lower-tier calls observed before the probe.
        successes: u32,
    },
}

impl fmt::Display for IncidentCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncidentCause::Panic(msg) => write!(f, "panic: {msg}"),
            IncidentCause::Fault(msg) => write!(f, "fault: {msg}"),
            IncidentCause::Watchdog { budget } => {
                write!(f, "watchdog expired (budget {budget} steps)")
            }
            IncidentCause::Divergence { expected, got } => {
                write!(f, "divergence: expected {expected}, got {got}")
            }
            IncidentCause::ProbeRecovered { successes } => {
                write!(f, "probe recovered (after {successes} lower-tier successes)")
            }
        }
    }
}

/// What the supervisor did about an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Execution degraded to this (slower, known-good) tier.
    FellBack(Tier),
    /// No rung remained; the run failed with
    /// [`SupervisorError::TiersExhausted`].
    Exhausted,
    /// A quarantine probe passed and this tier returned to service.
    Restored(Tier),
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::FellBack(t) => write!(f, "fell back to {t}"),
            RecoveryAction::Exhausted => f.write_str("all tiers exhausted"),
            RecoveryAction::Restored(t) => write!(f, "restored {t} to service"),
        }
    }
}

/// One structured fault report: which tier failed on which function,
/// why, what the supervisor did, and how often this pair had already
/// faulted before this incident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// Ordinal of this incident across the log's whole lifetime
    /// (0-based, monotonically increasing — the log's only notion of
    /// time; stays monotonic even after older incidents are dropped by
    /// the ring-buffer cap).
    pub seq: u64,
    /// The faulting tier.
    pub tier: Tier,
    /// The entry function of the supervised run.
    pub function: String,
    /// Why the tier failed.
    pub cause: IncidentCause,
    /// What the supervisor did next.
    pub recovery: RecoveryAction,
    /// Prior recorded faults for this `(function, tier)` pair.
    pub retries: u32,
    /// True when the fault was produced by an armed [`TierKill`]
    /// (fault-injection runs use this to separate expected kills from
    /// genuine bugs).
    pub injected: bool,
    /// True when this incident was produced by a quarantine probe (the
    /// one-shot retry of a quarantined pair): either the probe's own
    /// fault, or the [`IncidentCause::ProbeRecovered`] success report.
    pub probe: bool,
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} tier {} fn %{}: {} -> {} (prior faults {}{}{})",
            self.seq,
            self.tier,
            self.function,
            self.cause,
            self.recovery,
            self.retries,
            if self.injected { ", injected" } else { "" },
            if self.probe { ", probe" } else { "" }
        )
    }
}

/// The default [`IncidentLog`] ring-buffer capacity: large enough that
/// a real investigation sees deep history, small enough that a tenant
/// flapping for weeks cannot grow a long-running service without bound.
pub const DEFAULT_INCIDENT_CAPACITY: usize = 1024;

/// The bounded incident log of one supervisor: a ring buffer keeping
/// the most recent [`IncidentLog::capacity`] incidents. Older incidents
/// are dropped (counted by [`IncidentLog::dropped`]) rather than
/// accumulated — a flapping function cannot OOM a long-running service.
/// Sequence numbers stay monotonic across drops, so a gap in `seq` is
/// visible evidence of discarded history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentLog {
    incidents: Vec<Incident>,
    capacity: usize,
    dropped: u64,
}

impl Default for IncidentLog {
    fn default() -> IncidentLog {
        IncidentLog::with_capacity(DEFAULT_INCIDENT_CAPACITY)
    }
}

impl IncidentLog {
    /// An empty log keeping at most `capacity` (≥ 1) incidents.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> IncidentLog {
        IncidentLog {
            incidents: Vec::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// The retained incidents, oldest first.
    #[must_use]
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Number of incidents currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    /// True when nothing has ever gone wrong (no retained incidents
    /// *and* none dropped).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty() && self.dropped == 0
    }

    /// The ring-buffer capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Incidents dropped by the ring buffer so far (monotonic).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Incidents ever recorded: retained plus dropped.
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.dropped + self.incidents.len() as u64
    }

    /// Re-caps the ring buffer (≥ 1), dropping the oldest retained
    /// incidents if the new capacity is smaller.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        if self.incidents.len() > self.capacity {
            let excess = self.incidents.len() - self.capacity;
            self.incidents.drain(..excess);
            self.dropped += excess as u64;
        }
    }

    /// A compact one-line summary (for failure reports): every retained
    /// incident's tier and cause, semicolon separated.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.incidents.is_empty() && self.dropped == 0 {
            return "no incidents".to_string();
        }
        let mut parts: Vec<String> = Vec::new();
        if self.dropped > 0 {
            parts.push(format!("[{} older dropped]", self.dropped));
        }
        parts.extend(
            self.incidents
                .iter()
                .map(|i| format!("{}: {}", i.tier, i.cause)),
        );
        parts.join("; ")
    }

    fn push(&mut self, mut incident: Incident) {
        incident.seq = self.total_recorded();
        if self.incidents.len() >= self.capacity {
            let excess = self.incidents.len() + 1 - self.capacity;
            self.incidents.drain(..excess);
            self.dropped += excess as u64;
        }
        self.incidents.push(incident);
    }
}

/// Per-tier counters (the `exec_stats()`-style health surface).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Runs attempted on this tier.
    pub attempts: u64,
    /// Runs this tier answered (its outcome was served to the caller).
    pub served: u64,
    /// Panics caught in this tier.
    pub panics: u64,
    /// Non-panic engine faults in this tier.
    pub faults: u64,
    /// Watchdog expiries in this tier.
    pub watchdog_expiries: u64,
    /// Cross-check divergences charged to this tier.
    pub divergences: u64,
    /// Runs that skipped this tier because the `(function, tier)` pair
    /// was quarantined.
    pub skipped_quarantined: u64,
    /// Quarantine probes attempted on this tier (one-shot retries of a
    /// quarantined pair; see [`Supervisor::set_probe_after`]).
    pub probes: u64,
}

impl TierCounters {
    /// Accumulates `other` into `self` (long-running surfaces aggregate
    /// per-supervisor counters across modules).
    pub fn merge(&mut self, other: &TierCounters) {
        self.attempts += other.attempts;
        self.served += other.served;
        self.panics += other.panics;
        self.faults += other.faults;
        self.watchdog_expiries += other.watchdog_expiries;
        self.divergences += other.divergences;
        self.skipped_quarantined += other.skipped_quarantined;
        self.probes += other.probes;
    }
}

/// A successful supervised run: the outcome plus which rung produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisedRun {
    /// The semantic outcome (identical across tiers by construction).
    pub outcome: TierOutcome,
    /// The tier that produced the answer.
    pub tier: Tier,
    /// True when any faster tier was skipped or faulted on the way.
    pub degraded: bool,
    /// Steps the answering tier executed (native instructions for the
    /// translated tier, LLVA instructions for the interpreters).
    pub steps: u64,
}

impl SupervisedRun {
    /// The returned raw bits, if the run completed normally.
    #[must_use]
    pub fn value(&self) -> Option<u64> {
        match self.outcome {
            TierOutcome::Value(v) => Some(v),
            _ => None,
        }
    }
}

/// Why a supervised run produced no outcome at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorError {
    /// The entry function does not exist or has no body (checked before
    /// any tier runs; not a tier fault).
    NoSuchFunction(String),
    /// Every rung of the ladder faulted or was quarantined.
    TiersExhausted {
        /// The entry function whose ladder ran dry.
        function: String,
        /// Incidents recorded during this run.
        incidents: u32,
    },
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisorError::NoSuchFunction(n) => write!(f, "no such function %{n}"),
            SupervisorError::TiersExhausted { function, incidents } => write!(
                f,
                "all execution tiers exhausted for %{function} ({incidents} incident(s) this run)"
            ),
        }
    }
}

impl std::error::Error for SupervisorError {}

/// How an armed [`TierKill`] sabotages its tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// Panic inside the tier (at entry for translated code, after one
    /// executed instruction for the interpreters — mid-frame, so the
    /// unwind crosses live state).
    Panic,
    /// Flip the returned value (a *silent* wrong answer — only
    /// cross-check mode can catch this one).
    WrongValue,
}

/// A deterministic fault-injection directive: sabotage one tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierKill {
    /// The tier to sabotage.
    pub tier: Tier,
    /// How.
    pub mode: KillMode,
}

impl TierKill {
    /// A panic kill for `tier`.
    #[must_use]
    pub fn panic(tier: Tier) -> TierKill {
        TierKill { tier, mode: KillMode::Panic }
    }

    /// A silent wrong-value kill for `tier`.
    #[must_use]
    pub fn wrong_value(tier: Tier) -> TierKill {
        TierKill { tier, mode: KillMode::WrongValue }
    }
}

/// Parses the `LLVA_KILL_TIER` environment variable: a comma-separated
/// list of tier names (`translated,fast-interp`), each armed as a panic
/// kill. Unknown names are ignored; unset or empty yields no kills.
#[must_use]
pub fn kills_from_env() -> Vec<TierKill> {
    match std::env::var("LLVA_KILL_TIER") {
        Ok(spec) => spec
            .split(',')
            .filter_map(Tier::parse)
            .map(TierKill::panic)
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// What one tier execution produced, pre-recovery.
enum TierRun {
    Done(TierOutcome, u64),
    Fault(IncidentCause),
}

/// The tiered execution supervisor (see the module docs).
pub struct Supervisor {
    module: Module,
    isa: TargetIsa,
    memory_size: u64,
    fuel: u64,
    watchdog: Option<u64>,
    cross_check: bool,
    kills: Vec<TierKill>,
    max_faults: u32,
    probe_after: Option<u32>,
    storage: Option<(Box<dyn Storage>, String)>,
    quarantine: BTreeSet<(String, Tier)>,
    fault_counts: BTreeMap<(String, Tier), u32>,
    probe_successes: BTreeMap<(String, Tier), u32>,
    log: IncidentLog,
    counters: [TierCounters; 4],
    translation: crate::llee::TranslationStats,
    /// Warm-load fast path: a persistent module image probed before
    /// any tier lowers or translates (shared across tiers and runs).
    image: Option<std::sync::Arc<crate::image::LlvaImage>>,
}

impl fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervisor")
            .field("module", &self.module.name())
            .field("isa", &self.isa)
            .field("incidents", &self.log.len())
            .field("quarantined", &self.quarantine)
            .finish()
    }
}

/// Instructions an interpreter tier executes before an armed
/// [`KillMode::Panic`] fires — small enough that every defined function
/// is hit, large enough that the panic unwinds through a live frame.
const KILL_AFTER_INSTS: u64 = 1;

impl Supervisor {
    /// A supervisor over `module` whose translated tier targets `isa`,
    /// with the default 16 MiB memory.
    #[must_use]
    pub fn new(module: Module, isa: TargetIsa) -> Supervisor {
        Supervisor::with_memory_size(module, isa, crate::DEFAULT_MEMORY_SIZE)
    }

    /// [`Supervisor::new`] with a custom simulated memory size.
    #[must_use]
    pub fn with_memory_size(module: Module, isa: TargetIsa, memory_size: u64) -> Supervisor {
        Supervisor {
            module,
            isa,
            memory_size,
            fuel: 10_000_000_000,
            watchdog: None,
            cross_check: false,
            kills: Vec::new(),
            max_faults: 1,
            probe_after: None,
            storage: None,
            quarantine: BTreeSet::new(),
            fault_counts: BTreeMap::new(),
            probe_successes: BTreeMap::new(),
            log: IncidentLog::default(),
            counters: [TierCounters::default(); 4],
            translation: crate::llee::TranslationStats::default(),
            image: None,
        }
    }

    /// Attaches a persistent module image ([`crate::image::LlvaImage`]):
    /// the translated tier installs its native section instead of
    /// probing storage per function, and the pre-decoded interpreter
    /// tiers deserialize its predecode section on demand instead of
    /// re-lowering SSA. The image's module stamp is verified against
    /// this supervisor's module *once, here* — so the per-execution
    /// warm loads can trust the records without re-deriving content
    /// hashes. A mismatched image is refused (returns `false`) and the
    /// supervisor keeps its cold paths; corrupt sections degrade the
    /// same way at load time. Attaching an image never changes
    /// outcomes, only costs.
    pub fn set_image(&mut self, image: std::sync::Arc<crate::image::LlvaImage>) -> bool {
        if crate::llee::stamp(&self.module) != image.stamp() {
            return false;
        }
        self.image = Some(image);
        true
    }

    /// The module being supervised.
    #[must_use]
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Limits each run's step budget (the semantic fuel limit; see also
    /// [`Supervisor::set_watchdog`]).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Arms the per-tier step watchdog: a *fast* tier exceeding
    /// `budget` steps (while the caller's fuel still has headroom) is
    /// treated as hung — an incident, not an outcome. The final
    /// structural-interpreter rung always runs with the full fuel, so a
    /// genuine infinite loop still reports [`TierOutcome::OutOfFuel`].
    pub fn set_watchdog(&mut self, budget: u64) {
        self.watchdog = Some(budget);
    }

    /// Enables cross-check mode (see the module docs).
    pub fn set_cross_check(&mut self, enabled: bool) {
        self.cross_check = enabled;
    }

    /// How many faults a `(function, tier)` pair tolerates before
    /// quarantine (default 1: the first fault quarantines).
    pub fn set_max_faults(&mut self, max_faults: u32) {
        self.max_faults = max_faults.max(1);
    }

    /// Enables quarantine recovery probes: after `calls` (≥ 1)
    /// successful lower-tier runs of a function, its quarantined
    /// `(function, tier)` pair earns one supervised retry instead of
    /// staying quarantined forever. A passing probe (including the
    /// cross-check when enabled) restores the tier and logs an
    /// [`IncidentCause::ProbeRecovered`]; a failing probe re-quarantines
    /// and must earn another `calls` successes before the next probe.
    /// At most one pair is probed per run, fastest tier first. Default:
    /// disabled (quarantine is permanent).
    pub fn set_probe_after(&mut self, calls: u32) {
        self.probe_after = Some(calls.max(1));
    }

    /// Disables quarantine recovery probes (the default).
    pub fn clear_probe_after(&mut self) {
        self.probe_after = None;
    }

    /// Re-caps the incident log's ring buffer (see
    /// [`IncidentLog::set_capacity`]).
    pub fn set_incident_capacity(&mut self, capacity: usize) {
        self.log.set_capacity(capacity);
    }

    /// Translation/cache statistics accumulated across every run's
    /// translated tier (per-run [`crate::llee::ExecutionManager`]s are
    /// ephemeral; this is the long-running aggregate a service surfaces
    /// as metrics).
    #[must_use]
    pub fn translation_stats(&self) -> crate::llee::TranslationStats {
        self.translation
    }

    /// Arms a fault-injection kill (additive; see [`kills_from_env`]).
    pub fn arm_kill(&mut self, kill: TierKill) {
        self.kills.push(kill);
    }

    /// Disarms all kills.
    pub fn clear_kills(&mut self) {
        self.kills.clear();
    }

    /// Attaches OS storage for the translated tier's offline cache
    /// (retry-with-backoff and validation happen inside
    /// [`ExecutionManager`]; see `llee`).
    pub fn set_storage(&mut self, storage: Box<dyn Storage>, cache: &str) {
        self.storage = Some((storage, cache.to_string()));
    }

    /// Detaches and returns the storage.
    pub fn take_storage(&mut self) -> Option<Box<dyn Storage>> {
        self.storage.take().map(|(s, _)| s)
    }

    /// The incident log (append-only, deterministic).
    #[must_use]
    pub fn incident_log(&self) -> &IncidentLog {
        &self.log
    }

    /// Per-tier counters, indexed by [`Tier::index`].
    #[must_use]
    pub fn tier_counters(&self) -> &[TierCounters; 4] {
        &self.counters
    }

    /// True when `(function, tier)` is quarantined.
    #[must_use]
    pub fn is_quarantined(&self, function: &str, tier: Tier) -> bool {
        self.quarantine.contains(&(function.to_string(), tier))
    }

    /// All quarantined `(function, tier)` pairs, in deterministic order.
    #[must_use]
    pub fn quarantined(&self) -> Vec<(String, Tier)> {
        self.quarantine.iter().cloned().collect()
    }

    /// Re-imposes a quarantine without a fresh fault — the serving
    /// layer's crash-recovery path replays journaled quarantine state
    /// into a respawned supervisor so a faulty tier is not retried
    /// just because the executor process state was rebuilt. The fault
    /// count is pinned at the quarantine threshold so a later
    /// recovery-probe failure re-quarantines exactly as if the faults
    /// had happened in this supervisor.
    pub fn impose_quarantine(&mut self, function: &str, tier: Tier) {
        let key = (function.to_string(), tier);
        self.fault_counts
            .insert(key.clone(), self.max_faults.max(1));
        self.quarantine.insert(key);
    }

    /// Lifts the quarantine for one pair (e.g. after an SMC edit
    /// replaced the function body that kept crashing a tier).
    pub fn lift_quarantine(&mut self, function: &str, tier: Tier) {
        self.quarantine.remove(&(function.to_string(), tier));
        self.fault_counts.remove(&(function.to_string(), tier));
        self.probe_successes.remove(&(function.to_string(), tier));
    }

    /// Lifts every quarantine for one function across all tiers — the
    /// serving layer's bounded-retry path gives a transiently-exhausted
    /// function a clean ladder on its next attempt.
    pub fn lift_all_quarantines(&mut self, function: &str) {
        for tier in Tier::LADDER {
            self.lift_quarantine(function, tier);
        }
    }

    fn kill_for(&self, tier: Tier) -> Option<KillMode> {
        self.kills.iter().find(|k| k.tier == tier).map(|k| k.mode)
    }

    /// Runs `entry` through the tier ladder with graceful degradation.
    ///
    /// # Errors
    ///
    /// [`SupervisorError::NoSuchFunction`] for a missing entry point,
    /// and [`SupervisorError::TiersExhausted`] when every rung faulted
    /// — every fault along the way is in [`Supervisor::incident_log`].
    pub fn run(&mut self, entry: &str, args: &[u64]) -> Result<SupervisedRun, SupervisorError> {
        if self
            .module
            .function_by_name(entry)
            .filter(|&f| !self.module.function(f).is_declaration())
            .is_none()
        {
            return Err(SupervisorError::NoSuchFunction(entry.to_string()));
        }
        let mut degraded = false;
        let mut incidents_this_run = 0u32;
        // the structural interpreter's outcome, computed at most once
        // per run (cross-check or the final rung itself)
        let mut oracle: Option<TierOutcome> = None;
        // at most one quarantined pair gets its one-shot probe per run
        let mut probe_spent = false;
        for (rung, &tier) in Tier::LADDER.iter().enumerate() {
            let key = (entry.to_string(), tier);
            let mut probing = false;
            if self.quarantine.contains(&key) {
                let due = !probe_spent
                    && self.probe_after.is_some_and(|n| {
                        self.probe_successes.get(&key).copied().unwrap_or(0) >= n
                    });
                if !due {
                    self.counters[tier.index()].skipped_quarantined += 1;
                    degraded = true;
                    continue;
                }
                probing = true;
                probe_spent = true;
                self.counters[tier.index()].probes += 1;
            }
            let is_final = rung == Tier::LADDER.len() - 1;
            let budget = if is_final {
                self.fuel
            } else {
                self.watchdog.map_or(self.fuel, |w| w.min(self.fuel))
            };
            self.counters[tier.index()].attempts += 1;
            let kill = self.kill_for(tier);
            let run = self.execute_tier(tier, entry, args, budget, kill);
            let (mut outcome, steps) = match run {
                TierRun::Done(outcome, steps) => (outcome, steps),
                TierRun::Fault(cause) => {
                    let injected = matches!(
                        (&cause, kill),
                        (IncidentCause::Panic(_), Some(KillMode::Panic))
                    );
                    incidents_this_run += 1;
                    self.record_fault(tier, entry, cause, injected, probing);
                    if probing {
                        // a failed probe re-quarantines; the pair must
                        // earn a fresh run of successes before the next
                        self.probe_successes.insert(key.clone(), 0);
                    }
                    degraded = true;
                    continue;
                }
            };
            // armed wrong-value kill: silently corrupt the answer — the
            // whole point is that only cross-check mode can see it
            let mut value_killed = false;
            if let (Some(KillMode::WrongValue), TierOutcome::Value(v)) = (kill, outcome) {
                outcome = TierOutcome::Value(v ^ 0xBAD_F00D);
                value_killed = true;
            }
            if self.cross_check && tier != Tier::Interp {
                let expected = match &oracle {
                    Some(o) => *o,
                    None => match self.oracle_outcome(entry, args) {
                        Some(o) => *oracle.insert(o),
                        // the oracle itself failed: nothing to compare
                        // against, serve the tier's answer as-is
                        None => outcome,
                    },
                };
                if outcome != expected {
                    incidents_this_run += 1;
                    self.record_fault(
                        tier,
                        entry,
                        IncidentCause::Divergence { expected, got: outcome },
                        value_killed,
                        probing,
                    );
                    if probing {
                        self.probe_successes.insert(key.clone(), 0);
                    }
                    degraded = true;
                    continue;
                }
            }
            self.counters[tier.index()].served += 1;
            if probing {
                // the probe passed: lift the quarantine, forget the
                // fault history, and log the recovery
                let retries = *self.fault_counts.get(&key).unwrap_or(&0);
                let successes = self.probe_successes.remove(&key).unwrap_or(0);
                self.quarantine.remove(&key);
                self.fault_counts.remove(&key);
                self.log.push(Incident {
                    seq: 0, // assigned by the log
                    tier,
                    function: entry.to_string(),
                    cause: IncidentCause::ProbeRecovered { successes },
                    recovery: RecoveryAction::Restored(tier),
                    retries,
                    injected: false,
                    probe: true,
                });
            }
            // a served call is progress toward probing this function's
            // (remaining) quarantined pairs
            if self.probe_after.is_some() {
                let waiting: Vec<(String, Tier)> = self
                    .quarantine
                    .iter()
                    .filter(|(f, _)| f == entry)
                    .cloned()
                    .collect();
                for pair in waiting {
                    *self.probe_successes.entry(pair).or_insert(0) += 1;
                }
            }
            return Ok(SupervisedRun { outcome, tier, degraded, steps });
        }
        Err(SupervisorError::TiersExhausted {
            function: entry.to_string(),
            incidents: incidents_this_run,
        })
    }

    /// Records a fault: bumps the per-pair count, quarantines at the
    /// threshold, and appends the [`Incident`] with its recovery action
    /// (the next rung that will actually be attempted).
    fn record_fault(
        &mut self,
        tier: Tier,
        entry: &str,
        cause: IncidentCause,
        injected: bool,
        probe: bool,
    ) {
        let counters = &mut self.counters[tier.index()];
        match &cause {
            IncidentCause::Panic(_) => counters.panics += 1,
            IncidentCause::Fault(_) => counters.faults += 1,
            IncidentCause::Watchdog { .. } => counters.watchdog_expiries += 1,
            IncidentCause::Divergence { .. } => counters.divergences += 1,
            IncidentCause::ProbeRecovered { .. } => {
                unreachable!("probe recoveries are logged directly, not as faults")
            }
        }
        let key = (entry.to_string(), tier);
        let retries = *self.fault_counts.get(&key).unwrap_or(&0);
        let count = retries + 1;
        self.fault_counts.insert(key.clone(), count);
        if count >= self.max_faults {
            self.quarantine.insert(key);
        }
        let recovery = Tier::LADDER
            .iter()
            .skip(tier.index() + 1)
            .find(|&&next| !self.quarantine.contains(&(entry.to_string(), next)))
            .map_or(RecoveryAction::Exhausted, |&next| {
                RecoveryAction::FellBack(next)
            });
        self.log.push(Incident {
            seq: 0, // assigned by the log
            tier,
            function: entry.to_string(),
            cause,
            recovery,
            retries,
            injected,
            probe,
        });
    }

    /// Runs the structural interpreter as the cross-check oracle (full
    /// fuel, fresh state). `None` if the oracle itself panicked — which
    /// would be a bug in the semantic reference, not in a fast tier.
    fn oracle_outcome(&self, entry: &str, args: &[u64]) -> Option<TierOutcome> {
        let module = &self.module;
        let (fuel, mem) = (self.fuel, self.memory_size);
        catch_quiet(|| {
            let mut interp = Interpreter::with_memory_size(module, mem);
            interp.set_fuel(fuel);
            interp.run(entry, args)
        })
        .ok()
        .map(|r| match r {
            Ok(v) => TierOutcome::Value(v),
            Err(InterpError::Trap(t)) => TierOutcome::Trap(t.kind),
            _ => TierOutcome::OutOfFuel,
        })
    }

    /// Executes one tier under `catch_unwind` with `budget` steps.
    fn execute_tier(
        &mut self,
        tier: Tier,
        entry: &str,
        args: &[u64],
        budget: u64,
        kill: Option<KillMode>,
    ) -> TierRun {
        let watchdog_armed = budget < self.fuel;
        match tier {
            Tier::Translated => {
                let mut mgr = ExecutionManager::with_memory_size(
                    self.module.clone(),
                    self.isa,
                    self.memory_size,
                );
                let cache = self.storage.as_ref().map(|(_, c)| c.clone());
                if let (Some((storage, _)), Some(cache)) = (self.storage.take(), &cache) {
                    mgr.set_storage(storage, cache);
                }
                if let Some(image) = &self.image {
                    mgr.set_image(image.clone());
                }
                mgr.set_fuel(budget);
                let result = catch_quiet(AssertUnwindSafe(|| {
                    if kill == Some(KillMode::Panic) {
                        panic!("injected tier kill: translated");
                    }
                    mgr.run(entry, args)
                }));
                // the manager survives the closure, so the storage comes
                // back even when the tier panicked mid-run
                if let Some(cache) = cache {
                    if let Some(storage) = mgr.take_storage() {
                        self.storage = Some((storage, cache));
                    }
                }
                let steps = mgr.exec_stats().instructions;
                self.translation.merge(&mgr.stats());
                match result {
                    Ok(Ok(out)) => TierRun::Done(TierOutcome::Value(out.value), steps),
                    Ok(Err(EngineError::Trapped(t))) => {
                        TierRun::Done(TierOutcome::Trap(t.kind), steps)
                    }
                    Ok(Err(EngineError::OutOfFuel)) => {
                        if watchdog_armed {
                            TierRun::Fault(IncidentCause::Watchdog { budget })
                        } else {
                            TierRun::Done(TierOutcome::OutOfFuel, steps)
                        }
                    }
                    Ok(Err(e)) => TierRun::Fault(IncidentCause::Fault(e.to_string())),
                    Err(msg) => TierRun::Fault(IncidentCause::Panic(msg)),
                }
            }
            Tier::Traced | Tier::FastInterp => {
                let module = &self.module;
                let mem = self.memory_size;
                let image = self.image.clone();
                let mut steps = 0;
                let result = catch_quiet(AssertUnwindSafe(|| {
                    let pre = std::rc::Rc::new(crate::predecode::PreModule::new(module));
                    if let Some(image) = &image {
                        // best-effort warm attach (stamp was verified at
                        // set_image): corrupt sections or records fall
                        // back to lazy SSA lowering
                        let _ = image.attach_loader(&pre);
                    }
                    let mut interp = FastInterpreter::with_predecoded_memory(pre, mem);
                    interp.set_fuel(budget);
                    if tier == Tier::Traced {
                        interp.enable_tracing(TraceConfig::default());
                    }
                    if kill == Some(KillMode::Panic) {
                        // the kill disarms trace entry, so the injected
                        // fault fires deterministically in the general
                        // dispatch loop regardless of trace state
                        interp.arm_panic_after(KILL_AFTER_INSTS);
                    }
                    let r = interp.run(entry, args);
                    (r, interp.insts_executed())
                }));
                if let Ok((_, n)) = &result {
                    steps = *n;
                }
                Supervisor::map_interp(result.map(|(r, _)| r), watchdog_armed, budget, steps)
            }
            Tier::Interp => {
                let module = &self.module;
                let mem = self.memory_size;
                let mut steps = 0;
                let result = catch_quiet(AssertUnwindSafe(|| {
                    let mut interp = Interpreter::with_memory_size(module, mem);
                    interp.set_fuel(budget);
                    if kill == Some(KillMode::Panic) {
                        interp.arm_panic_after(KILL_AFTER_INSTS);
                    }
                    let r = interp.run(entry, args);
                    (r, interp.insts_executed())
                }));
                if let Ok((_, n)) = &result {
                    steps = *n;
                }
                Supervisor::map_interp(result.map(|(r, _)| r), watchdog_armed, budget, steps)
            }
        }
    }

    /// Maps an interpreter tier's result onto [`TierRun`].
    fn map_interp(
        result: Result<Result<u64, InterpError>, String>,
        watchdog_armed: bool,
        budget: u64,
        steps: u64,
    ) -> TierRun {
        match result {
            Ok(Ok(v)) => TierRun::Done(TierOutcome::Value(v), steps),
            Ok(Err(InterpError::Trap(t))) => TierRun::Done(TierOutcome::Trap(t.kind), steps),
            Ok(Err(InterpError::OutOfFuel)) => {
                if watchdog_armed {
                    TierRun::Fault(IncidentCause::Watchdog { budget })
                } else {
                    TierRun::Done(TierOutcome::OutOfFuel, steps)
                }
            }
            Ok(Err(e @ InterpError::NoSuchFunction(_))) => {
                TierRun::Fault(IncidentCause::Fault(e.to_string()))
            }
            Err(msg) => TierRun::Fault(IncidentCause::Panic(msg)),
        }
    }
}

thread_local! {
    /// True while this thread is inside [`catch_quiet`]: the chained
    /// panic hook swallows the report instead of spamming stderr with
    /// backtraces for panics the supervisor recovers from by design.
    static SUPPRESS_PANIC_REPORT: Cell<bool> = const { Cell::new(false) };
}

static INSTALL_QUIET_HOOK: Once = Once::new();

/// `catch_unwind` with the panic report suppressed (thread-locally) and
/// the payload rendered to a `String`. The suppression hook chains the
/// previously installed hook, so other threads' panics still print.
fn catch_quiet<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    INSTALL_QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_REPORT.with(Cell::get) {
                prev(info);
            }
        }));
    });
    SUPPRESS_PANIC_REPORT.with(|s| s.set(true));
    let result = catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_REPORT.with(|s| s.set(false));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIB: &str = r#"
int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}

int %main() {
entry:
    %r = call int %fib(int 10)
    ret int %r
}
"#;

    fn module() -> Module {
        llva_core::parser::parse_module(FIB).expect("parses")
    }

    #[test]
    fn healthy_ladder_serves_from_translated_tier() {
        let mut sup = Supervisor::new(module(), TargetIsa::X86);
        let run = sup.run("main", &[]).expect("runs");
        assert_eq!(run.outcome, TierOutcome::Value(55));
        assert_eq!(run.tier, Tier::Translated);
        assert!(!run.degraded);
        assert!(run.steps > 0);
        assert!(sup.incident_log().is_empty());
        assert_eq!(sup.tier_counters()[Tier::Translated.index()].served, 1);
    }

    #[test]
    fn translated_rung_serves_every_target() {
        // the ladder's fast rung must work for all three back ends,
        // including the RISC-V one
        for isa in TargetIsa::ALL {
            let mut sup = Supervisor::new(module(), isa);
            let run = sup.run("main", &[]).expect("runs");
            assert_eq!(run.outcome, TierOutcome::Value(55), "{isa}");
            assert_eq!(run.tier, Tier::Translated, "{isa}");
            assert!(sup.incident_log().is_empty(), "{isa}");
        }
    }

    #[test]
    fn killed_translated_tier_degrades_on_riscv() {
        let mut sup = Supervisor::new(module(), TargetIsa::Riscv);
        sup.arm_kill(TierKill::panic(Tier::Translated));
        let run = sup.run("main", &[]).expect("degrades");
        assert_eq!(run.outcome, TierOutcome::Value(55));
        assert_eq!(run.tier, Tier::Traced);
        assert!(run.degraded);
        assert!(sup.is_quarantined("main", Tier::Translated));
    }

    #[test]
    fn missing_entry_is_not_a_tier_fault() {
        let mut sup = Supervisor::new(module(), TargetIsa::X86);
        match sup.run("nope", &[]) {
            Err(SupervisorError::NoSuchFunction(n)) => assert_eq!(n, "nope"),
            other => panic!("expected NoSuchFunction, got {other:?}"),
        }
        assert!(sup.incident_log().is_empty(), "no tier ever ran");
    }

    #[test]
    fn killed_translated_tier_degrades_to_traced() {
        let mut sup = Supervisor::new(module(), TargetIsa::Sparc);
        sup.arm_kill(TierKill::panic(Tier::Translated));
        let run = sup.run("main", &[]).expect("degrades");
        assert_eq!(run.outcome, TierOutcome::Value(55));
        assert_eq!(run.tier, Tier::Traced);
        assert!(run.degraded);
        let log = sup.incident_log();
        assert_eq!(log.len(), 1);
        let i = &log.incidents()[0];
        assert_eq!(i.tier, Tier::Translated);
        assert_eq!(i.function, "main");
        assert!(matches!(i.cause, IncidentCause::Panic(_)));
        assert_eq!(i.recovery, RecoveryAction::FellBack(Tier::Traced));
        assert!(i.injected);
        assert!(sup.is_quarantined("main", Tier::Translated));
        // second run: quarantine skip, no new incident
        let run2 = sup.run("main", &[]).expect("runs");
        assert_eq!(run2.outcome, TierOutcome::Value(55));
        assert_eq!(sup.incident_log().len(), 1, "quarantine prevents a re-fault");
        assert_eq!(
            sup.tier_counters()[Tier::Translated.index()].skipped_quarantined,
            1
        );
    }

    #[test]
    fn kills_from_env_parses_tier_lists() {
        // pure parse test via Tier::parse (env mutation would race other
        // tests in this process)
        assert_eq!(Tier::parse("translated"), Some(Tier::Translated));
        assert_eq!(Tier::parse("traced"), Some(Tier::Traced));
        assert_eq!(Tier::parse("traced-interp"), Some(Tier::Traced));
        assert_eq!(Tier::parse("fast-interp"), Some(Tier::FastInterp));
        assert_eq!(Tier::parse("predecode"), Some(Tier::FastInterp));
        assert_eq!(Tier::parse(" interp "), Some(Tier::Interp));
        assert_eq!(Tier::parse("nonsense"), None);
    }

    #[test]
    fn incident_log_ring_buffer_caps_memory_and_counts_drops() {
        let mut sup = Supervisor::new(module(), TargetIsa::X86);
        sup.set_incident_capacity(4);
        // a flapping tier: never quarantine (high max_faults), so every
        // run re-faults and appends a fresh incident
        sup.set_max_faults(u32::MAX);
        sup.arm_kill(TierKill::panic(Tier::Translated));
        for _ in 0..10 {
            sup.run("main", &[]).expect("degrades");
        }
        let log = sup.incident_log();
        assert_eq!(log.len(), 4, "ring buffer keeps exactly the cap");
        assert_eq!(log.capacity(), 4);
        assert_eq!(log.dropped(), 6, "older incidents are dropped, counted");
        assert_eq!(log.total_recorded(), 10);
        // sequence numbers stay monotonic across the drop horizon
        let seqs: Vec<u64> = log.incidents().iter().map(|i| i.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert!(log.summary().contains("6 older dropped"), "{}", log.summary());
        // shrinking the cap trims the oldest retained incidents
        sup.set_incident_capacity(2);
        let log = sup.incident_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 8);
        assert_eq!(log.incidents()[0].seq, 8);
    }

    #[test]
    fn quarantine_probe_restores_a_recovered_tier() {
        let mut sup = Supervisor::new(module(), TargetIsa::X86);
        sup.set_probe_after(3);
        sup.arm_kill(TierKill::panic(Tier::Translated));
        // fault + quarantine
        let run = sup.run("main", &[]).expect("degrades");
        assert_eq!(run.tier, Tier::Traced);
        assert!(sup.is_quarantined("main", Tier::Translated));
        // the "bug" goes away (e.g. transient storage corruption healed)
        sup.clear_kills();
        // the degraded first run already banked one lower-tier success;
        // two more are needed before the probe is due
        for _ in 0..2 {
            let r = sup.run("main", &[]).expect("runs");
            assert_eq!(r.tier, Tier::Traced, "still quarantined, no probe yet");
        }
        // three successes banked: this run re-attempts translated,
        // succeeds, and restores it
        let r = sup.run("main", &[]).expect("probe run");
        assert_eq!(r.tier, Tier::Translated, "probe serves from the restored tier");
        assert_eq!(r.outcome, TierOutcome::Value(55));
        assert!(!sup.is_quarantined("main", Tier::Translated));
        assert_eq!(sup.tier_counters()[Tier::Translated.index()].probes, 1);
        // the probe outcome is a logged incident
        let last = sup.incident_log().incidents().last().expect("incident");
        assert!(last.probe);
        assert!(matches!(last.cause, IncidentCause::ProbeRecovered { successes: 3 }));
        assert_eq!(last.recovery, RecoveryAction::Restored(Tier::Translated));
        // and the tier keeps serving afterwards without new incidents
        let n = sup.incident_log().total_recorded();
        let r = sup.run("main", &[]).expect("runs");
        assert_eq!(r.tier, Tier::Translated);
        assert_eq!(sup.incident_log().total_recorded(), n);
    }

    #[test]
    fn failed_quarantine_probe_requarantines_and_rearms() {
        let mut sup = Supervisor::new(module(), TargetIsa::X86);
        sup.set_probe_after(2);
        sup.arm_kill(TierKill::panic(Tier::Translated));
        sup.run("main", &[]).expect("degrades");
        assert!(sup.is_quarantined("main", Tier::Translated));
        // the degraded run banked success #1; one more banks #2
        sup.run("main", &[]).expect("runs");
        let before = sup.incident_log().total_recorded();
        // the kill stays armed: the probe must fail
        let r = sup.run("main", &[]).expect("probe fails, ladder degrades");
        assert_eq!(r.tier, Tier::Traced);
        assert!(sup.is_quarantined("main", Tier::Translated), "re-quarantined");
        let log = sup.incident_log();
        assert_eq!(log.total_recorded(), before + 1, "the failed probe is logged");
        let last = log.incidents().last().expect("incident");
        assert!(last.probe, "the fault incident is marked as a probe");
        assert!(matches!(last.cause, IncidentCause::Panic(_)));
        // the success counter reset: the very next run must not probe
        let probes_before = sup.tier_counters()[Tier::Translated.index()].probes;
        sup.run("main", &[]).expect("runs");
        assert_eq!(
            sup.tier_counters()[Tier::Translated.index()].probes,
            probes_before,
            "a failed probe re-arms only after fresh successes"
        );
    }

    #[test]
    fn incident_log_renders_tier_and_cause() {
        let mut sup = Supervisor::new(module(), TargetIsa::X86);
        sup.arm_kill(TierKill::panic(Tier::Translated));
        sup.run("main", &[]).expect("degrades");
        let text = sup.incident_log().summary();
        assert!(text.contains("translated"), "{text}");
        assert!(text.contains("panic"), "{text}");
        let line = sup.incident_log().incidents()[0].to_string();
        assert!(line.contains("fell back to traced"), "{line}");
    }
}
