//! The minic abstract syntax tree.
//!
//! minic is the reproduction's stand-in for the paper's GCC-based C
//! front end (DESIGN.md substitution #2): a small C-like language that
//! lowers to LLVA with exactly the patterns §3.1 describes — typed
//! `getelementptr` for indexing, `alloca` for locals, explicit
//! comparisons, and intrinsic calls for the runtime services.

use std::fmt;

/// A minic type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CType {
    /// `void` (function returns only).
    Void,
    /// `char` — signed 8-bit.
    Char,
    /// `int` — signed 32-bit.
    Int,
    /// `uint` — unsigned 32-bit.
    Uint,
    /// `long` — signed 64-bit.
    Long,
    /// `ulong` — unsigned 64-bit.
    Ulong,
    /// `float` — 32-bit IEEE.
    Float,
    /// `double` — 64-bit IEEE.
    Double,
    /// `T*`.
    Ptr(Box<CType>),
    /// `T name[N]`.
    Array(Box<CType>, u64),
    /// `struct Name`.
    Struct(String),
    /// A function pointer: `ret (*)(params)`.
    FnPtr(Box<CType>, Vec<CType>),
}

impl CType {
    /// Whether this is one of the integer types (including `char`).
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            CType::Char | CType::Int | CType::Uint | CType::Long | CType::Ulong
        )
    }

    /// Whether this is `float` or `double`.
    pub fn is_float(&self) -> bool {
        matches!(self, CType::Float | CType::Double)
    }

    /// Whether this is a pointer (or array, which decays).
    pub fn is_pointer_like(&self) -> bool {
        matches!(self, CType::Ptr(_) | CType::Array(..) | CType::FnPtr(..))
    }

    /// Whether the type is signed (for promotion decisions).
    pub fn is_signed(&self) -> bool {
        matches!(
            self,
            CType::Char | CType::Int | CType::Long | CType::Float | CType::Double
        )
    }

    /// Conversion rank for the usual arithmetic conversions.
    pub fn rank(&self) -> u8 {
        match self {
            CType::Char => 1,
            CType::Int => 2,
            CType::Uint => 3,
            CType::Long => 4,
            CType::Ulong => 5,
            CType::Float => 6,
            CType::Double => 7,
            _ => 0,
        }
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CType::Void => f.write_str("void"),
            CType::Char => f.write_str("char"),
            CType::Int => f.write_str("int"),
            CType::Uint => f.write_str("uint"),
            CType::Long => f.write_str("long"),
            CType::Ulong => f.write_str("ulong"),
            CType::Float => f.write_str("float"),
            CType::Double => f.write_str("double"),
            CType::Ptr(t) => write!(f, "{t}*"),
            CType::Array(t, n) => write!(f, "{t}[{n}]"),
            CType::Struct(n) => write!(f, "struct {n}"),
            CType::FnPtr(r, ps) => {
                let inner: Vec<String> = ps.iter().map(ToString::to_string).collect();
                write!(f, "{r} (*)({})", inner.join(", "))
            }
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LAnd,
    /// `||` (short-circuit)
    LOr,
}

impl BinOp {
    /// Whether the result is boolean-ish (`int` 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
    /// `*`
    Deref,
    /// `&`
    Addr,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Character literal.
    Char(u8),
    /// String literal (NUL-terminated at codegen).
    Str(Vec<u8>),
    /// Variable or function reference.
    Ident(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Assignment `lhs = rhs` (value is rhs).
    Assign(Box<Expr>, Box<Expr>),
    /// Call: callee expression (name or fn-pointer variable) + args.
    Call(Box<Expr>, Vec<Expr>),
    /// `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `a.f`.
    Member(Box<Expr>, String),
    /// `a->f`.
    Arrow(Box<Expr>, String),
    /// `(T)e`.
    Cast(CType, Box<Expr>),
    /// `sizeof(T)`.
    Sizeof(CType),
    /// `c ? t : e`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `{ ... }`.
    Block(Vec<Stmt>),
    /// Local declaration with optional initializer.
    Decl {
        /// Declared type.
        ty: CType,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if (c) then [else e]`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (c) body`.
    While(Expr, Box<Stmt>),
    /// `for (init; cond; step) body` (any part optional).
    For(
        Option<Box<Stmt>>,
        Option<Expr>,
        Option<Expr>,
        Box<Stmt>,
    ),
    /// `return [e];`.
    Return(Option<Expr>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `struct Name { ... };`
    StructDef {
        /// Struct tag.
        name: String,
        /// Ordered `(type, field name)` pairs.
        fields: Vec<(CType, String)>,
    },
    /// A global variable with an optional constant initializer.
    Global {
        /// Declared type.
        ty: CType,
        /// Name.
        name: String,
        /// Scalar or brace-list initializer.
        init: Option<GlobalInit>,
    },
    /// A function definition.
    Func {
        /// Return type.
        ret: CType,
        /// Name.
        name: String,
        /// Parameters.
        params: Vec<(CType, String)>,
        /// Body.
        body: Vec<Stmt>,
    },
}

/// Initializers allowed on globals (must be compile-time constants).
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// A scalar constant expression (folded at compile time).
    Scalar(Expr),
    /// `{ a, b, c }` for arrays.
    List(Vec<GlobalInit>),
    /// A string literal.
    Str(Vec<u8>),
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}
