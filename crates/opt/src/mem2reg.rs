//! `mem2reg`: promote `alloca` slots to SSA registers.
//!
//! Front ends lower every address-taken or mutable local to an `alloca`
//! plus loads/stores (paper §3.2 and Figure 2: `%V = alloca double`).
//! This pass rebuilds the SSA form the V-ISA is designed around, placing
//! `phi` instructions at iterated dominance frontiers (Cytron et al.) and
//! renaming loads/stores to direct register uses. It is the foundation
//! the paper's "sparse" SSA optimizations stand on.

use crate::pass::ModulePass;
use llva_core::dominators::DomTree;
use llva_core::function::{BlockId, Function};
use llva_core::instruction::{InstId, Instruction, Opcode};
use llva_core::module::Module;
use llva_core::types::TypeId;
use llva_core::value::{Constant, ValueId};
use std::collections::{HashMap, HashSet};

/// The promotion pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mem2Reg {
    promoted: usize,
}

impl Mem2Reg {
    /// Creates the pass.
    pub fn new() -> Mem2Reg {
        Mem2Reg::default()
    }

    /// Number of allocas promoted by the last run.
    pub fn promoted(&self) -> usize {
        self.promoted
    }
}

impl ModulePass for Mem2Reg {
    fn name(&self) -> &'static str {
        "mem2reg"
    }

    fn run(&mut self, module: &mut Module) -> bool {
        self.promoted = 0;
        let void = module.types_mut().void();
        for fid in module.function_ids() {
            if module.function(fid).is_declaration() {
                continue;
            }
            let candidates = find_candidates(module, fid);
            if candidates.is_empty() {
                continue;
            }
            self.promoted += promote_function(module.function_mut(fid), candidates, void);
        }
        self.promoted > 0
    }
}

/// One promotable alloca and its loads/stores.
struct Candidate {
    alloca: InstId,
    slot: ValueId,
    pointee: TypeId,
    stores: Vec<InstId>,
}

fn promote_function(func: &mut Function, candidates: Vec<Candidate>, void: TypeId) -> usize {
    let dom = DomTree::compute(func);
    let preds = func.predecessors();

    // Phi placement at iterated dominance frontiers of store blocks.
    // phi_of[(block, cand_index)] -> phi InstId
    let mut phi_of: HashMap<(BlockId, usize), InstId> = HashMap::new();
    for (ci, cand) in candidates.iter().enumerate() {
        let mut work: Vec<BlockId> = cand
            .stores
            .iter()
            .filter_map(|&s| func.inst_parent(s))
            .collect();
        let mut placed: HashSet<BlockId> = HashSet::new();
        let mut on_work: HashSet<BlockId> = work.iter().copied().collect();
        while let Some(b) = work.pop() {
            for &df in dom.frontier(b) {
                if placed.contains(&df) {
                    continue;
                }
                placed.insert(df);
                // Insert a phi with one incoming (undef placeholder) per
                // predecessor; filled during renaming.
                let block_preds = preds.get(&df).cloned().unwrap_or_default();
                let undef = func.constant(Constant::Undef(cand.pointee));
                let operands = vec![undef; block_preds.len()];
                let inst = Instruction::new(Opcode::Phi, cand.pointee, operands, block_preds);
                let (phi_id, _) = func.insert_inst_at(df, 0, inst, void);
                phi_of.insert((df, ci), phi_id);
                if !on_work.contains(&df) {
                    on_work.insert(df);
                    work.push(df);
                }
            }
        }
    }

    // Renaming: iterative DFS over the dominator tree.
    let n = candidates.len();
    let mut stacks: Vec<Vec<ValueId>> = vec![Vec::new(); n];
    let slot_of: HashMap<ValueId, usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (c.slot, i))
        .collect();
    let mut to_remove: Vec<InstId> = Vec::new();

    enum Action {
        Visit(BlockId),
        Pop(Vec<(usize, usize)>), // (cand, how many pushes) to undo
    }
    let entry = func.entry_block();
    let mut agenda = vec![Action::Visit(entry)];
    while let Some(action) = agenda.pop() {
        match action {
            Action::Pop(pushes) => {
                for (ci, count) in pushes {
                    for _ in 0..count {
                        stacks[ci].pop();
                    }
                }
            }
            Action::Visit(block) => {
                let mut pushes: Vec<(usize, usize)> = Vec::new();
                let insts: Vec<InstId> = func.block(block).insts().to_vec();
                for inst_id in insts {
                    let opcode = func.inst(inst_id).opcode();
                    match opcode {
                        Opcode::Phi => {
                            if let Some(&ci) = phi_of
                                .iter()
                                .find(|(&(b, _), &p)| b == block && p == inst_id)
                                .map(|((_, ci), _)| ci)
                            {
                                let v = func.inst_result(inst_id).expect("phi has a result");
                                stacks[ci].push(v);
                                pushes.push((ci, 1));
                            }
                        }
                        Opcode::Store => {
                            let ops = func.inst(inst_id).operands().to_vec();
                            if let Some(&ci) = slot_of.get(&ops[1]) {
                                stacks[ci].push(ops[0]);
                                pushes.push((ci, 1));
                                to_remove.push(inst_id);
                            }
                        }
                        Opcode::Load => {
                            let ptr = func.inst(inst_id).operands()[0];
                            if let Some(&ci) = slot_of.get(&ptr) {
                                let current = stacks[ci].last().copied().unwrap_or_else(|| {
                                    func.constant(Constant::Undef(candidates[ci].pointee))
                                });
                                let result =
                                    func.inst_result(inst_id).expect("load has a result");
                                func.replace_all_uses(result, current);
                                to_remove.push(inst_id);
                            }
                        }
                        _ => {}
                    }
                }
                // Fill phi incomings in CFG successors.
                for succ in func.successors(block) {
                    for ci in 0..n {
                        if let Some(&phi_id) = phi_of.get(&(succ, ci)) {
                            let current = stacks[ci].last().copied().unwrap_or_else(|| {
                                func.constant(Constant::Undef(candidates[ci].pointee))
                            });
                            let inst = func.inst(phi_id);
                            let idx = inst
                                .block_operands()
                                .iter()
                                .position(|&b| b == block)
                                .expect("edge recorded in phi");
                            func.inst_mut(phi_id).operands_mut()[idx] = current;
                        }
                    }
                }
                // Recurse into dominator-tree children.
                agenda.push(Action::Pop(pushes));
                for &child in dom.children(block) {
                    agenda.push(Action::Visit(child));
                }
            }
        }
    }

    for inst in to_remove {
        func.remove_inst(inst);
    }
    for cand in &candidates {
        func.remove_inst(cand.alloca);
    }
    candidates.len()
}

fn find_candidates(module: &Module, fid: llva_core::module::FuncId) -> Vec<Candidate> {
    let func = module.function(fid);
    // Collect allocas and every use of their result values.
    let mut allocas: Vec<(InstId, ValueId, TypeId)> = Vec::new();
    for (_, inst_id) in func.inst_iter() {
        let inst = func.inst(inst_id);
        if inst.opcode() == Opcode::Alloca && inst.operands().is_empty() {
            if let Some(v) = func.inst_result(inst_id) {
                allocas.push((inst_id, v, inst.result_type()));
            }
        }
    }
    let mut out = Vec::new();
    'next: for (alloca, slot, ptr_ty) in allocas {
        let mut stores = Vec::new();
        for (_, use_id) in func.inst_iter() {
            let inst = func.inst(use_id);
            for (oi, &op) in inst.operands().iter().enumerate() {
                if op != slot {
                    continue;
                }
                match inst.opcode() {
                    Opcode::Load => {}
                    Opcode::Store if oi == 1 => stores.push(use_id),
                    _ => continue 'next, // address escapes
                }
            }
        }
        let Some(pointee) = module.types().pointee(ptr_ty) else {
            continue;
        };
        if !module.types().is_scalar(pointee) {
            continue;
        }
        out.push(Candidate {
            alloca,
            slot,
            pointee,
            stores,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassManager;
    use llva_core::builder::FunctionBuilder;
    use llva_core::layout::TargetConfig;
    use llva_core::verifier::verify_module;

    fn build_if_else() -> (Module, llva_core::module::FuncId) {
        // int f(int x) { int v; if (x > 0) v = 1; else v = 2; return v; }
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let t = b.block("t");
        let e = b.block("e");
        let join = b.block("join");
        b.switch_to(entry);
        let x = b.func().args()[0];
        let slot = b.alloca(int);
        let zero = b.iconst(int, 0);
        let c = b.setgt(x, zero);
        b.cond_br(c, t, e);
        b.switch_to(t);
        let one = b.iconst(int, 1);
        b.store(one, slot);
        b.br(join);
        b.switch_to(e);
        let two = b.iconst(int, 2);
        b.store(two, slot);
        b.br(join);
        b.switch_to(join);
        let v = b.load(slot);
        b.ret(Some(v));
        (m, f)
    }

    #[test]
    fn promotes_if_else_to_phi() {
        let (mut m, f) = build_if_else();
        let mut pm = PassManager::new();
        pm.add(Mem2Reg::new()).verify_after_each(true);
        let stats = pm.run(&mut m);
        assert!(stats[0].changed);
        verify_module(&m).expect("verifies");
        let func = m.function(f);
        // no more alloca/load/store
        for (_, i) in func.inst_iter() {
            assert!(!matches!(
                func.inst(i).opcode(),
                Opcode::Alloca | Opcode::Load | Opcode::Store
            ));
        }
        // a phi was introduced in join
        let has_phi = func
            .inst_iter()
            .any(|(_, i)| func.inst(i).opcode() == Opcode::Phi);
        assert!(has_phi);
    }

    #[test]
    fn load_before_store_yields_undef() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let slot = b.alloca(int);
        let v = b.load(slot);
        b.ret(Some(v));
        let mut pass = Mem2Reg::new();
        assert!(pass.run(&mut m));
        verify_module(&m).expect("verifies");
        let func = m.function(f);
        let entry = func.entry_block();
        let ret = func.block(entry).insts()[0];
        assert_eq!(func.inst(ret).opcode(), Opcode::Ret);
        let op = func.inst(ret).operands()[0];
        assert!(matches!(
            func.value_as_const(op),
            Some(Constant::Undef(_))
        ));
    }

    #[test]
    fn escaped_alloca_not_promoted() {
        // address passed to a call -> must stay in memory
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let intp = m.types_mut().pointer_to(int);
        let void = m.types_mut().void();
        let callee = m.add_function("taker", void, vec![intp]);
        let f = m.add_function("f", int, vec![]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let slot = b.alloca(int);
        b.call(callee, vec![slot]);
        let v = b.load(slot);
        b.ret(Some(v));
        let mut pass = Mem2Reg::new();
        assert!(!pass.run(&mut m));
        let func = m.function(f);
        let has_alloca = func
            .inst_iter()
            .any(|(_, i)| func.inst(i).opcode() == Opcode::Alloca);
        assert!(has_alloca, "escaped alloca must survive");
    }

    #[test]
    fn loop_variable_promotion() {
        // int f(int n) { int s = 0; int i = 0; while (i < n) { s += i; i += 1; } return s; }
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        let n = b.func().args()[0];
        let s = b.alloca(int);
        let i = b.alloca(int);
        let zero = b.iconst(int, 0);
        b.store(zero, s);
        b.store(zero, i);
        b.br(header);
        b.switch_to(header);
        let iv = b.load(i);
        let c = b.setlt(iv, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let sv = b.load(s);
        let iv2 = b.load(i);
        let s2 = b.add(sv, iv2);
        b.store(s2, s);
        let one = b.iconst(int, 1);
        let i2 = b.add(iv2, one);
        b.store(i2, i);
        b.br(header);
        b.switch_to(exit);
        let out = b.load(s);
        b.ret(Some(out));

        let mut pass = Mem2Reg::new();
        assert!(pass.run(&mut m));
        assert_eq!(pass.promoted(), 2);
        verify_module(&m).expect("verifies");
        // header should now have phis for both variables
        let func = m.function(f);
        let phis = func
            .block(header)
            .insts()
            .iter()
            .filter(|&&i| func.inst(i).opcode() == Opcode::Phi)
            .count();
        assert_eq!(phis, 2);
    }
}
