//! SSA values and constants.
//!
//! LLVA uses an *infinite, typed register file* in SSA form (paper §3.1).
//! Every register is a [`ValueId`] owned by its function; a value is either
//! a function argument, the result of an instruction, or a constant.
//! Constants include addresses of globals and functions, which is how
//! direct calls and global accesses are expressed.

use crate::module::{FuncId, GlobalId};
use crate::types::TypeId;
use std::fmt;

/// A handle to an SSA value within a single function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(u32);

impl ValueId {
    /// Raw index into the owning function's value arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a handle from a raw index.
    pub fn from_index(index: usize) -> ValueId {
        ValueId(u32::try_from(index).expect("value index overflow"))
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A compile-time constant value.
///
/// Floating-point payloads are stored as IEEE-754 bit patterns so that
/// constants are `Eq + Hash` (needed for interning, value numbering and
/// `mbr` case tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constant {
    /// A boolean literal.
    Bool(bool),
    /// An integer literal of a specific integer type. The payload is the
    /// raw two's-complement bit pattern zero-extended to 64 bits.
    Int {
        /// Integer type (one of the eight integer types).
        ty: TypeId,
        /// Bit pattern, zero-extended.
        bits: u64,
    },
    /// A floating-point literal. For `float` the payload is the `f32` bit
    /// pattern in the low 32 bits; for `double` the full `f64` pattern.
    Float {
        /// `float` or `double`.
        ty: TypeId,
        /// IEEE-754 bit pattern.
        bits: u64,
    },
    /// The null pointer of a given pointer type.
    Null(TypeId),
    /// The address of a global variable; the type is the pointer type.
    GlobalAddr {
        /// Which global.
        global: GlobalId,
        /// Pointer-to-value type of the global.
        ty: TypeId,
    },
    /// The address of a function; the type is a pointer to its signature.
    FunctionAddr {
        /// Which function.
        func: FuncId,
        /// Pointer-to-function type.
        ty: TypeId,
    },
    /// An unspecified value of a given type (used by the translator for
    /// padding and by optimizations for dead operands).
    Undef(TypeId),
}

impl Constant {
    /// The type of this constant.
    ///
    /// `Bool` has no stored [`TypeId`]; callers that need one should use
    /// [`TypeTable::bool`](crate::types::TypeTable::bool). For all other
    /// variants the stored type is returned.
    pub fn type_id(&self) -> Option<TypeId> {
        match self {
            Constant::Bool(_) => None,
            Constant::Int { ty, .. }
            | Constant::Float { ty, .. }
            | Constant::Null(ty)
            | Constant::GlobalAddr { ty, .. }
            | Constant::FunctionAddr { ty, .. }
            | Constant::Undef(ty) => Some(*ty),
        }
    }

    /// Interprets an integer constant as `i64` (sign handling is up to the
    /// caller's knowledge of the type). Returns `None` for non-integers.
    pub fn as_int_bits(&self) -> Option<u64> {
        match self {
            Constant::Int { bits, .. } => Some(*bits),
            Constant::Bool(b) => Some(u64::from(*b)),
            _ => None,
        }
    }

    /// Interprets a floating constant as `f64` (widening `float`).
    pub fn as_f64(&self, is_f32: bool) -> Option<f64> {
        match self {
            Constant::Float { bits, .. } => Some(if is_f32 {
                f32::from_bits(*bits as u32) as f64
            } else {
                f64::from_bits(*bits)
            }),
            _ => None,
        }
    }

    /// Whether this is the null pointer constant.
    pub fn is_null(&self) -> bool {
        matches!(self, Constant::Null(_))
    }
}

/// What an SSA value *is*: an argument, an instruction result, or a
/// constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueData {
    /// The `index`-th formal parameter of the function.
    Arg {
        /// Zero-based parameter position.
        index: u32,
        /// Declared parameter type.
        ty: TypeId,
    },
    /// The result of instruction `inst`.
    Inst {
        /// Defining instruction.
        inst: crate::instruction::InstId,
        /// Result type.
        ty: TypeId,
    },
    /// A constant.
    Const(Constant),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeTable;

    #[test]
    fn constant_type_ids() {
        let mut tt = TypeTable::new();
        let int = tt.int();
        let c = Constant::Int { ty: int, bits: 42 };
        assert_eq!(c.type_id(), Some(int));
        assert_eq!(c.as_int_bits(), Some(42));
        assert_eq!(Constant::Bool(true).type_id(), None);
        assert_eq!(Constant::Bool(true).as_int_bits(), Some(1));
    }

    #[test]
    fn float_round_trip() {
        let mut tt = TypeTable::new();
        let f32t = tt.float();
        let f64t = tt.double();
        let cf = Constant::Float {
            ty: f32t,
            bits: 1.5f32.to_bits() as u64,
        };
        let cd = Constant::Float {
            ty: f64t,
            bits: 2.25f64.to_bits(),
        };
        assert_eq!(cf.as_f64(true), Some(1.5));
        assert_eq!(cd.as_f64(false), Some(2.25));
    }

    #[test]
    fn null_detection() {
        let mut tt = TypeTable::new();
        let int = tt.int();
        let p = tt.pointer_to(int);
        assert!(Constant::Null(p).is_null());
        assert!(!Constant::Int { ty: int, bits: 0 }.is_null());
    }
}
