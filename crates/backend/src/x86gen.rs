//! The IA-32 code generator.
//!
//! The paper's x86 back end "performs virtually no optimization and
//! very simple register allocation resulting in significant spill
//! code" (§5.2). That translator is preserved as
//! [`compile_x86_naive`] — every SSA value homed in a stack slot —
//! because Table 2's spill-code numbers are measured against it. The
//! default path now uses the same use-count linear-scan register
//! assignment as the SPARC back end, scaled down to IA-32's three
//! callee-saved registers (EBX/ESI/EDI): the hottest integer values
//! live in registers, everything else still spills. Arithmetic still
//! computes in EAX/ECX/EDX (memory-operand forms used where the ISA
//! allows), so the caller-clobbered scratch set never overlaps the
//! allocator's home set.
//!
//! Frame discipline: `push ebp; mov ebp, esp; sub esp, frame`.
//! Incoming arguments live where the caller pushed them
//! (`[ebp + 8 + 8i]`) unless promoted to a register; spill slots, phi
//! staging slots, preallocated `alloca`s and the callee-saved register
//! save area live at negative `ebp` offsets. A value has exactly one
//! home — a register *or* one slot — and fused compares have none,
//! which is what the exhaustive frame-layout test pins down (the old
//! accounting gave every instruction result a slot whether or not it
//! could ever be materialized).
//!
//! `phi` nodes are eliminated by copies in predecessor blocks (paper
//! §3.1), routed through staging slots so parallel phi semantics are
//! preserved.

use crate::common::{
    access_of, canonical_const, classify, fused_compares, inst_defining, intrinsic_target,
    use_counts, ValClass,
};
use llva_core::function::{BlockId, Function};
use llva_core::instruction::{InstId, Opcode};
use llva_core::module::{FuncId, Module};
use llva_core::types::{TypeId, TypeKind};
use llva_core::value::{Constant, ValueId};
use llva_machine::common::{Sym, Width};
use llva_machine::x86::{AluOp, Cond, Fpr, Gpr, MemOp, Norm, X86Inst};
use std::collections::{HashMap, HashSet};

/// Compiles one function to x86 code. The module must verify.
pub fn compile_x86(module: &Module, fid: FuncId) -> Vec<X86Inst> {
    compile_x86_with(module, fid, &crate::peephole::PeepholeConfig::from_env())
}

/// [`compile_x86`] with an explicit peephole configuration (used by
/// the conformance oracle's off-vs-on stages and perf-smoke deltas).
pub fn compile_x86_with(
    module: &Module,
    fid: FuncId,
    peep: &crate::peephole::PeepholeConfig,
) -> Vec<X86Inst> {
    let func = module.function(fid);
    assert!(!func.is_declaration(), "cannot compile a declaration");
    let mut cg = CodeGen::new(module, func, false);
    cg.run();
    crate::peephole::run_x86(cg.finish(), peep)
}

/// The paper-faithful translator: every value slot-homed, no peephole.
/// Kept as the baseline for Table 2 spill-count deltas.
pub fn compile_x86_naive(module: &Module, fid: FuncId) -> Vec<X86Inst> {
    let func = module.function(fid);
    assert!(!func.is_declaration(), "cannot compile a declaration");
    let mut cg = CodeGen::new(module, func, true);
    cg.run();
    cg.finish()
}

const EAX: Gpr = Gpr::Eax;
const ECX: Gpr = Gpr::Ecx;
const EDX: Gpr = Gpr::Edx;
const F0: Fpr = Fpr(0);
const F1: Fpr = Fpr(1);

/// Allocatable callee-saved registers.
const ALLOCATABLE: [Gpr; 3] = [Gpr::Ebx, Gpr::Esi, Gpr::Edi];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(Gpr),
    Slot(MemOp),
}

struct CodeGen<'a> {
    module: &'a Module,
    func: &'a Function,
    code: Vec<X86Inst>,
    locs: HashMap<ValueId, Loc>,
    staging: HashMap<InstId, MemOp>,
    alloca_home: HashMap<InstId, i32>,
    save_slots: HashMap<Gpr, MemOp>,
    used_saved: Vec<Gpr>,
    frame_size: i32,
    fused: HashSet<InstId>,
    block_starts: HashMap<BlockId, u32>,
    fixups: Vec<(usize, BlockId)>,
    bool_ty: TypeId,
    naive: bool,
}

impl<'a> CodeGen<'a> {
    fn new(module: &'a Module, func: &'a Function, naive: bool) -> CodeGen<'a> {
        let bool_ty = module
            .types()
            .iter()
            .find_map(|(id, k)| matches!(k, TypeKind::Bool).then_some(id))
            .unwrap_or_else(|| TypeId::from_index((u32::MAX - 1) as usize));
        let mut cg = CodeGen {
            module,
            func,
            code: Vec::new(),
            locs: HashMap::new(),
            staging: HashMap::new(),
            alloca_home: HashMap::new(),
            save_slots: HashMap::new(),
            used_saved: Vec::new(),
            frame_size: 0,
            fused: fused_compares(func),
            block_starts: HashMap::new(),
            fixups: Vec::new(),
            bool_ty,
            naive,
        };
        cg.assign_frame();
        cg
    }

    fn new_slot(&mut self) -> MemOp {
        self.frame_size += 8;
        MemOp {
            base: Gpr::Ebp,
            disp: -self.frame_size,
        }
    }

    fn assign_frame(&mut self) {
        // Linear scan: the hottest integer values get the callee-saved
        // registers; each promoted register is saved once in the frame.
        if !self.naive {
            // Promotion must pay for its fixed overhead: each promoted
            // register costs a save + restore pair per activation (and
            // an extra arg-homing load for arguments), so a value is a
            // candidate only when the memory traffic it avoids — one
            // access per use, plus one for the eliminated result store
            // — strictly exceeds that cost. Call-heavy code with
            // single-use values (fib) therefore promotes nothing and
            // keeps the naive translator's instruction counts.
            let counts = use_counts(self.func);
            let mut candidates: Vec<(usize, ValueId)> = Vec::new();
            for &a in self.func.args() {
                let uses = counts.get(&a).copied().unwrap_or(0);
                if uses >= 4
                    && classify(self.module, self.func.value_type(a, self.bool_ty))
                        == ValClass::Int
                {
                    candidates.push((uses + 1, a));
                }
            }
            for (_, inst_id) in self.func.inst_iter() {
                if self.fused.contains(&inst_id) {
                    continue; // never materialized — no home at all
                }
                if let Some(r) = self.func.inst_result(inst_id) {
                    let uses = counts.get(&r).copied().unwrap_or(0);
                    if uses >= 2
                        && classify(self.module, self.func.value_type(r, self.bool_ty))
                            == ValClass::Int
                    {
                        candidates.push((uses, r));
                    }
                }
            }
            candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            for ((_, v), &reg) in candidates.iter().zip(ALLOCATABLE.iter()) {
                self.locs.insert(*v, Loc::Reg(reg));
                if !self.used_saved.contains(&reg) {
                    self.used_saved.push(reg);
                    let slot = self.new_slot();
                    self.save_slots.insert(reg, slot);
                }
            }
        }
        // arguments not promoted live where the caller pushed them
        for (i, &a) in self.func.args().to_vec().iter().enumerate() {
            self.locs.entry(a).or_insert(Loc::Slot(MemOp {
                base: Gpr::Ebp,
                disp: 8 + 8 * i as i32,
            }));
        }
        for (_, inst_id) in self.func.inst_iter().collect::<Vec<_>>() {
            if let Some(r) = self.func.inst_result(inst_id) {
                // one home per value: skip reg-homed results and (in
                // the allocating mode) fused compares, which are never
                // materialized — the naive path keeps the historical
                // slot-per-result accounting
                let skip = !self.naive && self.fused.contains(&inst_id);
                if !skip && !self.locs.contains_key(&r) {
                    let slot = self.new_slot();
                    self.locs.insert(r, Loc::Slot(slot));
                }
            }
            let inst = self.func.inst(inst_id);
            if inst.opcode() == Opcode::Phi {
                let slot = self.new_slot();
                self.staging.insert(inst_id, slot);
            }
            if inst.opcode() == Opcode::Alloca && inst.operands().is_empty() {
                // paper §3.2: fixed-size allocas are preallocated in the frame
                let pointee = self
                    .module
                    .types()
                    .pointee(inst.result_type())
                    .expect("alloca yields a pointer");
                let size = self.module.target().size_of(self.module.types(), pointee);
                let size = ((size + 7) & !7) as i32;
                self.frame_size += size;
                self.alloca_home.insert(inst_id, -self.frame_size);
            }
        }
    }

    fn vty(&self, v: ValueId) -> TypeId {
        self.func.value_type(v, self.bool_ty)
    }

    fn slot(&self, v: ValueId) -> MemOp {
        match self.locs[&v] {
            Loc::Slot(m) => m,
            Loc::Reg(r) => unreachable!("{v:?} homed in {r:?}, not a slot"),
        }
    }

    /// Emits code to materialize `v` into GPR `r` (a fresh copy — safe
    /// to mutate afterwards).
    fn load_into(&mut self, v: ValueId, r: Gpr) {
        match self.func.value_as_const(v) {
            Some(Constant::GlobalAddr { global, .. }) => {
                self.code
                    .push(X86Inst::MovRSym(r, Sym::Global(global.index() as u32)));
            }
            Some(Constant::FunctionAddr { func, .. }) => {
                self.code
                    .push(X86Inst::MovRSym(r, Sym::Function(func.index() as u32)));
            }
            Some(c) => {
                let bits = canonical_const(self.module, c);
                self.code.push(X86Inst::MovRI(r, bits as i64));
            }
            None => match self.locs[&v] {
                Loc::Reg(home) => self.code.push(X86Inst::MovRR(r, home)),
                Loc::Slot(mem) => self.code.push(X86Inst::Load {
                    dst: r,
                    mem,
                    width: Width::B8,
                    signed: false,
                }),
            },
        }
    }

    /// A register holding `v`, read-only: the home register when it
    /// has one, otherwise materialized into `scratch`. Callers must
    /// not mutate the result.
    fn reg_source(&mut self, v: ValueId, scratch: Gpr) -> Gpr {
        if self.func.value_as_const(v).is_none() {
            if let Loc::Reg(home) = self.locs[&v] {
                return home;
            }
        }
        self.load_into(v, scratch);
        scratch
    }

    /// Emits code to materialize a float value into `f`.
    fn fload_into(&mut self, v: ValueId, f: Fpr) {
        match self.func.value_as_const(v) {
            Some(c) => {
                let bits = canonical_const(self.module, c);
                self.code.push(X86Inst::MovRI(EAX, bits as i64));
                self.code.push(X86Inst::MovFG(f, EAX));
            }
            None => {
                let mem = self.slot(v);
                self.code.push(X86Inst::FLoad {
                    dst: f,
                    mem,
                    is32: false,
                });
            }
        }
    }

    /// The register an int-result instruction should compute into: the
    /// value's home register when it has one (no store needed after),
    /// otherwise the given scratch.
    fn int_dst(&mut self, inst: InstId, scratch: Gpr) -> Gpr {
        let v = self.func.inst_result(inst).expect("has a result");
        match self.locs[&v] {
            Loc::Reg(home) => home,
            Loc::Slot(_) => scratch,
        }
    }

    /// Completes an int result computed into `r`: a no-op when `r` is
    /// already the value's home register, a spill store otherwise.
    fn finish_int(&mut self, inst: InstId, r: Gpr) {
        let v = self.func.inst_result(inst).expect("has a result");
        match self.locs[&v] {
            Loc::Reg(home) => {
                if home != r {
                    self.code.push(X86Inst::MovRR(home, r));
                }
            }
            Loc::Slot(mem) => self.code.push(X86Inst::Store {
                src: r,
                mem,
                width: Width::B8,
            }),
        }
    }

    fn fstore_result(&mut self, inst: InstId, f: Fpr) {
        let v = self.func.inst_result(inst).expect("has a result");
        let mem = self.slot(v);
        self.code.push(X86Inst::FStore {
            src: f,
            mem,
            is32: false,
        });
    }

    /// An immediate operand if `v` is a non-address constant that fits
    /// in an i32 immediate.
    fn as_imm(&self, v: ValueId) -> Option<i64> {
        match self.func.value_as_const(v) {
            Some(
                c @ (Constant::Int { .. }
                | Constant::Bool(_)
                | Constant::Null(_)
                | Constant::Undef(_)),
            ) => {
                let bits = canonical_const(self.module, c) as i64;
                i32::try_from(bits).ok().map(i64::from)
            }
            _ => None,
        }
    }

    /// A memory-operand form for `v`, when it is slot-homed.
    fn mem_operand(&self, v: ValueId) -> Option<MemOp> {
        if self.func.value_as_const(v).is_some() {
            return None;
        }
        match self.locs[&v] {
            Loc::Slot(m) => Some(m),
            Loc::Reg(_) => None,
        }
    }

    /// The home register of `v`, when it has one.
    fn reg_home(&self, v: ValueId) -> Option<Gpr> {
        if self.func.value_as_const(v).is_some() {
            return None;
        }
        match self.locs[&v] {
            Loc::Reg(r) => Some(r),
            Loc::Slot(_) => None,
        }
    }

    /// The free width normalization real IA-32 arithmetic provides for
    /// 32-bit operands.
    fn norm_of(&self, ty: TypeId) -> Norm {
        let tt = self.module.types();
        match tt.int_bits(ty) {
            Some(32) => {
                if tt.is_signed_integer(ty) {
                    Norm::Sext32
                } else {
                    Norm::Zext32
                }
            }
            _ => Norm::None,
        }
    }

    /// Normalizes `r` for any width including 32 bits (used by casts,
    /// where there is no arithmetic instruction to fold the width into).
    fn normalize_full(&mut self, r: Gpr, ty: TypeId) {
        let tt = self.module.types();
        if let Some(w) = tt.int_bits(ty) {
            if w < 64 {
                let width = Width::from_bytes(u64::from(w.max(8)) / 8);
                if tt.is_signed_integer(ty) {
                    self.code.push(X86Inst::SignExtend(r, width));
                } else {
                    self.code.push(X86Inst::ZeroExtend(r, width));
                }
            }
        }
    }

    /// Normalizes `r` to the canonical representation of `ty` with an
    /// explicit extend — needed only for 8/16-bit types (32-bit widths
    /// are free via [`Norm`], 64-bit needs nothing).
    fn normalize(&mut self, r: Gpr, ty: TypeId) {
        let tt = self.module.types();
        if let Some(w) = tt.int_bits(ty) {
            if w < 32 {
                let width = Width::from_bytes(u64::from(w.max(8)) / 8);
                if tt.is_signed_integer(ty) {
                    self.code.push(X86Inst::SignExtend(r, width));
                } else {
                    self.code.push(X86Inst::ZeroExtend(r, width));
                }
            }
        }
    }

    fn jump(&mut self, target: BlockId) {
        self.fixups.push((self.code.len(), target));
        self.code.push(X86Inst::Jmp(0));
    }

    fn jcc(&mut self, cond: Cond, target: BlockId) {
        self.fixups.push((self.code.len(), target));
        self.code.push(X86Inst::Jcc(cond, 0));
    }

    fn cond_for(&self, op: Opcode, ty: TypeId) -> Cond {
        let tt = self.module.types();
        let signed = tt.is_signed_integer(ty) || tt.is_float(ty);
        match (op, signed) {
            (Opcode::SetEq, _) => Cond::E,
            (Opcode::SetNe, _) => Cond::Ne,
            (Opcode::SetLt, true) => Cond::L,
            (Opcode::SetLt, false) => Cond::B,
            (Opcode::SetGt, true) => Cond::G,
            (Opcode::SetGt, false) => Cond::A,
            (Opcode::SetLe, true) => Cond::Le,
            (Opcode::SetLe, false) => Cond::Be,
            (Opcode::SetGe, true) => Cond::Ge,
            (Opcode::SetGe, false) => Cond::Ae,
            _ => unreachable!("not a comparison"),
        }
    }

    /// Emits the flag-setting compare for a `set*` instruction.
    fn emit_compare_flags(&mut self, inst_id: InstId) {
        let inst = self.func.inst(inst_id);
        let (a, b) = (inst.operands()[0], inst.operands()[1]);
        let ty = self.vty(a);
        match classify(self.module, ty) {
            ValClass::Int => {
                let ra = self.reg_source(a, EAX);
                if let Some(imm) = self.as_imm(b) {
                    self.code.push(X86Inst::CmpRI(ra, imm));
                } else if let Some(mem) = self.mem_operand(b) {
                    self.code.push(X86Inst::CmpRM(ra, mem));
                } else {
                    let rb = self.reg_source(b, ECX);
                    self.code.push(X86Inst::CmpRR(ra, rb));
                }
            }
            ValClass::F32 | ValClass::F64 => {
                let is32 = classify(self.module, ty) == ValClass::F32;
                self.fload_into(a, F0);
                self.fload_into(b, F1);
                self.code.push(X86Inst::FCmp(F0, F1, is32));
            }
        }
    }

    fn run(&mut self) {
        // prologue
        self.code.push(X86Inst::Push(Gpr::Ebp));
        self.code.push(X86Inst::MovRR(Gpr::Ebp, Gpr::Esp));
        let frame = self.frame_size;
        if frame > 0 {
            self.code
                .push(X86Inst::AluRI(AluOp::Sub, Gpr::Esp, i64::from(frame), Norm::None));
        }
        // save promoted callee-saved registers, then home register args
        let saves: Vec<(Gpr, MemOp)> = self
            .used_saved
            .iter()
            .map(|r| (*r, self.save_slots[r]))
            .collect();
        for (r, mem) in &saves {
            self.code.push(X86Inst::Store {
                src: *r,
                mem: *mem,
                width: Width::B8,
            });
        }
        for (i, &a) in self.func.args().to_vec().iter().enumerate() {
            if let Some(Loc::Reg(home)) = self.locs.get(&a).copied() {
                self.code.push(X86Inst::Load {
                    dst: home,
                    mem: MemOp {
                        base: Gpr::Ebp,
                        disp: 8 + 8 * i as i32,
                    },
                    width: Width::B8,
                    signed: false,
                });
            }
        }
        let order = self.func.block_order().to_vec();
        for (bi, &block) in order.iter().enumerate() {
            self.block_starts.insert(block, self.code.len() as u32);
            let next_block = order.get(bi + 1).copied();
            let insts = self.func.block(block).insts().to_vec();
            for &inst_id in &insts {
                self.emit_inst(block, inst_id, next_block);
            }
        }
        // patch branch targets
        for (idx, block) in std::mem::take(&mut self.fixups) {
            let target = self.block_starts[&block];
            match &mut self.code[idx] {
                X86Inst::Jmp(t) | X86Inst::Jcc(_, t) => *t = target,
                X86Inst::CallFn { unwind, .. } | X86Inst::CallIndirect { unwind, .. } => {
                    *unwind = Some(target);
                }
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
    }

    fn finish(self) -> Vec<X86Inst> {
        self.code
    }

    fn emit_epilogue(&mut self) {
        let saves: Vec<(Gpr, MemOp)> = self
            .used_saved
            .iter()
            .map(|r| (*r, self.save_slots[r]))
            .collect();
        for (r, mem) in &saves {
            self.code.push(X86Inst::Load {
                dst: *r,
                mem: *mem,
                width: Width::B8,
                signed: false,
            });
        }
        self.code.push(X86Inst::MovRR(Gpr::Esp, Gpr::Ebp));
        self.code.push(X86Inst::Pop(Gpr::Ebp));
        self.code.push(X86Inst::Ret);
    }

    /// Copies phi incomings of `succ` for the edge `block -> succ` into
    /// the staging slots.
    fn emit_phi_copies(&mut self, block: BlockId, succ: BlockId) {
        let phis: Vec<InstId> = self
            .func
            .block(succ)
            .insts()
            .iter()
            .copied()
            .filter(|&i| self.func.inst(i).opcode() == Opcode::Phi)
            .collect();
        for phi in phis {
            let Some(incoming) = self.func.phi_incoming(phi, block) else {
                continue;
            };
            let stage = self.staging[&phi];
            let r = self.reg_source(incoming, EAX);
            self.code.push(X86Inst::Store {
                src: r,
                mem: stage,
                width: Width::B8,
            });
        }
    }

    fn emit_all_phi_copies(&mut self, block: BlockId) {
        for succ in self.func.successors(block) {
            self.emit_phi_copies(block, succ);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn emit_inst(&mut self, block: BlockId, inst_id: InstId, next_block: Option<BlockId>) {
        let inst = self.func.inst(inst_id).clone();
        let op = inst.opcode();
        let ops = inst.operands().to_vec();
        let blocks = inst.block_operands().to_vec();
        let tt = self.module.types();

        if self.fused.contains(&inst_id) {
            return; // emitted at the branch
        }

        match op {
            _ if op.is_binary() => {
                let ty = inst.result_type();
                match classify(self.module, ty) {
                    ValClass::Int => self.emit_int_binary(inst_id, op, &ops, ty, inst.exceptions_enabled()),
                    class => {
                        let is32 = class == ValClass::F32;
                        let fop = match op {
                            Opcode::Add => llva_machine::x86::FpOp::Add,
                            Opcode::Sub => llva_machine::x86::FpOp::Sub,
                            Opcode::Mul => llva_machine::x86::FpOp::Mul,
                            Opcode::Div | Opcode::Rem => llva_machine::x86::FpOp::Div,
                            _ => panic!("bitwise op on float"),
                        };
                        self.fload_into(ops[0], F0);
                        self.fload_into(ops[1], F1);
                        if op == Opcode::Rem {
                            // x - trunc(x/y)*y
                            self.code.push(X86Inst::FMovRR(Fpr(2), F0));
                            self.code
                                .push(X86Inst::FAlu(llva_machine::x86::FpOp::Div, Fpr(2), F1, is32));
                            self.code.push(X86Inst::CvtFI {
                                dst: EAX,
                                src: Fpr(2),
                                from32: is32,
                                signed: true,
                            });
                            self.code.push(X86Inst::CvtIF {
                                dst: Fpr(2),
                                src: EAX,
                                to32: is32,
                                signed: true,
                            });
                            self.code
                                .push(X86Inst::FAlu(llva_machine::x86::FpOp::Mul, Fpr(2), F1, is32));
                            self.code
                                .push(X86Inst::FAlu(llva_machine::x86::FpOp::Sub, F0, Fpr(2), is32));
                        } else {
                            self.code.push(X86Inst::FAlu(fop, F0, F1, is32));
                        }
                        self.fstore_result(inst_id, F0);
                    }
                }
            }
            _ if op.is_comparison() => {
                self.emit_compare_flags(inst_id);
                let cond = self.cond_for(op, self.vty(ops[0]));
                let dst = self.int_dst(inst_id, EAX);
                self.code.push(X86Inst::MovRI(dst, 0));
                self.code.push(X86Inst::Setcc(cond, dst));
                self.finish_int(inst_id, dst);
            }
            Opcode::Ret => {
                if let Some(&v) = ops.first() {
                    match classify(self.module, self.vty(v)) {
                        ValClass::Int => self.load_into(v, EAX),
                        _ => {
                            self.fload_into(v, F0);
                            self.code.push(X86Inst::MovGF(EAX, F0));
                        }
                    }
                }
                self.emit_epilogue();
            }
            Opcode::Br => {
                self.emit_all_phi_copies(block);
                if ops.is_empty() {
                    if next_block != Some(blocks[0]) {
                        self.jump(blocks[0]);
                    }
                } else {
                    let cond_val = ops[0];
                    let (cond, _) = match inst_defining(self.func, cond_val) {
                        Some(def) if self.fused.contains(&def) => {
                            self.emit_compare_flags(def);
                            let def_inst = self.func.inst(def);
                            (
                                self.cond_for(def_inst.opcode(), self.vty(def_inst.operands()[0])),
                                (),
                            )
                        }
                        _ => {
                            let r = self.reg_source(cond_val, EAX);
                            self.code.push(X86Inst::CmpRI(r, 0));
                            (Cond::Ne, ())
                        }
                    };
                    self.jcc(cond, blocks[0]);
                    if next_block != Some(blocks[1]) {
                        self.jump(blocks[1]);
                    }
                }
            }
            Opcode::Mbr => {
                self.emit_all_phi_copies(block);
                let r = self.reg_source(ops[0], EAX);
                for (i, &case) in ops[1..].iter().enumerate() {
                    let imm = self.as_imm(case).expect("mbr cases are constants");
                    self.code.push(X86Inst::CmpRI(r, imm));
                    self.jcc(Cond::E, blocks[1 + i]);
                }
                if next_block != Some(blocks[0]) {
                    self.jump(blocks[0]);
                }
            }
            Opcode::Call | Opcode::Invoke => {
                self.emit_call(block, inst_id, op, &ops, &blocks, next_block);
            }
            Opcode::Unwind => {
                self.code.push(X86Inst::Unwind);
            }
            Opcode::Load => {
                let pointee = tt.pointee(self.vty(ops[0])).expect("load from pointer");
                let (width, signed) = access_of(self.module, pointee);
                let rp = self.reg_source(ops[0], EAX);
                match classify(self.module, pointee) {
                    ValClass::Int => {
                        let result = self.func.inst_result(inst_id).expect("has a result");
                        // load straight into the home register if any
                        let dst = self.reg_home(result).unwrap_or(ECX);
                        self.code.push(X86Inst::Load {
                            dst,
                            mem: MemOp { base: rp, disp: 0 },
                            width,
                            signed,
                        });
                        self.finish_int(inst_id, dst);
                    }
                    class => {
                        self.code.push(X86Inst::FLoad {
                            dst: F0,
                            mem: MemOp { base: rp, disp: 0 },
                            is32: class == ValClass::F32,
                        });
                        self.fstore_result(inst_id, F0);
                    }
                }
            }
            Opcode::Store => {
                let pointee = tt.pointee(self.vty(ops[1])).expect("store to pointer");
                let (width, _) = access_of(self.module, pointee);
                let rv = self.reg_source(ops[0], EAX);
                let rp = self.reg_source(ops[1], ECX);
                self.code.push(X86Inst::Store {
                    src: rv,
                    mem: MemOp { base: rp, disp: 0 },
                    width,
                });
            }
            Opcode::GetElementPtr => self.emit_gep(inst_id, &ops),
            Opcode::Alloca => {
                let dst = self.int_dst(inst_id, EAX);
                if ops.is_empty() {
                    let disp = self.alloca_home[&inst_id];
                    self.code.push(X86Inst::Lea(
                        dst,
                        MemOp {
                            base: Gpr::Ebp,
                            disp,
                        },
                    ));
                } else {
                    // dynamic: esp -= size * count (8-byte aligned)
                    let pointee = tt.pointee(inst.result_type()).expect("alloca pointer");
                    let size = self.module.target().size_of(tt, pointee).max(1);
                    let size = (size + 7) & !7;
                    self.load_into(ops[0], ECX);
                    self.code.push(X86Inst::MovRI(EDX, size as i64));
                    self.code.push(X86Inst::IMulRR(ECX, EDX, Norm::None));
                    self.code.push(X86Inst::AluRR(AluOp::Sub, Gpr::Esp, ECX, Norm::None));
                    self.code.push(X86Inst::MovRR(dst, Gpr::Esp));
                }
                self.finish_int(inst_id, dst);
            }
            Opcode::Cast => self.emit_cast(inst_id, ops[0], inst.result_type()),
            Opcode::Phi => {
                let stage = self.staging[&inst_id];
                let result = self.func.inst_result(inst_id).expect("has a result");
                let dst = self.reg_home(result).unwrap_or(EAX);
                self.code.push(X86Inst::Load {
                    dst,
                    mem: stage,
                    width: Width::B8,
                    signed: false,
                });
                self.finish_int(inst_id, dst);
            }
            _ => unreachable!("all opcodes covered"),
        }
    }

    fn emit_int_binary(
        &mut self,
        inst_id: InstId,
        op: Opcode,
        ops: &[ValueId],
        ty: TypeId,
        exceptions: bool,
    ) {
        let tt = self.module.types();
        let signed = tt.is_signed_integer(ty);
        match op {
            Opcode::Div | Opcode::Rem => {
                self.load_into(ops[0], EAX);
                if signed {
                    self.code.push(X86Inst::Cdq);
                } else {
                    self.code.push(X86Inst::MovRI(EDX, 0));
                }
                // the divisor must survive EDX:EAX setup; homes do,
                // otherwise stage through ECX
                let divisor = self.reg_source(ops[1], ECX);
                self.code.push(X86Inst::Div {
                    signed,
                    divisor,
                    trapping: exceptions,
                    norm: self.norm_of(ty),
                });
                let out = if op == Opcode::Div { EAX } else { EDX };
                self.normalize(out, ty);
                self.finish_int(inst_id, out);
            }
            Opcode::Mul => {
                let norm = self.norm_of(ty);
                let dst = self.int_dst(inst_id, EAX);
                self.load_into(ops[0], dst);
                if let Some(home) = self.reg_home(ops[1]) {
                    self.code.push(X86Inst::IMulRR(dst, home, norm));
                } else if let Some(mem) = self.mem_operand(ops[1]) {
                    self.code.push(X86Inst::IMulRM(dst, mem, norm));
                } else {
                    self.load_into(ops[1], ECX);
                    self.code.push(X86Inst::IMulRR(dst, ECX, norm));
                }
                self.normalize(dst, ty);
                self.finish_int(inst_id, dst);
            }
            Opcode::Shl | Opcode::Shr => {
                let alu = match (op, signed) {
                    (Opcode::Shl, _) => AluOp::Shl,
                    (Opcode::Shr, true) => AluOp::Sar,
                    (Opcode::Shr, false) => AluOp::Shr,
                    _ => unreachable!(),
                };
                let norm = if op == Opcode::Shl {
                    self.norm_of(ty)
                } else {
                    Norm::None
                };
                let dst = self.int_dst(inst_id, EAX);
                self.load_into(ops[0], dst);
                if let Some(imm) = self.as_imm(ops[1]) {
                    self.code.push(X86Inst::AluRI(alu, dst, imm, norm));
                } else {
                    let rb = self.reg_source(ops[1], ECX);
                    self.code.push(X86Inst::AluRR(alu, dst, rb, norm));
                }
                if op == Opcode::Shl {
                    self.normalize(dst, ty);
                }
                self.finish_int(inst_id, dst);
            }
            _ => {
                let alu = match op {
                    Opcode::Add => AluOp::Add,
                    Opcode::Sub => AluOp::Sub,
                    Opcode::And => AluOp::And,
                    Opcode::Or => AluOp::Or,
                    Opcode::Xor => AluOp::Xor,
                    _ => unreachable!(),
                };
                let norm = if matches!(op, Opcode::Add | Opcode::Sub) {
                    self.norm_of(ty)
                } else {
                    Norm::None
                };
                let dst = self.int_dst(inst_id, EAX);
                self.load_into(ops[0], dst);
                if let Some(imm) = self.as_imm(ops[1]) {
                    self.code.push(X86Inst::AluRI(alu, dst, imm, norm));
                } else if let Some(home) = self.reg_home(ops[1]) {
                    self.code.push(X86Inst::AluRR(alu, dst, home, norm));
                } else if let Some(mem) = self.mem_operand(ops[1]) {
                    self.code.push(X86Inst::AluRM(alu, dst, mem, norm));
                } else {
                    self.load_into(ops[1], ECX);
                    self.code.push(X86Inst::AluRR(alu, dst, ECX, norm));
                }
                if matches!(op, Opcode::Add | Opcode::Sub) {
                    self.normalize(dst, ty);
                }
                self.finish_int(inst_id, dst);
            }
        }
    }

    fn emit_call(
        &mut self,
        block: BlockId,
        inst_id: InstId,
        op: Opcode,
        ops: &[ValueId],
        blocks: &[BlockId],
        next_block: Option<BlockId>,
    ) {
        let args = &ops[1..];
        // push right-to-left
        for &a in args.iter().rev() {
            let r = self.reg_source(a, EAX);
            self.code.push(X86Inst::Push(r));
        }
        let cleanup = 8 * args.len() as i64;
        let is_invoke = op == Opcode::Invoke;
        // the call itself
        let call_idx = self.code.len();
        if let Some(intr) = intrinsic_target(self.module, self.func, ops[0]) {
            self.code.push(X86Inst::CallIntrinsic {
                which: intr,
                nargs: args.len() as u8,
            });
        } else if let Some(Constant::FunctionAddr { func, .. }) = self.func.value_as_const(ops[0])
        {
            self.code.push(X86Inst::CallFn {
                func: func.index() as u32,
                unwind: None,
            });
        } else {
            let target = self.reg_source(ops[0], ECX);
            self.code.push(X86Inst::CallIndirect {
                target,
                unwind: None,
            });
        }
        // normal path: cleanup, store result
        if cleanup > 0 {
            self.code
                .push(X86Inst::AluRI(AluOp::Add, Gpr::Esp, cleanup, Norm::None));
        }
        if let Some(_result) = self.func.inst_result(inst_id) {
            match classify(self.module, self.func.inst(inst_id).result_type()) {
                ValClass::Int => self.finish_int(inst_id, EAX),
                _ => self.fstore_result(inst_id, F0),
            }
        }
        if is_invoke {
            // normal edge
            self.emit_phi_copies(block, blocks[0]);
            self.jump(blocks[0]);
            // unwind pad: cleanup then jump to the unwind block (the
            // machine restored the caller's registers and SP at the
            // call site, so the pushed args are still to pop)
            let pad_start = self.code.len() as u32;
            if cleanup > 0 {
                self.code
                    .push(X86Inst::AluRI(AluOp::Add, Gpr::Esp, cleanup, Norm::None));
            }
            self.emit_phi_copies(block, blocks[1]);
            self.jump(blocks[1]);
            // point the call's unwind at the pad
            match &mut self.code[call_idx] {
                X86Inst::CallFn { unwind, .. } | X86Inst::CallIndirect { unwind, .. } => {
                    *unwind = Some(pad_start);
                }
                X86Inst::CallIntrinsic { .. } => {
                    // intrinsics do not unwind
                }
                other => unreachable!("call fixup on {other:?}"),
            }
            let _ = next_block;
        }
    }

    fn emit_gep(&mut self, inst_id: InstId, ops: &[ValueId]) {
        let tt = self.module.types();
        let cfg = self.module.target();
        let dst = self.int_dst(inst_id, EAX);
        self.load_into(ops[0], dst);
        let mut cur = tt.pointee(self.vty(ops[0])).expect("gep base pointer");
        let mut static_off: i64 = 0;
        for (i, &idx) in ops[1..].iter().enumerate() {
            let elem_size = if i == 0 {
                cfg.size_of(tt, cur)
            } else {
                match tt.kind(cur).clone() {
                    TypeKind::Array { elem, .. } => {
                        let s = cfg.size_of(tt, elem);
                        cur = elem;
                        s
                    }
                    TypeKind::LiteralStruct(_) | TypeKind::Struct(_) => {
                        let field = self
                            .func
                            .value_as_const(idx)
                            .and_then(Constant::as_int_bits)
                            .expect("struct index constant")
                            as usize;
                        static_off += cfg.field_offset(tt, cur, field) as i64;
                        cur = tt.struct_fields(cur).expect("defined struct")[field];
                        continue;
                    }
                    other => panic!("gep into non-aggregate {other:?}"),
                }
            };
            if let Some(k) = self
                .func
                .value_as_const(idx)
                .map(|c| canonical_const(self.module, c) as i64)
            {
                static_off += k * elem_size as i64;
            } else {
                // the index is scaled in place — always a fresh copy
                self.load_into(idx, ECX);
                if elem_size.is_power_of_two() {
                    self.code.push(X86Inst::AluRI(
                        AluOp::Shl,
                        ECX,
                        i64::from(elem_size.trailing_zeros()),
                        Norm::None,
                    ));
                } else {
                    self.code.push(X86Inst::MovRI(EDX, elem_size as i64));
                    self.code.push(X86Inst::IMulRR(ECX, EDX, Norm::None));
                }
                self.code.push(X86Inst::AluRR(AluOp::Add, dst, ECX, Norm::None));
            }
        }
        if static_off != 0 {
            self.code.push(X86Inst::Lea(
                dst,
                MemOp {
                    base: dst,
                    disp: static_off as i32,
                },
            ));
        }
        self.finish_int(inst_id, dst);
    }

    fn emit_cast(&mut self, inst_id: InstId, src: ValueId, to: TypeId) {
        let tt = self.module.types();
        let from = self.vty(src);
        let from_class = classify(self.module, from);
        let to_class = classify(self.module, to);
        match (from_class, to_class) {
            (ValClass::Int, ValClass::Int) => {
                let dst = self.int_dst(inst_id, EAX);
                self.load_into(src, dst);
                if matches!(tt.kind(to), TypeKind::Bool) {
                    self.code.push(X86Inst::CmpRI(dst, 0));
                    self.code.push(X86Inst::MovRI(dst, 0));
                    self.code.push(X86Inst::Setcc(Cond::Ne, dst));
                } else {
                    self.normalize_full(dst, to);
                }
                self.finish_int(inst_id, dst);
            }
            (ValClass::Int, fc) => {
                let r = self.reg_source(src, EAX);
                self.code.push(X86Inst::CvtIF {
                    dst: F0,
                    src: r,
                    to32: fc == ValClass::F32,
                    signed: tt.is_signed_integer(from) || matches!(tt.kind(from), TypeKind::Bool),
                });
                self.fstore_result(inst_id, F0);
            }
            (fc, ValClass::Int) => {
                let dst = self.int_dst(inst_id, EAX);
                self.fload_into(src, F0);
                if matches!(tt.kind(to), TypeKind::Bool) {
                    self.code.push(X86Inst::MovRI(EAX, 0));
                    self.code.push(X86Inst::MovFG(F1, EAX));
                    self.code.push(X86Inst::FCmp(F0, F1, fc == ValClass::F32));
                    self.code.push(X86Inst::MovRI(dst, 0));
                    self.code.push(X86Inst::Setcc(Cond::Ne, dst));
                } else {
                    self.code.push(X86Inst::CvtFI {
                        dst,
                        src: F0,
                        from32: fc == ValClass::F32,
                        signed: tt.is_signed_integer(to),
                    });
                    self.normalize_full(dst, to);
                }
                self.finish_int(inst_id, dst);
            }
            (fa, fb) => {
                self.fload_into(src, F0);
                if fa != fb {
                    self.code.push(X86Inst::CvtFF {
                        dst: F0,
                        src: F0,
                        to32: fb == ValClass::F32,
                    });
                }
                self.fstore_result(inst_id, F0);
            }
        }
    }
}

/// Counts the frame-traffic (spill) instructions in a compiled stream:
/// loads and stores whose address is `ebp`-relative. This is the
/// "spill code" metric perf-smoke reports for Table 2 deltas.
pub fn spill_count(code: &[X86Inst]) -> usize {
    code.iter()
        .filter(|i| match i {
            X86Inst::Load { mem, .. }
            | X86Inst::Store { mem, .. }
            | X86Inst::FLoad { mem, .. }
            | X86Inst::FStore { mem, .. }
            | X86Inst::AluRM(_, _, mem, _)
            | X86Inst::IMulRM(_, mem, _)
            | X86Inst::CmpRM(_, mem) => mem.base == Gpr::Ebp,
            _ => false,
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_machine::common::Exit;
    use llva_machine::memory::Memory;
    use llva_machine::x86::{X86Machine, X86Program};

    fn run_main(src: &str, args: &[u64]) -> Exit {
        run_main_with(src, args, compile_x86)
    }

    fn run_main_with(
        src: &str,
        args: &[u64],
        compile: fn(&Module, FuncId) -> Vec<X86Inst>,
    ) -> Exit {
        let m = llva_core::parser::parse_module(src).expect("parses");
        llva_core::verifier::verify_module(&m).expect("verifies");
        let image = crate::common::layout_globals(&m);
        let mut program = X86Program::new(m.num_functions(), image.addrs.clone());
        for (fid, f) in m.functions() {
            if !f.is_declaration() {
                program.install(fid.index() as u32, compile(&m, fid));
            }
        }
        let mut mem = Memory::new(1 << 22, image.heap_base, m.target().endianness);
        mem.write_bytes(llva_machine::memory::GLOBAL_BASE, &image.image)
            .expect("image fits");
        let mut machine = X86Machine::new(mem);
        let main = m.function_by_name("main").expect("main");
        machine.call_entry(main.index() as u32, args).expect("entry");
        machine.run(&program, 100_000_000)
    }

    #[test]
    fn arithmetic_pipeline() {
        let exit = run_main(
            r#"
int %main(int %x) {
entry:
    %a = add int %x, 10
    %b = mul int %a, 3
    %c = sub int %b, 6
    %d = div int %c, 2
    ret int %d
}
"#,
            &[4],
        );
        assert_eq!(exit, Exit::Halt(18)); // ((4+10)*3-6)/2
    }

    #[test]
    fn fib_recursive() {
        let exit = run_main(
            r#"
int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}

int %main() {
entry:
    %r = call int %fib(int 10)
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(55));
    }

    #[test]
    fn loops_and_phis() {
        let exit = run_main(
            r#"
int %main(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %s2 = add int %s, %i
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#,
            &[10],
        );
        assert_eq!(exit, Exit::Halt(45));
    }

    #[test]
    fn memory_and_gep() {
        let exit = run_main(
            r#"
%Pair = type { int, long }

long %main() {
entry:
    %p = alloca %Pair
    %f0 = getelementptr %Pair* %p, long 0, ubyte 0
    %f1 = getelementptr %Pair* %p, long 0, ubyte 1
    store int 7, int* %f0
    store long 35, long* %f1
    %a = load int* %f0
    %b = load long* %f1
    %aw = cast int %a to long
    %s = add long %aw, %b
    ret long %s
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(42));
    }

    #[test]
    fn globals_resolve() {
        let exit = run_main(
            r#"
@counter = global int 5

int %main() {
entry:
    %v = load int* @counter
    %v2 = add int %v, 1
    store int %v2, int* @counter
    %v3 = load int* @counter
    ret int %v3
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(6));
    }

    #[test]
    fn narrow_arithmetic_wraps() {
        let exit = run_main(
            r#"
int %main() {
entry:
    %a = cast int 250 to ubyte
    %b = cast int 10 to ubyte
    %c = add ubyte %a, %b
    %r = cast ubyte %c to int
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(4)); // 260 wraps to 4
    }

    #[test]
    fn float_math() {
        let exit = run_main(
            r#"
int %main() {
entry:
    %a = cast int 7 to double
    %b = cast int 2 to double
    %q = div double %a, %b
    %t = mul double %q, %b
    %r = cast double %t to int
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(7));
    }

    #[test]
    fn mbr_dispatch() {
        for (x, expect) in [(0, 10), (1, 11), (7, 12)] {
            let exit = run_main(
                r#"
int %main(int %x) {
entry:
    mbr int %x, label %other, [ int 0, label %zero ], [ int 1, label %one ]
zero:
    ret int 10
one:
    ret int 11
other:
    ret int 12
}
"#,
                &[x],
            );
            assert_eq!(exit, Exit::Halt(expect));
        }
    }

    #[test]
    fn invoke_unwind_flow() {
        let exit = run_main(
            r#"
void %thrower(int %x) {
entry:
    %c = setgt int %x, 5
    br bool %c, label %throw, label %ok
throw:
    unwind
ok:
    ret void
}

int %main(int %x) {
entry:
    invoke void %thrower(int %x) to label %fine unwind label %caught
fine:
    ret int 0
caught:
    ret int 1
}
"#,
            &[9],
        );
        assert_eq!(exit, Exit::Halt(1));
    }

    #[test]
    fn register_homed_value_survives_unwind() {
        // %acc is hot (register-homed by linear scan) and live across
        // the invoke; the callee clobbers every callee-saved register
        // through its own allocation before unwinding. The machine's
        // call-site register snapshot must bring %acc back at the pad.
        let exit = run_main(
            r#"
int %burn(int %n) {
entry:
    %a = mul int %n, 3
    %b = add int %a, %n
    %c = mul int %b, %a
    %d = add int %c, %b
    %e = mul int %d, %c
    %t = setgt int %e, -1
    br bool %t, label %throw, label %throw
throw:
    unwind
}

int %main(int %x) {
entry:
    %acc1 = add int %x, 100
    %acc2 = mul int %acc1, 3
    %acc3 = add int %acc2, %acc1
    invoke int %burn(int %x) to label %fine unwind label %caught
fine:
    ret int 0
caught:
    %r = add int %acc3, %acc1
    ret int %r
}
"#,
            &[1],
        );
        // acc1 = 101, acc2 = 303, acc3 = 404, r = 505
        assert_eq!(exit, Exit::Halt(505));
    }

    #[test]
    fn indirect_call() {
        let exit = run_main(
            r#"
int %double(int %x) {
entry:
    %r = add int %x, %x
    ret int %r
}

int %apply(int (int)* %f, int %v) {
entry:
    %r = call int %f(int %v)
    ret int %r
}

int %main() {
entry:
    %r = call int %apply(int (int)* %double, int 21)
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(42));
    }

    #[test]
    fn division_traps_when_enabled() {
        let exit = run_main(
            r#"
int %main(int %x) {
entry:
    %q = div int 10, %x
    ret int %q
}
"#,
            &[0],
        );
        match exit {
            Exit::Trapped(t) => assert_eq!(t.kind, llva_machine::TrapKind::DivideByZero),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn naive_translator_agrees_with_allocating_one() {
        let src = r#"
int %work(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %t = mul int %i, 3
    %u = add int %t, %s
    %s2 = rem int %u, 1000
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}

int %main(int %n) {
entry:
    %r = call int %work(int %n)
    ret int %r
}
"#;
        let fast = run_main_with(src, &[25], compile_x86);
        let naive = run_main_with(src, &[25], compile_x86_naive);
        assert_eq!(fast, naive);
    }

    #[test]
    fn linear_scan_reduces_spill_traffic() {
        let m = llva_core::parser::parse_module(
            r#"
int %work(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %t = mul int %i, 3
    %u = add int %t, %s
    %s2 = rem int %u, 1000
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#,
        )
        .expect("parses");
        let f = m.function_by_name("work").expect("work");
        let naive = spill_count(&compile_x86_naive(&m, f));
        let allocated = spill_count(&compile_x86(&m, f));
        assert!(
            allocated < naive,
            "expected spill reduction, got {allocated} vs naive {naive}"
        );
    }

    /// The exhaustive frame-layout audit: one home per value, no slot
    /// for register-homed values or fused compares, disjoint slots,
    /// and a frame exactly accounting for every slot it hands out.
    /// (The old allocator double-counted: every instruction result got
    /// a frame slot even when it was never materialized.)
    #[test]
    fn frame_layout_is_exact() {
        let src = r#"
int %f(int %a, int %b, int %c, int %d) {
entry:
    %p = alloca long
    %t0 = add int %a, %b
    %t1 = mul int %t0, %c
    %cond = setlt int %t1, %d
    br bool %cond, label %then, label %els
then:
    %t2 = sub int %t1, %t0
    store long 1, long* %p
    br label %join
els:
    br label %join
join:
    %t3 = phi int [ %t2, %then ], [ %t1, %els ]
    %r = call int %f(int %t3, int %a, int %b, int %c)
    %s = add int %r, %t3
    ret int %s
}
"#;
        let m = llva_core::parser::parse_module(src).expect("parses");
        let fid = m.function_by_name("f").expect("f");
        let func = m.function(fid);
        let cg = CodeGen::new(&m, func, false);

        let fused = fused_compares(func);
        let mut slot_disps: Vec<i32> = Vec::new();
        let mut reg_homes = 0usize;
        for (_, inst_id) in func.inst_iter() {
            let Some(r) = func.inst_result(inst_id) else {
                continue;
            };
            if fused.contains(&inst_id) {
                // fused compares are never materialized: no home at all
                assert!(
                    !cg.locs.contains_key(&r),
                    "fused compare {r:?} was given a home"
                );
                continue;
            }
            match cg.locs[&r] {
                Loc::Reg(g) => {
                    assert!(ALLOCATABLE.contains(&g), "{r:?} homed in scratch {g:?}");
                    reg_homes += 1;
                }
                Loc::Slot(m) => {
                    assert_eq!(m.base, Gpr::Ebp);
                    assert!(m.disp < 0, "value slot above the frame: {}", m.disp);
                    slot_disps.push(m.disp);
                }
            }
        }
        // args promoted to registers; the rest stay in caller slots
        for (i, &a) in func.args().iter().enumerate() {
            match cg.locs[&a] {
                Loc::Reg(_) => reg_homes += 1,
                Loc::Slot(m) => assert_eq!(m.disp, 8 + 8 * i as i32),
            }
        }
        assert_eq!(
            reg_homes,
            ALLOCATABLE.len(),
            "linear scan left registers idle on a register-hungry function"
        );
        // save slots, staging slots and value slots must be disjoint
        slot_disps.extend(cg.save_slots.values().map(|m| m.disp));
        slot_disps.extend(cg.staging.values().map(|m| m.disp));
        slot_disps.extend(cg.alloca_home.values().copied());
        let unique: std::collections::HashSet<i32> = slot_disps.iter().copied().collect();
        assert_eq!(unique.len(), slot_disps.len(), "overlapping frame slots");
        // every negative slot lies inside the frame, and the frame is
        // exactly the 8-byte slots plus the alloca area — no
        // double-counted slack
        for d in &slot_disps {
            assert!(*d >= -cg.frame_size, "slot {d} outside frame {}", cg.frame_size);
        }
        let alloca_bytes: i32 = 8; // one `long` alloca
        assert_eq!(
            cg.frame_size,
            (slot_disps.len() as i32 - 1) * 8 + alloca_bytes,
            "frame size does not match allocated slots"
        );
    }

    #[test]
    fn expansion_ratio_in_paper_range() {
        // The paper reports 2.2–3.3 x86 instructions per LLVA
        // instruction across its benchmarks — measured on the naive
        // translator, which is the paper-faithful one.
        let m = llva_core::parser::parse_module(
            r#"
int %work(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %t = mul int %i, 3
    %u = add int %t, %s
    %s2 = rem int %u, 1000
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#,
        )
        .expect("parses");
        let f = m.function_by_name("work").expect("work");
        let code = compile_x86_naive(&m, f);
        let llva_count = m.function(f).num_insts();
        let ratio = code.len() as f64 / llva_count as f64;
        assert!(
            (1.5..=4.5).contains(&ratio),
            "x86 expansion ratio {ratio:.2} out of range ({} -> {})",
            llva_count,
            code.len()
        );
    }
}
