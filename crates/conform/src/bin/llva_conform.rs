//! `llva-conform` — run the N-way differential conformance harness
//! over a seed range.
//!
//! ```text
//! llva-conform [--seeds A..B | --seeds N | --seeds a,b,c] [--steps N]
//!              [--helpers N] [--fuel N] [--stage NAME]... [--no-shrink]
//!              [--verbose]
//! ```
//!
//! Every seed generates one module and runs it through every oracle
//! stage (interpreter, round trips, per-pass, pipelines, x86, SPARC,
//! the tiered supervisor — see `llva_conform::oracle`). `--stage NAME`
//! (repeatable, e.g. `--stage supervisor`) restricts the sweep to the
//! named stages plus the `interp` baseline. Divergences are shrunk to a
//! minimized reproducer and printed with the seed; the exit code is the
//! number of diverging seeds (capped at 101).
//!
//! The seed range can also come from the `LLVA_CONFORM_SEEDS`
//! environment variable (same syntax as `--seeds`), mirroring the
//! `LLVA_FAULT_SEED` convention of the fault-injection suite; the
//! command line wins when both are present.

use llva_conform::{gen::GenConfig, oracle::Oracle, run_seed};
use std::collections::BTreeMap;
use std::time::Instant;

fn parse_seeds(spec: &str) -> Result<Vec<u64>, String> {
    let spec = spec.trim();
    if let Some((a, b)) = spec.split_once("..") {
        let lo: u64 = a.trim().parse().map_err(|_| format!("bad range start '{a}'"))?;
        let hi: u64 = b.trim().parse().map_err(|_| format!("bad range end '{b}'"))?;
        if lo >= hi {
            return Err(format!("empty seed range {lo}..{hi}"));
        }
        Ok((lo..hi).collect())
    } else if spec.contains(',') {
        spec.split(',')
            .map(|s| s.trim().parse().map_err(|_| format!("bad seed '{s}'")))
            .collect()
    } else {
        let n: u64 = spec.parse().map_err(|_| format!("bad seed count '{spec}'"))?;
        Ok((0..n).collect())
    }
}

struct Options {
    seeds: Vec<u64>,
    cfg: GenConfig,
    fuel: u64,
    stages: Vec<String>,
    shrink: bool,
    verbose: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seeds: Vec::new(),
        cfg: GenConfig::default(),
        fuel: 50_000_000,
        stages: Vec::new(),
        shrink: true,
        verbose: false,
    };
    let mut seeds_spec = std::env::var("LLVA_CONFORM_SEEDS").ok();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => seeds_spec = Some(value("--seeds")?),
            "--steps" => {
                opts.cfg.max_steps = value("--steps")?
                    .parse()
                    .map_err(|_| "--steps expects a number".to_string())?;
            }
            "--helpers" => {
                opts.cfg.max_helpers = value("--helpers")?
                    .parse()
                    .map_err(|_| "--helpers expects a number".to_string())?;
            }
            "--fuel" => {
                opts.fuel = value("--fuel")?
                    .parse()
                    .map_err(|_| "--fuel expects a number".to_string())?;
            }
            "--stage" => opts.stages.push(value("--stage")?),
            "--no-shrink" => opts.shrink = false,
            "--verbose" | "-v" => opts.verbose = true,
            "--help" | "-h" => {
                println!(
                    "usage: llva-conform [--seeds A..B|N|a,b,c] [--steps N] [--helpers N] \
                     [--fuel N] [--stage NAME]... [--no-shrink] [--verbose]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let spec = seeds_spec.unwrap_or_else(|| "0..100".to_string());
    opts.seeds = parse_seeds(&spec)?;
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("llva-conform: {e}");
            std::process::exit(2);
        }
    };

    let mut oracle = Oracle::new();
    oracle.set_fuel(opts.fuel);
    if !opts.stages.is_empty() {
        // validate before restricting: a typo'd --stage should fail
        // loudly, not silently sweep fewer stages than asked for
        let known = oracle.stage_names("main");
        for s in &opts.stages {
            if !known.iter().any(|k| k == s) {
                eprintln!("llva-conform: unknown stage '{s}' (known: {})", known.join(", "));
                std::process::exit(2);
            }
        }
        oracle.restrict_stages(opts.stages.clone());
    }

    let started = Instant::now();
    let mut per_stage: BTreeMap<String, (u64, u64)> = BTreeMap::new(); // stage -> (runs, divergences)
    let mut failing_seeds: Vec<u64> = Vec::new();

    for &seed in &opts.seeds {
        let out = if opts.shrink {
            run_seed(seed, &opts.cfg, &oracle)
        } else {
            let tc = llva_conform::generate(seed, &opts.cfg);
            let (results, divergences) = oracle.check(&tc.module, &tc.entry, &tc.args);
            llva_conform::SeedOutcome {
                seed,
                results,
                divergences,
                minimized: None,
            }
        };
        for r in &out.results {
            per_stage.entry(r.stage.clone()).or_insert((0, 0)).0 += 1;
        }
        for d in &out.divergences {
            per_stage.entry(d.stage.clone()).or_insert((0, 0)).1 += 1;
        }
        if !out.divergences.is_empty() {
            failing_seeds.push(seed);
            eprintln!("seed {seed}: {} diverging stage(s)", out.divergences.len());
            match &out.minimized {
                Some(repro) => eprintln!("{}", repro.render()),
                None => {
                    for d in &out.divergences {
                        eprintln!("  {d}");
                    }
                }
            }
        } else if opts.verbose {
            let baseline = &out.results[0].outcome;
            println!("seed {seed}: ok ({} stages agree on {baseline})", out.results.len());
        }
    }

    let elapsed = started.elapsed();
    println!(
        "llva-conform: {} seed(s), {} diverging, {:.2}s",
        opts.seeds.len(),
        failing_seeds.len(),
        elapsed.as_secs_f64()
    );
    println!("{:<18} {:>8} {:>10}", "stage", "runs", "diverged");
    for (stage, (runs, div)) in &per_stage {
        println!("{stage:<18} {runs:>8} {div:>10}");
    }
    if !failing_seeds.is_empty() {
        println!(
            "failing seeds: {}",
            failing_seeds
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );
    }
    std::process::exit(failing_seeds.len().min(101) as i32);
}
