//! A minimal, dependency-free drop-in for the subset of the
//! [criterion](https://docs.rs/criterion) API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real
//! criterion crate cannot be resolved. This shim keeps the bench
//! sources unchanged and actually measures: each benchmark is warmed
//! up, then sampled until either the configured sample count is
//! reached or the measurement-time budget is spent, and the mean /
//! median / min wall-clock per iteration is printed.
//!
//! Supported surface: `Criterion`, `benchmark_group`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`,
//! `criterion_group!`, `criterion_main!`, and the group configuration
//! knobs `sample_size` / `warm_up_time` / `measurement_time`.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the shim runs one setup per
/// iteration regardless, so the variants only exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collected timings for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Default)]
struct Samples(Vec<u64>);

impl Samples {
    fn report(&mut self, name: &str) {
        if self.0.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        self.0.sort_unstable();
        let min = self.0[0];
        let median = self.0[self.0.len() / 2];
        let mean = self.0.iter().sum::<u64>() / self.0.len() as u64;
        println!(
            "{name:<48} mean {:>12}  median {:>12}  min {:>12}  ({} samples)",
            fmt_ns(mean),
            fmt_ns(median),
            fmt_ns(min),
            self.0.len()
        );
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The per-benchmark timing driver handed to the closure.
pub struct Bencher<'a> {
    config: &'a Config,
    samples: &'a mut Samples,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let budget = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.0.push(t0.elapsed().as_nanos() as u64);
            if Instant::now() > budget {
                break;
            }
        }
    }

    /// Times `routine` on a fresh input from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine(setup()));
        }
        let budget = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.0.push(t0.elapsed().as_nanos() as u64);
            if Instant::now() > budget {
                break;
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// The top-level harness state (a subset of criterion's `Criterion`).
pub struct Criterion {
    filter: Option<String>,
    config: Config,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo bench passes `--bench`; a free-form trailing argument
        // is a substring filter on benchmark names, like criterion's.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion {
            filter,
            config: Config::default(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let config = self.config.clone();
        let name = name.into();
        self.run_one(&name, &config, f);
        self
    }

    fn run_one<F>(&self, name: &str, config: &Config, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples = Samples::default();
        let mut b = Bencher {
            config,
            samples: &mut samples,
        };
        f(&mut b);
        samples.report(name);
    }
}

/// A group of benchmarks sharing configuration (criterion API subset).
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Target number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Wall-clock budget for the sampling loop.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, name.into());
        self.criterion.run_one(&full, &self.config, f);
        self
    }

    /// Ends the group (printing happens per benchmark).
    pub fn finish(self) {}
}

/// Bundles benchmark functions, like criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            filter: None,
            config: Config {
                sample_size: 5,
                warm_up_time: Duration::from_millis(1),
                measurement_time: Duration::from_secs(1),
            },
        };
        let mut group = c.benchmark_group("g");
        let mut ran = 0usize;
        group.sample_size(5).bench_function("work", |b| {
            b.iter(|| {
                ran += 1;
            });
        });
        group.finish();
        assert!(ran >= 5, "warmup + 5 samples should run the routine");
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion {
            filter: None,
            config: Config {
                sample_size: 3,
                warm_up_time: Duration::ZERO,
                measurement_time: Duration::from_secs(1),
            },
        };
        let mut setups = 0usize;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            );
        });
        assert!(setups >= 3);
    }
}
