//! Internalize: mark non-entry symbols as internal linkage.
//!
//! At link time the whole program is visible, so every function and
//! global not named as an entry point (or reserved, like intrinsics)
//! can be given internal linkage — unlocking whole-program inlining and
//! dead-global elimination (§4.2 item 1).

use crate::pass::ModulePass;
use llva_core::function::Linkage;
use llva_core::module::Module;

/// The internalize pass.
#[derive(Debug, Clone)]
pub struct Internalize {
    entry_points: Vec<String>,
    internalized: usize,
}

impl Internalize {
    /// Creates the pass, preserving the named entry points.
    pub fn new(entry_points: &[&str]) -> Internalize {
        Internalize {
            entry_points: entry_points.iter().map(|s| s.to_string()).collect(),
            internalized: 0,
        }
    }

    /// Symbols internalized by the last run.
    pub fn internalized(&self) -> usize {
        self.internalized
    }
}

impl ModulePass for Internalize {
    fn name(&self) -> &'static str {
        "internalize"
    }

    fn run(&mut self, module: &mut Module) -> bool {
        self.internalized = 0;
        for fid in module.function_ids() {
            let func = module.function(fid);
            let keep = self.entry_points.iter().any(|e| e == func.name())
                || func.is_declaration()
                || llva_core::intrinsics::is_intrinsic_name(func.name());
            if !keep && func.linkage() == Linkage::External {
                module.function_mut(fid).set_linkage(Linkage::Internal);
                self.internalized += 1;
            }
        }
        let gids: Vec<_> = module.globals().map(|(g, _)| g).collect();
        for gid in gids {
            if module.global(gid).linkage() == Linkage::External {
                module.global_mut(gid).set_linkage(Linkage::Internal);
                self.internalized += 1;
            }
        }
        self.internalized > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_main_external() {
        let mut m = llva_core::parser::parse_module(
            r#"
@g = global int 0

declare int %ext(int)

int %helper(int %x) {
entry:
    ret int %x
}

int %main() {
entry:
    %v = call int %helper(int 1)
    ret int %v
}
"#,
        )
        .expect("parses");
        let mut pass = Internalize::new(&["main"]);
        assert!(pass.run(&mut m));
        let main = m.function(m.function_by_name("main").expect("main"));
        assert_eq!(main.linkage(), Linkage::External);
        let helper = m.function(m.function_by_name("helper").expect("helper"));
        assert_eq!(helper.linkage(), Linkage::Internal);
        let ext = m.function(m.function_by_name("ext").expect("ext"));
        assert_eq!(ext.linkage(), Linkage::External, "declarations untouched");
        let g = m.global(m.global_by_name("g").expect("g"));
        assert_eq!(g.linkage(), Linkage::Internal);
    }
}
