//! Target data layout: pointer size, endianness, and type size/offset
//! computation (paper §3.2, "Representation Portability").
//!
//! LLVA abstracts pointer size and endianness from *type-safe* code, but
//! the translator must still know them to lay out memory. The paper's
//! example: `&T[0].Children[3]` is 20 bytes past `%T` with 32-bit pointers
//! and 32 bytes with 64-bit pointers. [`TargetConfig`] captures exactly the
//! two flags the paper says LLVA exposes to non-type-safe code.

use crate::types::{TypeId, TypeKind, TypeTable};

/// Byte order of the implementation ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Endianness {
    /// Least-significant byte first (e.g. IA-32).
    #[default]
    Little,
    /// Most-significant byte first (e.g. SPARC V9).
    Big,
}

/// Pointer width of the implementation ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PointerSize {
    /// 32-bit pointers.
    Bits32,
    /// 64-bit pointers.
    #[default]
    Bits64,
}

impl PointerSize {
    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            PointerSize::Bits32 => 4,
            PointerSize::Bits64 => 8,
        }
    }

    /// Size in bits.
    pub fn bits(self) -> u32 {
        (self.bytes() * 8) as u32
    }
}

/// The I-ISA configuration flags encoded in every LLVA object file
/// (paper §3.2: "currently, these are pointer size and endianness").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TargetConfig {
    /// Pointer width.
    pub pointer_size: PointerSize,
    /// Byte order.
    pub endianness: Endianness,
}

impl TargetConfig {
    /// A 32-bit little-endian target (IA-32-like).
    pub fn ia32() -> TargetConfig {
        TargetConfig {
            pointer_size: PointerSize::Bits32,
            endianness: Endianness::Little,
        }
    }

    /// A 64-bit big-endian target (SPARC-V9-like).
    pub fn sparc_v9() -> TargetConfig {
        TargetConfig {
            pointer_size: PointerSize::Bits64,
            endianness: Endianness::Big,
        }
    }

    /// A 64-bit little-endian target (RV64-like).
    pub fn riscv64() -> TargetConfig {
        TargetConfig {
            pointer_size: PointerSize::Bits64,
            endianness: Endianness::Little,
        }
    }

    /// Size of `ty` in bytes under this target.
    ///
    /// Aggregates include interior padding and tail padding to their
    /// alignment, C-style.
    ///
    /// # Panics
    ///
    /// Panics on unsized types (`void`, `label`, opaque structs, function
    /// types).
    pub fn size_of(&self, tt: &TypeTable, ty: TypeId) -> u64 {
        match tt.kind(ty) {
            TypeKind::Bool | TypeKind::UByte | TypeKind::SByte => 1,
            TypeKind::UShort | TypeKind::Short => 2,
            TypeKind::UInt | TypeKind::Int | TypeKind::Float => 4,
            TypeKind::ULong | TypeKind::Long | TypeKind::Double => 8,
            TypeKind::Pointer(_) => self.pointer_size.bytes(),
            TypeKind::Array { elem, len } => self.size_of(tt, *elem) * len,
            TypeKind::LiteralStruct(_) | TypeKind::Struct(_) => {
                let fields = tt
                    .struct_fields(ty)
                    .expect("size_of requires a non-opaque struct");
                let mut offset = 0u64;
                let mut max_align = 1u64;
                for &f in fields {
                    let a = self.align_of(tt, f);
                    max_align = max_align.max(a);
                    offset = round_up(offset, a) + self.size_of(tt, f);
                }
                round_up(offset, max_align)
            }
            TypeKind::Void | TypeKind::Label | TypeKind::Function { .. } => {
                panic!("size_of: unsized type {}", tt.display(ty))
            }
        }
    }

    /// Alignment of `ty` in bytes under this target.
    ///
    /// # Panics
    ///
    /// Panics on unsized types.
    pub fn align_of(&self, tt: &TypeTable, ty: TypeId) -> u64 {
        match tt.kind(ty) {
            TypeKind::Array { elem, .. } => self.align_of(tt, *elem),
            TypeKind::LiteralStruct(_) | TypeKind::Struct(_) => tt
                .struct_fields(ty)
                .expect("align_of requires a non-opaque struct")
                .iter()
                .map(|&f| self.align_of(tt, f))
                .max()
                .unwrap_or(1),
            _ => self.size_of(tt, ty),
        }
    }

    /// Byte offset of field number `field` in a struct type.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not a defined struct or `field` is out of range.
    pub fn field_offset(&self, tt: &TypeTable, ty: TypeId, field: usize) -> u64 {
        let fields = tt
            .struct_fields(ty)
            .expect("field_offset requires a non-opaque struct");
        assert!(field < fields.len(), "field index out of range");
        let mut offset = 0u64;
        for (i, &f) in fields.iter().enumerate() {
            offset = round_up(offset, self.align_of(tt, f));
            if i == field {
                return offset;
            }
            offset += self.size_of(tt, f);
        }
        unreachable!()
    }
}

fn round_up(value: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two() || align == 1 || align == 0);
    if align <= 1 {
        return value;
    }
    (value + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadtree(tt: &mut TypeTable) -> TypeId {
        let qt = tt.named_struct("QT");
        let qt_ptr = tt.pointer_to(qt);
        let children = tt.array_of(qt_ptr, 4);
        let dbl = tt.double();
        tt.set_struct_body("QT", vec![dbl, children])
    }

    #[test]
    fn paper_quadtree_offsets() {
        // Paper §3.1: &T[0].Children[3] is offset 20 with 32-bit pointers
        // and 32 with 64-bit pointers. Children starts at 8; +3 pointers.
        let mut tt = TypeTable::new();
        let qt = quadtree(&mut tt);
        let t32 = TargetConfig::ia32();
        let t64 = TargetConfig::sparc_v9();
        assert_eq!(t32.field_offset(&tt, qt, 1) + 3 * 4, 20);
        assert_eq!(t64.field_offset(&tt, qt, 1) + 3 * 8, 32);
    }

    #[test]
    fn primitive_sizes() {
        let mut tt = TypeTable::new();
        let cfg = TargetConfig::default();
        let cases = [
            (tt.bool(), 1),
            (tt.ubyte(), 1),
            (tt.short(), 2),
            (tt.int(), 4),
            (tt.uint(), 4),
            (tt.long(), 8),
            (tt.float(), 4),
            (tt.double(), 8),
        ];
        for (ty, size) in cases {
            assert_eq!(cfg.size_of(&tt, ty), size, "{}", tt.display(ty));
        }
    }

    #[test]
    fn pointer_size_follows_target() {
        let mut tt = TypeTable::new();
        let int = tt.int();
        let p = tt.pointer_to(int);
        assert_eq!(TargetConfig::ia32().size_of(&tt, p), 4);
        assert_eq!(TargetConfig::sparc_v9().size_of(&tt, p), 8);
    }

    #[test]
    fn struct_padding_and_tail() {
        // { sbyte, int, sbyte } -> 0, 4, 8; size rounds to 12 (align 4).
        let mut tt = TypeTable::new();
        let b = tt.sbyte();
        let i = tt.int();
        let s = tt.literal_struct(vec![b, i, b]);
        let cfg = TargetConfig::ia32();
        assert_eq!(cfg.field_offset(&tt, s, 0), 0);
        assert_eq!(cfg.field_offset(&tt, s, 1), 4);
        assert_eq!(cfg.field_offset(&tt, s, 2), 8);
        assert_eq!(cfg.size_of(&tt, s), 12);
        assert_eq!(cfg.align_of(&tt, s), 4);
    }

    #[test]
    fn array_layout() {
        let mut tt = TypeTable::new();
        let i = tt.int();
        let a = tt.array_of(i, 10);
        let cfg = TargetConfig::default();
        assert_eq!(cfg.size_of(&tt, a), 40);
        assert_eq!(cfg.align_of(&tt, a), 4);
    }

    #[test]
    #[should_panic(expected = "unsized")]
    fn void_has_no_size() {
        let mut tt = TypeTable::new();
        let v = tt.void();
        TargetConfig::default().size_of(&tt, v);
    }
}
