//! Deterministic fuzzing of the persistent module image loader.
//!
//! Images are the most-trusted untrusted input in the system: a warm
//! load hands pre-decoded function records and pre-translated native
//! code straight to the execution engine, so a corrupt or truncated
//! artifact must never panic the parser, the section loaders, or the
//! warm-start execution paths — damage must surface as a typed
//! `ImageError` (or a per-section fallback), exactly like a rotten
//! cache entry in `decode_fuzz.rs`.
//!
//! The build environment has no crates.io access, so instead of a
//! fuzzing crate these loops use the same deterministic xorshift64*
//! generator as `proptest_core.rs`: every run explores the same case
//! set and a failing input is reproducible from the seed.

use llva::engine::llee::{ExecutionManager, TargetIsa};
use llva::engine::{FastInterpreter, Interpreter, LlvaImage, PreModule, SectionKind};
use std::sync::Arc;

/// Deterministic xorshift64* PRNG (no external deps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn usize(&mut self, hi: usize) -> usize {
        (self.next() % hi as u64) as usize
    }
}

const SAMPLE: &str = r#"
@counter = global int 4

int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}

int %main() {
entry:
    %v = load int* @counter
    %r = call int %fib(int 10)
    %t = add int %r, %v
    ret int %t
}
"#;

fn sample_module() -> llva::core::module::Module {
    let m = llva::core::parser::parse_module(SAMPLE).expect("parses");
    llva::core::verifier::verify_module(&m).expect("verifies");
    m
}

/// A full image over the sample module: bytecode + predecode + one
/// native section, built through the offline translation path.
fn sample_image_bytes() -> Vec<u8> {
    let mut mgr = ExecutionManager::new(sample_module(), TargetIsa::X86);
    mgr.translate_all_parallel(0).expect("translates");
    mgr.build_image(true)
}

fn baseline_result() -> u64 {
    let module = sample_module();
    let mut interp = Interpreter::new(&module);
    interp.run("main", &[]).expect("baseline runs")
}

/// Drives every warm-load surface over an arbitrary byte string. The
/// property is totality: each step either succeeds or returns an
/// error; nothing may panic. Returns the executed result when the
/// whole warm pipeline survived.
fn exercise(bytes: &[u8]) -> Option<u64> {
    let image = Arc::new(LlvaImage::parse(bytes.to_vec()).ok()?);
    for kind in image.sections() {
        let _ = image.section_ok(kind);
    }
    let module = image.decode_module().ok()?;
    // native warm path: attach + lazy per-function probe during run
    let mut mgr = ExecutionManager::new(module.clone(), TargetIsa::X86);
    mgr.set_image(image.clone());
    let _ = mgr.run("main", &[]);
    // interpreter warm path: lazy record loader, eager install
    let pre = PreModule::new(&module);
    let _ = image.attach_loader(&pre);
    let _ = image.install_predecoded(&pre);
    let (pre, _) = image.premodule(&module).ok()?;
    let mut interp = FastInterpreter::with_predecoded(pre);
    interp.run("main", &[]).ok()
}

/// Every strict truncation of a valid image — which includes a cut at
/// every section boundary — is handled cleanly: the parser or a
/// section checksum rejects it, or (when only trailing sections are
/// lost) the survivors still execute to the oracle's answer. None may
/// panic.
#[test]
fn truncations_never_panic_any_loader() {
    let bytes = sample_image_bytes();
    let expect = baseline_result();
    assert_eq!(exercise(&bytes), Some(expect), "intact image runs");
    for cut in 0..bytes.len() {
        if let Some(got) = exercise(&bytes[..cut]) {
            assert_eq!(got, expect, "truncation to {cut} bytes diverged");
        }
    }
}

/// Seeded byte mutations over a corpus of clones: every mutated image
/// must parse-or-error without panicking, and any mutant that survives
/// the full warm pipeline (header, table, and section checksums all
/// pass) must still execute to the oracle's answer — a silent
/// semantic change would mean a checksum hole.
#[test]
fn seeded_mutations_never_panic_and_survivors_match_oracle() {
    let bytes = sample_image_bytes();
    let expect = baseline_result();
    let mut rng = Rng::new(0x1111_a6e5);
    for _ in 0..2000 {
        let mut corrupt = bytes.clone();
        // occasionally truncate, then mutate 1..=8 bytes
        if rng.usize(4) == 0 {
            corrupt.truncate(rng.usize(corrupt.len()));
        }
        if !corrupt.is_empty() {
            for _ in 0..1 + rng.usize(8) {
                let at = rng.usize(corrupt.len());
                corrupt[at] = rng.next() as u8;
            }
        }
        if let Some(got) = exercise(&corrupt) {
            assert_eq!(got, expect, "mutated image diverged from oracle");
        }
    }
}

/// Bit flips confined to one section corrupt *only* that section: the
/// others stay loadable and `repair_image` rebuilds exactly the
/// damaged one (fault isolation, the per-section analogue of the
/// cache-entry quarantine path).
#[test]
fn single_section_flips_stay_isolated_and_repairable() {
    let intact = sample_image_bytes();
    let image = LlvaImage::parse(intact.clone()).expect("parses");
    let kinds = image.sections();
    let mut rng = Rng::new(0x5ec7_10f5);
    for (i, &kind) in kinds.iter().enumerate() {
        // find a byte inside this section by corrupting until exactly
        // this section reports damage (deterministic: seeded probes)
        let mut hit = false;
        for _ in 0..512 {
            let mut corrupt = intact.clone();
            let at = rng.usize(corrupt.len());
            corrupt[at] ^= 1 << rng.usize(8);
            let Ok(img) = LlvaImage::parse(corrupt.clone()) else {
                continue; // header/table damage: rejected wholesale
            };
            let bad: Vec<SectionKind> =
                kinds.iter().copied().filter(|&k| !img.section_ok(k)).collect();
            if bad != [kind] {
                continue;
            }
            hit = true;
            if kind == SectionKind::Bytecode {
                // the bytecode section is the source of truth the
                // other sections rebuild from; losing it is fatal
                assert!(llva::engine::repair_image(&corrupt).is_err());
                break;
            }
            let (repaired, rebuilt) =
                llva::engine::repair_image(&corrupt).expect("repairable");
            assert_eq!(rebuilt, vec![kind], "only the damaged section rebuilds");
            let fixed = LlvaImage::parse(repaired).expect("repaired image parses");
            assert!(fixed.sections().iter().all(|&k| fixed.section_ok(k)));
            break;
        }
        assert!(hit, "no probe landed in section {i} after 512 tries");
    }
}
