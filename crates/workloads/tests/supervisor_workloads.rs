//! Acceptance sweep for the tiered execution supervisor (ISSUE 5):
//! every Table 2 workload must complete with the structural
//! interpreter's outcome even when fast tiers are deliberately killed.
//!
//! The kill set comes from `LLVA_KILL_TIER` (comma-separated tier
//! names, the same env the CI fault-injection matrix sets), and the
//! translated tier's target from `LLVA_KILL_ISA` (`x86`, `sparc`, or
//! `riscv`; default `x86` — the CI matrix sweeps the others so every
//! back end sits under the same degradation ladder); when unset,
//! the test sweeps every meaningful degradation depth itself: no kill,
//! `translated`, `translated,traced`, and
//! `translated,traced,fast-interp`. Kills are cumulative ladder
//! prefixes — killing only a lower tier would be masked by the healthy
//! tier above it answering first.
//!
//! For each workload × kill set the test asserts:
//! * the outcome equals the structural interpreter's (zero wrong
//!   answers, zero unhandled panics — every injected panic is caught),
//! * the `IncidentLog` records exactly one quarantine + fallback per
//!   killed tier for the entry function,
//! * a second run serves the same answer from quarantine skips without
//!   any new incident.

use llva_core::layout::TargetConfig;
use llva_engine::llee::TargetIsa;
use llva_engine::supervisor::{kills_from_env, Supervisor, Tier, TierKill, TierOutcome};
use llva_engine::Interpreter;

const FUEL: u64 = 2_000_000_000;

/// The translated tier's back end: `LLVA_KILL_ISA`, default x86.
fn isa_from_env() -> TargetIsa {
    match std::env::var("LLVA_KILL_ISA").ok().as_deref() {
        Some("sparc") => TargetIsa::Sparc,
        Some("riscv") => TargetIsa::Riscv,
        _ => TargetIsa::X86,
    }
}

/// The kill sets to sweep: from the environment if set, else every
/// cumulative ladder prefix.
fn kill_sets() -> Vec<Vec<TierKill>> {
    let from_env = kills_from_env();
    if !from_env.is_empty() {
        return vec![from_env];
    }
    vec![
        vec![],
        vec![TierKill::panic(Tier::Translated)],
        vec![
            TierKill::panic(Tier::Translated),
            TierKill::panic(Tier::Traced),
        ],
        vec![
            TierKill::panic(Tier::Translated),
            TierKill::panic(Tier::Traced),
            TierKill::panic(Tier::FastInterp),
        ],
    ]
}

#[test]
fn workloads_survive_tier_kills_with_interpreter_outcomes() {
    for kills in kill_sets() {
        let killed: Vec<Tier> = kills.iter().map(|k| k.tier).collect();
        for w in llva_workloads::all() {
            let module = w.compile(TargetConfig::default());

            let mut interp = Interpreter::new(&module);
            interp.set_fuel(FUEL);
            let expected = interp.run("main", &[]).unwrap_or_else(|e| {
                panic!("{}: structural interpreter must complete: {e}", w.name)
            });

            let mut sup = Supervisor::new(module.clone(), isa_from_env());
            sup.set_fuel(FUEL);
            for &kill in &kills {
                sup.arm_kill(kill);
            }
            let run = sup
                .run("main", &[])
                .unwrap_or_else(|e| panic!("{} (killed {killed:?}): {e}", w.name));
            assert_eq!(
                run.outcome,
                TierOutcome::Value(expected),
                "{} (killed {killed:?}): degraded outcome differs from the interpreter",
                w.name
            );
            assert_eq!(run.degraded, !kills.is_empty(), "{}", w.name);

            // exactly one quarantine + fallback incident per killed tier
            let log = sup.incident_log();
            assert_eq!(
                log.len(),
                kills.len(),
                "{} (killed {killed:?}): expected one incident per kill, log: {}",
                w.name,
                log.summary()
            );
            for (incident, kill) in log.incidents().iter().zip(&kills) {
                assert_eq!(incident.tier, kill.tier, "{}", w.name);
                assert_eq!(incident.function, "main", "{}", w.name);
                assert!(incident.injected, "{}: kill incidents are injected", w.name);
                assert!(
                    sup.is_quarantined("main", kill.tier),
                    "{}: killed tier must be quarantined",
                    w.name
                );
            }

            // the quarantine holds: same answer, no new incidents
            let again = sup.run("main", &[]).unwrap_or_else(|e| {
                panic!("{} (killed {killed:?}) second run: {e}", w.name)
            });
            assert_eq!(again.outcome, TierOutcome::Value(expected), "{}", w.name);
            assert_eq!(
                sup.incident_log().len(),
                kills.len(),
                "{}: quarantine skips must not re-fault",
                w.name
            );
        }
    }
}
