//! Global dead-code elimination: drop bodies of unreferenced internal
//! functions (link-time whole-program cleanup, §4.2).
//!
//! Reachability starts from external (exported) functions and globals
//! and follows `FunctionAddr`/`GlobalAddr` constants through function
//! bodies and global initializers. Unreachable internal functions have
//! their bodies discarded (handles stay valid); dead internal globals
//! are currently kept as data (their bytes are cheap) but reported.

use crate::pass::ModulePass;
use llva_core::function::Linkage;
use llva_core::module::{FuncId, GlobalId, Initializer, Module};
use llva_core::value::{Constant, ValueData};
use std::collections::HashSet;

/// The global-DCE pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalDce {
    dropped: usize,
}

impl GlobalDce {
    /// Creates the pass.
    pub fn new() -> GlobalDce {
        GlobalDce::default()
    }

    /// Function bodies dropped by the last run.
    pub fn dropped(&self) -> usize {
        self.dropped
    }
}

impl ModulePass for GlobalDce {
    fn name(&self) -> &'static str {
        "globaldce"
    }

    fn run(&mut self, module: &mut Module) -> bool {
        self.dropped = 0;
        let (live_funcs, _live_globals) = reachable(module);
        for fid in module.function_ids() {
            let func = module.function(fid);
            if func.is_declaration() || func.linkage() == Linkage::External {
                continue;
            }
            if !live_funcs.contains(&fid) {
                module.discard_function_body(fid);
                self.dropped += 1;
            }
        }
        self.dropped > 0
    }
}

/// Computes the sets of functions and globals reachable from exported
/// symbols.
pub fn reachable(module: &Module) -> (HashSet<FuncId>, HashSet<GlobalId>) {
    let mut live_funcs: HashSet<FuncId> = HashSet::new();
    let mut live_globals: HashSet<GlobalId> = HashSet::new();
    let mut work: Vec<FuncId> = Vec::new();
    for (fid, f) in module.functions() {
        if f.linkage() == Linkage::External && !f.is_declaration() {
            live_funcs.insert(fid);
            work.push(fid);
        }
    }
    let mut gwork: Vec<GlobalId> = Vec::new();
    for (gid, g) in module.globals() {
        if g.linkage() == Linkage::External {
            live_globals.insert(gid);
            gwork.push(gid);
        }
    }
    loop {
        let mut progressed = false;
        while let Some(fid) = work.pop() {
            progressed = true;
            let func = module.function(fid);
            for i in 0..func.num_values() {
                let v = llva_core::value::ValueId::from_index(i);
                if let ValueData::Const(c) = func.value(v) {
                    match c {
                        Constant::FunctionAddr { func: f2, .. } if live_funcs.insert(*f2) => {
                            work.push(*f2);
                        }
                        Constant::GlobalAddr { global, .. } if live_globals.insert(*global) => {
                            gwork.push(*global);
                        }
                        _ => {}
                    }
                }
            }
        }
        while let Some(gid) = gwork.pop() {
            progressed = true;
            walk_init(module.global(gid).init(), &mut |c| match c {
                Constant::FunctionAddr { func: f2, .. } if live_funcs.insert(*f2) => {
                    work.push(*f2);
                }
                Constant::GlobalAddr { global, .. } if live_globals.insert(*global) => {
                    gwork.push(*global);
                }
                _ => {}
            });
        }
        if !progressed {
            break;
        }
        if work.is_empty() && gwork.is_empty() {
            break;
        }
    }
    (live_funcs, live_globals)
}

fn walk_init(init: &Initializer, f: &mut impl FnMut(&Constant)) {
    match init {
        Initializer::Scalar(c) => f(c),
        Initializer::Array(items) | Initializer::Struct(items) => {
            for i in items {
                walk_init(i, f);
            }
        }
        Initializer::Zero | Initializer::Bytes(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::internalize::Internalize;
    use crate::pass::PassManager;

    #[test]
    fn drops_unreferenced_internal_function() {
        let mut m = llva_core::parser::parse_module(
            r#"
int %unused(int %x) {
entry:
    ret int %x
}

int %used(int %x) {
entry:
    %r = add int %x, 1
    ret int %r
}

int %main() {
entry:
    %v = call int %used(int 1)
    ret int %v
}
"#,
        )
        .expect("parses");
        let mut pm = PassManager::new();
        pm.add(Internalize::new(&["main"])).add(GlobalDce::new());
        pm.run(&mut m);
        let unused = m.function(m.function_by_name("unused").expect("unused"));
        assert!(unused.is_declaration(), "body dropped");
        let used = m.function(m.function_by_name("used").expect("used"));
        assert!(!used.is_declaration(), "transitively live body kept");
    }

    #[test]
    fn function_referenced_via_global_initializer_is_live() {
        let mut m = llva_core::parser::parse_module(
            r#"
int %handler(int %x) {
entry:
    ret int %x
}

@table = global int (int)* %handler

int %main() {
entry:
    %p = load int (int)** @table
    %v = call int %p(int 3)
    ret int %v
}
"#,
        )
        .expect("parses");
        let mut pm = PassManager::new();
        pm.add(Internalize::new(&["main"])).add(GlobalDce::new());
        pm.run(&mut m);
        let handler = m.function(m.function_by_name("handler").expect("handler"));
        assert!(!handler.is_declaration(), "reachable through @table");
    }

    #[test]
    fn external_functions_never_dropped() {
        let mut m = llva_core::parser::parse_module(
            r#"
int %api(int %x) {
entry:
    ret int %x
}
"#,
        )
        .expect("parses");
        let mut pass = GlobalDce::new();
        assert!(!pass.run(&mut m));
        let api = m.function(m.function_by_name("api").expect("api"));
        assert!(!api.is_declaration());
    }
}
