//! Code-generation helpers shared by all three back ends.

pub use crate::peephole::{self, PeepholeConfig, PeepholeStats};

use llva_core::function::Function;
use llva_core::instruction::{InstId, Opcode};
use llva_core::layout::TargetConfig;
use llva_core::module::{Initializer, Module};
use llva_core::types::{TypeId, TypeKind};
use llva_core::value::{Constant, ValueId};
use llva_machine::memory::GLOBAL_BASE;
use llva_machine::x86::FUNC_TAG;
use std::collections::{HashMap, HashSet};

/// The globals laid out in simulated memory: per-global addresses plus
/// the initialized byte image starting at [`GLOBAL_BASE`].
#[derive(Debug, Clone)]
pub struct GlobalImage {
    /// Address of each global, indexed by `GlobalId` index.
    pub addrs: Vec<u64>,
    /// Initialized bytes, to be copied to [`GLOBAL_BASE`].
    pub image: Vec<u8>,
    /// First free address after the globals (heap base).
    pub heap_base: u64,
}

/// Lays out and renders every global for the module's target.
pub fn layout_globals(module: &Module) -> GlobalImage {
    let cfg = module.target();
    let tt = module.types();
    let mut addrs = Vec::with_capacity(module.num_globals());
    let mut cursor = GLOBAL_BASE;
    for (_, g) in module.globals() {
        let align = cfg.align_of(tt, g.value_type()).max(8);
        cursor = (cursor + align - 1) & !(align - 1);
        addrs.push(cursor);
        cursor += cfg.size_of(tt, g.value_type());
    }
    let image_len = (cursor - GLOBAL_BASE) as usize;
    let mut image = vec![0u8; image_len];
    for (i, (_, g)) in module.globals().enumerate() {
        let off = (addrs[i] - GLOBAL_BASE) as usize;
        render_init(
            module,
            &cfg,
            g.init(),
            g.value_type(),
            &addrs,
            &mut image[off..],
        );
    }
    GlobalImage {
        addrs,
        image,
        heap_base: (cursor + 15) & !15,
    }
}

fn render_init(
    module: &Module,
    cfg: &TargetConfig,
    init: &Initializer,
    ty: TypeId,
    addrs: &[u64],
    out: &mut [u8],
) {
    let tt = module.types();
    match init {
        Initializer::Zero => {}
        Initializer::Bytes(bytes) => {
            let n = bytes.len().min(out.len());
            out[..n].copy_from_slice(&bytes[..n]);
        }
        Initializer::Scalar(c) => {
            let (bits, size) = constant_bits(module, cfg, c, ty, addrs);
            write_scalar(cfg, &mut out[..size as usize], bits);
        }
        Initializer::Array(items) => {
            let TypeKind::Array { elem, .. } = tt.kind(ty).clone() else {
                panic!("array initializer for non-array global");
            };
            let stride = cfg.size_of(tt, elem) as usize;
            for (i, item) in items.iter().enumerate() {
                render_init(module, cfg, item, elem, addrs, &mut out[i * stride..]);
            }
        }
        Initializer::Struct(items) => {
            let fields = tt
                .struct_fields(ty)
                .expect("struct initializer needs a defined struct")
                .to_vec();
            for (i, (item, &fty)) in items.iter().zip(&fields).enumerate() {
                let off = cfg.field_offset(tt, ty, i) as usize;
                render_init(module, cfg, item, fty, addrs, &mut out[off..]);
            }
        }
    }
}

/// The raw bit pattern and byte size of a scalar constant as stored in
/// memory for the given target.
pub fn constant_bits(
    module: &Module,
    cfg: &TargetConfig,
    c: &Constant,
    ty: TypeId,
    global_addrs: &[u64],
) -> (u64, u64) {
    let tt = module.types();
    match c {
        Constant::Bool(b) => (u64::from(*b), 1),
        Constant::Int { bits, .. } => (*bits, cfg.size_of(tt, ty)),
        Constant::Float { bits, .. } => (*bits, cfg.size_of(tt, ty)),
        Constant::Null(_) => (0, cfg.pointer_size.bytes()),
        Constant::GlobalAddr { global, .. } => (
            global_addrs[global.index()],
            cfg.pointer_size.bytes(),
        ),
        Constant::FunctionAddr { func, .. } => (
            FUNC_TAG | func.index() as u64,
            cfg.pointer_size.bytes(),
        ),
        Constant::Undef(_) => (0, cfg.size_of(tt, ty)),
    }
}

fn write_scalar(cfg: &TargetConfig, out: &mut [u8], bits: u64) {
    let n = out.len();
    match cfg.endianness {
        llva_core::layout::Endianness::Little => {
            for (i, b) in out.iter_mut().enumerate() {
                *b = (bits >> (8 * i)) as u8;
            }
        }
        llva_core::layout::Endianness::Big => {
            for (i, b) in out.iter_mut().enumerate() {
                *b = (bits >> (8 * (n - 1 - i))) as u8;
            }
        }
    }
}

/// The canonical 64-bit register representation of a constant: signed
/// integers sign-extended, everything else zero-extended.
pub fn canonical_const(module: &Module, c: &Constant) -> u64 {
    let tt = module.types();
    match c {
        Constant::Bool(b) => u64::from(*b),
        Constant::Int { ty, bits } => {
            let w = tt.int_bits(*ty).expect("integer type");
            if tt.is_signed_integer(*ty) {
                llva_core::eval::sign_extend(*bits, w) as u64
            } else {
                llva_core::eval::truncate(*bits, w)
            }
        }
        Constant::Float { bits, .. } => *bits,
        Constant::Null(_) => 0,
        Constant::GlobalAddr { .. } | Constant::FunctionAddr { .. } => {
            panic!("address constants are materialized symbolically")
        }
        Constant::Undef(_) => 0,
    }
}

/// Comparisons whose single use is the conditional branch terminating
/// the same block; both back ends fuse these into `cmp` + `jcc`.
pub fn fused_compares(func: &Function) -> HashSet<InstId> {
    let mut use_counts: HashMap<ValueId, usize> = HashMap::new();
    for (_, i) in func.inst_iter() {
        for &op in func.inst(i).operands() {
            *use_counts.entry(op).or_insert(0) += 1;
        }
    }
    let mut fused = HashSet::new();
    for &block in func.block_order() {
        let Some(term) = func.terminator(block) else {
            continue;
        };
        let term_inst = func.inst(term);
        if term_inst.opcode() != Opcode::Br || term_inst.operands().len() != 1 {
            continue;
        }
        let cond = term_inst.operands()[0];
        let Some(def) = inst_defining(func, cond) else {
            continue;
        };
        if func.inst_parent(def) == Some(block)
            && func.inst(def).opcode().is_comparison()
            && use_counts.get(&cond) == Some(&1)
        {
            fused.insert(def);
        }
    }
    fused
}

/// The instruction defining `v`, if it is an instruction result.
pub fn inst_defining(func: &Function, v: ValueId) -> Option<InstId> {
    match func.value(v) {
        llva_core::value::ValueData::Inst { inst, .. } => Some(*inst),
        _ => None,
    }
}

/// Static use counts of every value in a function (used by the SPARC
/// back end's register assignment).
pub fn use_counts(func: &Function) -> HashMap<ValueId, usize> {
    let mut counts: HashMap<ValueId, usize> = HashMap::new();
    for (_, i) in func.inst_iter() {
        for &op in func.inst(i).operands() {
            *counts.entry(op).or_insert(0) += 1;
        }
    }
    counts
}

/// Memory access width and signedness for loads/stores of `ty`.
pub fn access_of(module: &Module, ty: TypeId) -> (llva_machine::Width, bool) {
    let tt = module.types();
    let cfg = module.target();
    let size = match tt.kind(ty) {
        TypeKind::Bool => 1,
        TypeKind::Pointer(_) => cfg.pointer_size.bytes(),
        _ => cfg.size_of(tt, ty),
    };
    (
        llva_machine::Width::from_bytes(size),
        tt.is_signed_integer(ty),
    )
}

/// Classification of an LLVA scalar type for the code generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValClass {
    /// Integer, boolean, or pointer — lives in GPRs.
    Int,
    /// `float` — 32-bit floating point.
    F32,
    /// `double` — 64-bit floating point.
    F64,
}

/// Classifies `ty`.
pub fn classify(module: &Module, ty: TypeId) -> ValClass {
    match module.types().kind(ty) {
        TypeKind::Float => ValClass::F32,
        TypeKind::Double => ValClass::F64,
        _ => ValClass::Int,
    }
}

/// Whether a direct-call target is an intrinsic, and which.
pub fn intrinsic_target(
    module: &Module,
    func: &Function,
    callee: ValueId,
) -> Option<llva_core::intrinsics::Intrinsic> {
    let Constant::FunctionAddr { func: f, .. } = func.value_as_const(callee)? else {
        return None;
    };
    llva_core::intrinsics::Intrinsic::by_name(module.function(*f).name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_core::layout::{Endianness, TargetConfig};

    #[test]
    fn global_layout_and_image() {
        let mut m = Module::new("m", TargetConfig::ia32());
        let int = m.types_mut().int();
        let arr = m.types_mut().array_of(int, 3);
        m.add_global(
            "a",
            arr,
            Initializer::Array(vec![
                Initializer::Scalar(Constant::Int { ty: int, bits: 1 }),
                Initializer::Scalar(Constant::Int { ty: int, bits: 2 }),
                Initializer::Scalar(Constant::Int {
                    ty: int,
                    bits: 0x0102_0304,
                }),
            ]),
            false,
        );
        m.add_global("b", int, Initializer::Zero, false);
        let img = layout_globals(&m);
        assert_eq!(img.addrs[0], GLOBAL_BASE);
        assert!(img.addrs[1] >= img.addrs[0] + 12);
        // little-endian rendering
        assert_eq!(&img.image[0..4], &[1, 0, 0, 0]);
        assert_eq!(&img.image[8..12], &[4, 3, 2, 1]);
        assert!(img.heap_base > img.addrs[1]);
    }

    #[test]
    fn big_endian_scalars() {
        let mut m = Module::new("m", TargetConfig::sparc_v9());
        let int = m.types_mut().int();
        m.add_global(
            "x",
            int,
            Initializer::Scalar(Constant::Int {
                ty: int,
                bits: 0x0102_0304,
            }),
            false,
        );
        let img = layout_globals(&m);
        assert_eq!(&img.image[0..4], &[1, 2, 3, 4]);
    }

    #[test]
    fn global_addr_in_initializer_resolves() {
        let mut m = Module::new("m", TargetConfig::ia32());
        let int = m.types_mut().int();
        let intp = m.types_mut().pointer_to(int);
        let g0 = m.add_global("target", int, Initializer::Zero, false);
        m.add_global(
            "ptr",
            intp,
            Initializer::Scalar(Constant::GlobalAddr {
                global: g0,
                ty: intp,
            }),
            false,
        );
        let img = layout_globals(&m);
        let off = (img.addrs[1] - GLOBAL_BASE) as usize;
        let stored = u32::from_le_bytes(img.image[off..off + 4].try_into().unwrap());
        assert_eq!(u64::from(stored), img.addrs[0]);
    }

    #[test]
    fn fused_compare_detection() {
        let m = llva_core::parser::parse_module(
            r#"
int %f(int %x) {
entry:
    %c = setlt int %x, 10
    br bool %c, label %a, label %b
a:
    ret int 1
b:
    %c2 = setgt int %x, 0
    %d = cast bool %c2 to int
    br bool %c2, label %a, label %a
}
"#,
        )
        .expect("parses");
        let f = m.function(m.function_by_name("f").expect("f"));
        let fused = fused_compares(f);
        // %c is fused (single use by same-block br); %c2 is not (2 uses)
        assert_eq!(fused.len(), 1);
    }

    #[test]
    fn canonical_const_signedness() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let uint = m.types_mut().uint();
        let neg = Constant::Int {
            ty: int,
            bits: 0xFFFF_FFFF,
        };
        assert_eq!(canonical_const(&m, &neg), u64::MAX);
        let big = Constant::Int {
            ty: uint,
            bits: 0xFFFF_FFFF,
        };
        assert_eq!(canonical_const(&m, &big), 0xFFFF_FFFF);
    }

    #[test]
    fn access_width_follows_target_pointer_size() {
        let mut m = Module::new("m", TargetConfig::ia32());
        let int = m.types_mut().int();
        let p = m.types_mut().pointer_to(int);
        assert_eq!(access_of(&m, p).0, llva_machine::Width::B4);
        m.set_target(TargetConfig::sparc_v9());
        assert_eq!(access_of(&m, p).0, llva_machine::Width::B8);
        let _ = Endianness::Little;
    }
}
