//! Dead code elimination.
//!
//! An instruction is removable when its result is unused and executing it
//! has no observable effect. The paper's `ExceptionsEnabled` attribute
//! (§3.3) is load-bearing here: a `div` or `load` whose exceptions are
//! *enabled* may trap and therefore cannot be deleted even if its result
//! is dead, while the same instruction marked `[noexc]` can. This is the
//! "expose non-excepting operations to the translator" benefit, and the
//! `ablation` bench quantifies it.

use crate::pass::ModulePass;
use llva_core::instruction::Opcode;
use llva_core::module::Module;
use std::collections::HashMap;

/// The DCE pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dce {
    removed: usize,
}

impl Dce {
    /// Creates the pass.
    pub fn new() -> Dce {
        Dce::default()
    }

    /// Instructions removed by the last run.
    pub fn removed(&self) -> usize {
        self.removed
    }
}

impl ModulePass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&mut self, module: &mut Module) -> bool {
        self.removed = 0;
        for fid in module.function_ids() {
            let func = module.function_mut(fid);
            if func.is_declaration() {
                continue;
            }
            loop {
                // Count uses of every value once per sweep.
                let mut use_counts: HashMap<llva_core::value::ValueId, usize> = HashMap::new();
                for (_, i) in func.inst_iter() {
                    for &op in func.inst(i).operands() {
                        *use_counts.entry(op).or_insert(0) += 1;
                    }
                }
                let mut dead = Vec::new();
                for (_, i) in func.inst_iter() {
                    let inst = func.inst(i);
                    if inst.is_terminator() {
                        continue;
                    }
                    if has_side_effects(inst) {
                        continue;
                    }
                    let unused = match func.inst_result(i) {
                        Some(r) => use_counts.get(&r).copied().unwrap_or(0) == 0,
                        None => true,
                    };
                    if unused {
                        dead.push(i);
                    }
                }
                if dead.is_empty() {
                    break;
                }
                self.removed += dead.len();
                for i in dead {
                    func.remove_inst(i);
                }
            }
        }
        self.removed > 0
    }
}

fn has_side_effects(inst: &llva_core::instruction::Instruction) -> bool {
    match inst.opcode() {
        // Stores and calls always have effects.
        Opcode::Store | Opcode::Call | Opcode::Invoke => true,
        // A trapping instruction with exceptions enabled is observable
        // even when its result is dead (§3.3).
        Opcode::Div | Opcode::Rem | Opcode::Load => inst.exceptions_enabled(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_core::builder::FunctionBuilder;
    use llva_core::layout::TargetConfig;
    use llva_core::verifier::verify_module;

    fn count_insts(m: &Module, name: &str) -> usize {
        m.function(m.function_by_name(name).expect("fn")).num_insts()
    }

    #[test]
    fn removes_dead_arithmetic() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let x = b.func().args()[0];
        let _dead = b.add(x, x);
        let _dead2 = b.mul(x, x);
        b.ret(Some(x));
        assert_eq!(count_insts(&m, "f"), 3);
        let mut pass = Dce::new();
        assert!(pass.run(&mut m));
        assert_eq!(pass.removed(), 2);
        assert_eq!(count_insts(&m, "f"), 1);
        verify_module(&m).expect("verifies");
    }

    #[test]
    fn removes_transitively_dead_chains() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let x = b.func().args()[0];
        let a = b.add(x, x);
        let c = b.mul(a, a); // c uses a; both dead
        let _ = c;
        b.ret(Some(x));
        let mut pass = Dce::new();
        assert!(pass.run(&mut m));
        assert_eq!(pass.removed(), 2);
        assert_eq!(count_insts(&m, "f"), 1);
    }

    #[test]
    fn trapping_div_survives_when_exceptions_enabled() {
        // paper §3.3: div has ExceptionsEnabled=true by default
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int, int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let (x, y) = (b.func().args()[0], b.func().args()[1]);
        let _dead_div = b.div(x, y);
        b.ret(Some(x));
        let mut pass = Dce::new();
        assert!(!pass.run(&mut m));
        assert_eq!(count_insts(&m, "f"), 2);
    }

    #[test]
    fn noexc_div_is_removable() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int, int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let (x, y) = (b.func().args()[0], b.func().args()[1]);
        let _dead_div = b.div(x, y);
        b.ret(Some(x));
        let div_id = m.function(f).block(e).insts()[0];
        m.function_mut(f).inst_mut(div_id).set_exceptions_enabled(false);
        let mut pass = Dce::new();
        assert!(pass.run(&mut m));
        assert_eq!(count_insts(&m, "f"), 1);
    }

    #[test]
    fn stores_and_calls_survive() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let void = m.types_mut().void();
        let callee = m.add_function("effectful", void, vec![]);
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let x = b.func().args()[0];
        let slot = b.alloca(int);
        b.store(x, slot);
        b.call(callee, vec![]);
        b.ret(Some(x));
        let mut pass = Dce::new();
        // the alloca's result is used by the store, the store and the call
        // are effectful — nothing to remove.
        assert!(!pass.run(&mut m));
        assert_eq!(count_insts(&m, "f"), 4);
    }
}
