//! Function inlining (link-time interprocedural optimization, §4.2).
//!
//! Inlines small direct calls. The paper motivates performing this on
//! the V-ISA at link time, "the first time that most or all modules of
//! an application are simultaneously available": virtual function
//! dispatch becomes "a pair of loads … followed by a call
//! (optimizations can eliminate some of these in the static compiler,
//! translator, or both)".
//!
//! Conservative applicability rules: the callee must be defined, small,
//! non-recursive, contain no `invoke`/`unwind`, and keep its `alloca`s
//! in the entry block (they are re-homed into the caller's entry).

use crate::pass::ModulePass;
use llva_core::function::BlockId;
use llva_core::instruction::{InstId, Instruction, Opcode};
use llva_core::module::{FuncId, Module};
use llva_core::types::TypeKind;
use llva_core::value::{Constant, ValueData, ValueId};
use std::collections::HashMap;

/// The inlining pass.
#[derive(Debug, Clone, Copy)]
pub struct Inline {
    threshold: usize,
    inlined: usize,
}

impl Default for Inline {
    fn default() -> Self {
        Inline::new()
    }
}

impl Inline {
    /// Creates the pass with the default size threshold.
    pub fn new() -> Inline {
        Inline {
            threshold: 40,
            inlined: 0,
        }
    }

    /// Creates the pass with a custom callee-size threshold
    /// (in LLVA instructions).
    pub fn with_threshold(threshold: usize) -> Inline {
        Inline {
            threshold,
            inlined: 0,
        }
    }

    /// Call sites inlined by the last run.
    pub fn inlined(&self) -> usize {
        self.inlined
    }
}

impl ModulePass for Inline {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run(&mut self, module: &mut Module) -> bool {
        self.inlined = 0;
        // Iterate until no more sites qualify (bounded: inlining into a
        // function grows it, eventually crossing thresholds).
        while let Some((caller, call)) = find_site(module, self.threshold) {
            inline_site(module, caller, call);
            self.inlined += 1;
            if self.inlined > 10_000 {
                break; // safety valve
            }
        }
        self.inlined > 0
    }
}

/// Finds one inlinable call site.
fn find_site(module: &Module, threshold: usize) -> Option<(FuncId, InstId)> {
    for (caller_id, caller) in module.functions() {
        if caller.is_declaration() {
            continue;
        }
        for (_, inst_id) in caller.inst_iter() {
            let inst = caller.inst(inst_id);
            if inst.opcode() != Opcode::Call {
                continue;
            }
            let callee_v = inst.operands()[0];
            let Some(Constant::FunctionAddr { func: callee_id, .. }) =
                caller.value_as_const(callee_v)
            else {
                continue;
            };
            let callee_id = *callee_id;
            if callee_id == caller_id {
                continue; // direct recursion
            }
            let callee = module.function(callee_id);
            if callee.is_declaration() || callee.num_insts() > threshold {
                continue;
            }
            if llva_core::intrinsics::is_intrinsic_name(callee.name()) {
                continue;
            }
            if !inlinable(module, callee_id) {
                continue;
            }
            return Some((caller_id, inst_id));
        }
    }
    None
}

fn inlinable(module: &Module, callee_id: FuncId) -> bool {
    let callee = module.function(callee_id);
    let entry = callee.entry_block();
    for (block, inst_id) in callee.inst_iter() {
        let inst = callee.inst(inst_id);
        match inst.opcode() {
            Opcode::Invoke | Opcode::Unwind => return false,
            Opcode::Alloca if block != entry => return false,
            Opcode::Call => {
                // indirect recursion check: calling self through a constant
                if let Some(Constant::FunctionAddr { func, .. }) =
                    callee.value_as_const(inst.operands()[0])
                {
                    if *func == callee_id {
                        return false;
                    }
                }
            }
            _ => {}
        }
    }
    true
}

/// Inlines one call site. The call must satisfy [`find_site`]'s checks.
fn inline_site(module: &mut Module, caller_id: FuncId, call: InstId) {
    let void = module.types_mut().void();

    // Snapshot callee structure.
    let (callee_id, call_args, call_block, ret_is_void) = {
        let caller = module.function(caller_id);
        let inst = caller.inst(call);
        let Some(Constant::FunctionAddr { func, .. }) = caller.value_as_const(inst.operands()[0])
        else {
            unreachable!("find_site guarantees a direct call");
        };
        let callee_id = *func;
        let args = inst.operands()[1..].to_vec();
        let block = caller.inst_parent(call).expect("call is attached");
        let ret_void = matches!(
            module.types().kind(module.function(callee_id).return_type()),
            TypeKind::Void
        );
        (callee_id, args, block, ret_void)
    };
    let callee = module.function(callee_id).clone();

    // 1. Split the call block: everything after the call moves to `cont`.
    let cont = module
        .function_mut(caller_id)
        .add_block(format!("inl.cont.{}", call.index()));
    {
        let caller = module.function_mut(caller_id);
        let insts = caller.block(call_block).insts().to_vec();
        let pos = insts
            .iter()
            .position(|&i| i == call)
            .expect("call in its block");
        for &i in &insts[pos + 1..] {
            caller.remove_inst(i);
            caller.reattach_inst(cont, i);
        }
        // successors' phis now flow from `cont`
        for succ in caller.successors(cont) {
            let phis: Vec<_> = caller
                .block(succ)
                .insts()
                .iter()
                .copied()
                .filter(|&i| caller.inst(i).opcode() == Opcode::Phi)
                .collect();
            for phi in phis {
                for pb in caller.inst_mut(phi).block_operands_mut() {
                    if *pb == call_block {
                        *pb = cont;
                    }
                }
            }
        }
    }

    // 2. Create one caller block per callee block.
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    for &cb in callee.block_order() {
        let nb = module.function_mut(caller_id).add_block(format!(
            "inl.{}.{}",
            callee.name(),
            callee.block(cb).name()
        ));
        block_map.insert(cb, nb);
    }

    // 3. Map callee values -> caller values (args and constants now;
    //    instruction results as they are created).
    let mut value_map: HashMap<ValueId, ValueId> = HashMap::new();
    for (i, &a) in callee.args().iter().enumerate() {
        value_map.insert(a, call_args[i]);
    }

    // Pass A: create instructions with empty operands.
    let caller_entry = module.function(caller_id).entry_block();
    let mut created: Vec<(InstId, InstId)> = Vec::new(); // (new, old)
    let mut returns: Vec<(BlockId, Option<ValueId>)> = Vec::new(); // filled pass B
    for &cb in callee.block_order() {
        let nb = block_map[&cb];
        for &old_id in callee.block(cb).insts() {
            let old = callee.inst(old_id);
            if old.opcode() == Opcode::Ret {
                // becomes a br to cont; return value recorded in pass B
                let (new_id, _) = module.function_mut(caller_id).append_inst(
                    nb,
                    Instruction::new(Opcode::Br, void, vec![], vec![cont]),
                    void,
                );
                created.push((new_id, old_id));
                continue;
            }
            let mut inst = Instruction::new(old.opcode(), old.result_type(), vec![], vec![]);
            inst.set_exceptions_enabled(old.exceptions_enabled());
            // allocas are re-homed to the caller's entry block head
            let target = if old.opcode() == Opcode::Alloca {
                caller_entry
            } else {
                nb
            };
            let (new_id, result) = if old.opcode() == Opcode::Alloca {
                module
                    .function_mut(caller_id)
                    .insert_inst_at(target, 0, inst, void)
            } else {
                module.function_mut(caller_id).append_inst(target, inst, void)
            };
            if let (Some(old_r), Some(new_r)) = (callee.inst_result(old_id), result) {
                value_map.insert(old_r, new_r);
            }
            created.push((new_id, old_id));
        }
    }

    // Pass B: patch operands & blocks.
    for (new_id, old_id) in &created {
        let old = callee.inst(*old_id);
        if old.opcode() == Opcode::Ret {
            let v = old
                .operands()
                .first()
                .map(|&rv| remap_value(module, caller_id, &callee, &mut value_map, rv));
            let nb = module.function(caller_id).inst_parent(*new_id).expect("br attached");
            returns.push((nb, v));
            continue;
        }
        let ops: Vec<ValueId> = old
            .operands()
            .iter()
            .map(|&v| remap_value(module, caller_id, &callee, &mut value_map, v))
            .collect();
        let blocks: Vec<BlockId> = old.block_operands().iter().map(|b| block_map[b]).collect();
        let caller = module.function_mut(caller_id);
        caller.inst_mut(*new_id).set_operands(ops);
        caller.inst_mut(*new_id).set_block_operands(blocks);
    }

    // 4. Replace the call: branch into the inlined entry; merge returns.
    {
        let inl_entry = block_map[&callee.entry_block()];
        let call_result = module.function(caller_id).inst_result(call);
        let caller = module.function_mut(caller_id);
        if let Some(result) = call_result {
            let merged: ValueId = if ret_is_void {
                unreachable!("void call has no result")
            } else if returns.len() == 1 {
                returns[0].1.expect("non-void ret has a value")
            } else {
                // phi at the head of cont
                let (values, blocks): (Vec<_>, Vec<_>) = returns
                    .iter()
                    .map(|(b, v)| (v.expect("non-void ret"), *b))
                    .unzip();
                let ret_ty = callee.return_type();
                let phi = Instruction::new(Opcode::Phi, ret_ty, values, blocks);
                let (_, pv) = caller.insert_inst_at(cont, 0, phi, void);
                pv.expect("phi produces a value")
            };
            caller.replace_all_uses(result, merged);
        }
        caller.remove_inst(call);
        caller.append_inst(
            call_block,
            Instruction::new(Opcode::Br, void, vec![], vec![inl_entry]),
            void,
        );
    }
}

fn remap_value(
    module: &mut Module,
    caller_id: FuncId,
    callee: &llva_core::function::Function,
    value_map: &mut HashMap<ValueId, ValueId>,
    v: ValueId,
) -> ValueId {
    if let Some(&m) = value_map.get(&v) {
        return m;
    }
    let mapped = match callee.value(v) {
        ValueData::Const(c) => module.function_mut(caller_id).constant(*c),
        other => panic!("unmapped non-constant callee value {v}: {other:?}"),
    };
    value_map.insert(v, mapped);
    mapped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassManager;
    use llva_core::verifier::verify_module;

    fn parse(src: &str) -> Module {
        llva_core::parser::parse_module(src).expect("parses")
    }

    #[test]
    fn inlines_leaf_function() {
        let mut m = parse(
            r#"
int %inc(int %x) {
entry:
    %r = add int %x, 1
    ret int %r
}

int %main(int %a) {
entry:
    %v = call int %inc(int %a)
    %w = call int %inc(int %v)
    ret int %w
}
"#,
        );
        let mut pass = Inline::new();
        assert!(pass.run(&mut m));
        assert_eq!(pass.inlined(), 2);
        verify_module(&m).expect("verifies");
        let main = m.function(m.function_by_name("main").expect("main"));
        let has_call = main
            .inst_iter()
            .any(|(_, i)| main.inst(i).opcode() == Opcode::Call);
        assert!(!has_call, "all calls inlined");
    }

    #[test]
    fn inlined_code_computes_same_value() {
        let mut m = parse(
            r#"
int %square(int %x) {
entry:
    %r = mul int %x, %x
    ret int %r
}

int %main() {
entry:
    %v = call int %square(int 7)
    ret int %v
}
"#,
        );
        let mut pm = PassManager::new();
        pm.add(Inline::new())
            .add(crate::constfold::ConstFold::new())
            .add(crate::simplify_cfg::SimplifyCfg::new())
            .verify_after_each(true);
        pm.run(&mut m);
        let main = m.function(m.function_by_name("main").expect("main"));
        // after fold+simplify, main is `ret int 49`
        let e = main.entry_block();
        let ret = *main.block(e).insts().last().unwrap();
        let rv = main.inst(ret).operands()[0];
        assert_eq!(
            main.value_as_const(rv).and_then(Constant::as_int_bits),
            Some(49)
        );
    }

    #[test]
    fn multi_return_callee_gets_phi() {
        let mut m = parse(
            r#"
int %pick(bool %c) {
entry:
    br bool %c, label %a, label %b
a:
    ret int 1
b:
    ret int 2
}

int %main(bool %c) {
entry:
    %v = call int %pick(bool %c)
    ret int %v
}
"#,
        );
        let mut pass = Inline::new();
        assert!(pass.run(&mut m));
        verify_module(&m).expect("verifies");
        let main = m.function(m.function_by_name("main").expect("main"));
        let has_phi = main
            .inst_iter()
            .any(|(_, i)| main.inst(i).opcode() == Opcode::Phi);
        assert!(has_phi, "return merge phi expected");
    }

    #[test]
    fn recursion_is_not_inlined() {
        let mut m = parse(
            r#"
int %fact(int %n) {
entry:
    %c = setle int %n, 1
    br bool %c, label %base, label %rec
base:
    ret int 1
rec:
    %n1 = sub int %n, 1
    %r = call int %fact(int %n1)
    %p = mul int %n, %r
    ret int %p
}
"#,
        );
        let mut pass = Inline::new();
        assert!(!pass.run(&mut m));
    }

    #[test]
    fn callee_allocas_move_to_caller_entry() {
        let mut m = parse(
            r#"
int %with_slot(int %x) {
entry:
    %s = alloca int
    store int %x, int* %s
    %v = load int* %s
    ret int %v
}

int %main(int %a) {
entry:
    %v = call int %with_slot(int %a)
    ret int %v
}
"#,
        );
        let mut pass = Inline::new();
        assert!(pass.run(&mut m));
        verify_module(&m).expect("verifies");
        let main = m.function(m.function_by_name("main").expect("main"));
        let entry = main.entry_block();
        let first = main.block(entry).insts()[0];
        assert_eq!(main.inst(first).opcode(), Opcode::Alloca);
    }

    #[test]
    fn threshold_respected() {
        let mut m = parse(
            r#"
int %big(int %x) {
entry:
    %a = add int %x, 1
    %b = add int %a, 1
    %c = add int %b, 1
    ret int %c
}

int %main(int %a) {
entry:
    %v = call int %big(int %a)
    ret int %v
}
"#,
        );
        let mut pass = Inline::with_threshold(2);
        assert!(!pass.run(&mut m));
        let mut pass = Inline::with_threshold(10);
        assert!(pass.run(&mut m));
    }

    #[test]
    fn code_after_call_survives_in_continuation() {
        let mut m = parse(
            r#"
int %inc(int %x) {
entry:
    %r = add int %x, 1
    ret int %r
}

int %main(int %a) {
entry:
    %v = call int %inc(int %a)
    %w = mul int %v, 3
    %u = add int %w, %a
    ret int %u
}
"#,
        );
        let mut pass = Inline::new();
        assert!(pass.run(&mut m));
        verify_module(&m).expect("verifies");
        let main = m.function(m.function_by_name("main").expect("main"));
        // the mul and add still exist somewhere
        let count = |op: Opcode| {
            main.inst_iter()
                .filter(|&(_, i)| main.inst(i).opcode() == op)
                .count()
        };
        assert_eq!(count(Opcode::Mul), 1);
        assert_eq!(count(Opcode::Add), 2); // inlined add + original add
    }
}
