//! End-to-end fault injection against the LLEE translation cache.
//!
//! Paper §4.1 requires that offline caches be "strictly optional":
//! ISSUE 2 extends that from *absent* storage to *faulty* storage. The
//! degradation ladder is cached → retranslate → interpret; these tests
//! drive [`FaultyStorage`] (deterministic seeded fault injection) at
//! the real `ExecutionManager` and assert that no injected fault —
//! corruption, truncation, torn writes, stale timestamps, read
//! failures — ever changes an execution result.
//!
//! Seeds are deterministic; the CI `fault-injection` job re-runs the
//! chaos tests under several `LLVA_FAULT_SEED` values.

use llva::engine::codec;
use llva::engine::llee::{EngineError, ExecutionManager, TargetIsa};
use llva::engine::storage::{
    DirStorage, FaultPlan, FaultyStorage, MemStorage, SharedStorage, Storage, QUARANTINE_SUFFIX,
};

const FIB: &str = r#"
int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
base:
    ret int %n
}

int %main() {
entry:
    %r = call int %fib(int 15)
    ret int %r
}
"#;

fn module() -> llva::core::module::Module {
    llva::core::parser::parse_module(FIB).expect("parses")
}

type TestStorage = SharedStorage<FaultyStorage<MemStorage>>;

fn faulty_storage(plan: FaultPlan) -> TestStorage {
    SharedStorage::new(FaultyStorage::new(MemStorage::new(), plan))
}

/// Warm cache → corrupt one entry → re-run: identical output, exactly
/// one `corrupt` + one `miss` recorded, the bad entry quarantined, and
/// a fresh validated entry rewritten in its place (ISSUE 2 satellite).
#[test]
fn cache_recovery_end_to_end() {
    let storage = faulty_storage(FaultPlan::none(1));
    let reference = ExecutionManager::new(module(), TargetIsa::X86)
        .run("main", &[])
        .expect("runs")
        .value;

    // warm the cache
    let fib_key;
    {
        let mut mgr = ExecutionManager::new(module(), TargetIsa::X86);
        mgr.set_storage(Box::new(storage.clone()), "fib");
        assert_eq!(mgr.run("main", &[]).expect("runs").value, reference);
        assert_eq!(mgr.stats().functions_translated, 2);
        let fib = mgr
            .module()
            .function_by_name("fib")
            .expect("fib")
            .index() as u32;
        fib_key = mgr.cache_key(fib);
    }

    // flip one deterministic bit inside fib's cached frame
    assert!(storage.with(|s| s.corrupt_entry("fib", &fib_key)));

    // re-run: main loads from cache, fib's entry fails validation and
    // is quarantined + retranslated + rewritten; output is unchanged
    let mut mgr = ExecutionManager::new(module(), TargetIsa::X86);
    mgr.set_storage(Box::new(storage.clone()), "fib");
    assert_eq!(mgr.run("main", &[]).expect("runs").value, reference);
    let stats = mgr.stats();
    assert_eq!(stats.cache_hits, 1, "main still served from cache");
    assert_eq!(stats.cache_misses, 1, "exactly one miss");
    assert_eq!(stats.cache_corrupt, 1, "exactly one corrupt entry");
    assert_eq!(stats.cache_stale, 0);
    assert_eq!(stats.cache_retried, 1, "the corrupt entry forced a retranslation");
    assert_eq!(stats.cache_recovered, 1, "the retranslation was written back");
    assert_eq!(stats.functions_translated, 1, "only fib retranslated");

    // the poisoned blob is preserved under quarantine, off the read path
    let quarantined = format!("{fib_key}{QUARANTINE_SUFFIX}");
    assert!(storage.with(|s| s.read("fib", &quarantined)).is_some());

    // the rewritten entry validates, so a third run is all hits
    let (blob, _) = storage.with(|s| s.read("fib", &fib_key)).expect("rewritten");
    assert!(codec::unframe_entry(&fib_key, &blob).is_ok());
    let mut mgr = ExecutionManager::new(module(), TargetIsa::X86);
    mgr.set_storage(Box::new(storage), "fib");
    assert_eq!(mgr.run("main", &[]).expect("runs").value, reference);
    assert_eq!(mgr.stats().cache_hits, 2);
    assert_eq!(mgr.stats().cache_corrupt, 0);
}

/// ISSUE 2 acceptance criterion: with corruption injected on **every**
/// read, execution still reaches the identical result as with no
/// storage at all, on both target ISAs — the degradation ladder never
/// lets a corrupt translation through.
#[test]
fn corrupt_every_read_matches_no_storage() {
    for isa in TargetIsa::ALL {
        let reference = ExecutionManager::new(module(), isa)
            .run("main", &[])
            .expect("runs")
            .value;

        // warm a cache, then poison the read path entirely
        let storage = faulty_storage(FaultPlan::none(2));
        {
            let mut mgr = ExecutionManager::new(module(), isa);
            mgr.set_storage(Box::new(storage.clone()), "fib");
            mgr.run("main", &[]).expect("runs");
        }
        storage.with(|s| s.set_plan(FaultPlan::corrupt_every_read(2)));

        let mut mgr = ExecutionManager::new(module(), isa);
        mgr.set_storage(Box::new(storage.clone()), "fib");
        let out = mgr.run("main", &[]).expect("runs under total corruption");
        assert_eq!(out.value, reference, "{isa}: result must not change");
        assert_eq!(mgr.stats().cache_hits, 0, "{isa}: nothing corrupt may hit");
        assert_eq!(mgr.stats().cache_corrupt, 2, "{isa}: every read corrupt");
        assert!(storage.with(|s| s.log()).flipped_reads > 0);
    }
}

/// ISSUE 5 satellite: a *transient* read fault (outage or in-transit
/// bit rot) heals within the bounded retry budget — the valid cache
/// entry is served, counted as `retried_ok`, and **not** quarantined.
#[test]
fn transient_read_faults_retry_without_quarantine() {
    let storage = faulty_storage(FaultPlan::none(3));
    let reference;
    {
        let mut mgr = ExecutionManager::new(module(), TargetIsa::X86);
        mgr.set_storage(Box::new(storage.clone()), "fib");
        reference = mgr.run("main", &[]).expect("runs").value;
        assert_eq!(mgr.stats().functions_translated, 2, "cold cache");
    }

    // one transient outage: the very next read returns None, then heals
    storage.with(|s| s.arm_read_fail(1));
    {
        let mut mgr = ExecutionManager::new(module(), TargetIsa::X86);
        mgr.set_storage(Box::new(storage.clone()), "fib");
        assert_eq!(mgr.run("main", &[]).expect("runs").value, reference);
        let stats = mgr.stats();
        assert_eq!(stats.cache_hits, 2, "both functions still served from cache");
        assert_eq!(stats.retried_ok, 1, "the outage healed on retry");
        assert_eq!(stats.gave_up, 0);
        assert_eq!(stats.cache_corrupt, 0, "no quarantine for a transient fault");
        assert_eq!(stats.functions_translated, 0, "nothing retranslated");
    }

    // one transient bit flip in transit (the entry at rest is pristine)
    storage.with(|s| s.arm_read_corrupt(1));
    {
        let mut mgr = ExecutionManager::new(module(), TargetIsa::X86);
        mgr.set_storage(Box::new(storage.clone()), "fib");
        assert_eq!(mgr.run("main", &[]).expect("runs").value, reference);
        let stats = mgr.stats();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.retried_ok, 1, "the flipped read healed on retry");
        assert_eq!(stats.cache_corrupt, 0, "a valid entry must not be quarantined");
        assert_eq!(stats.functions_translated, 0);
    }

    // nothing was ever moved aside
    let mgr = ExecutionManager::new(module(), TargetIsa::X86);
    for f in 0..2u32 {
        let key = format!("{}{QUARANTINE_SUFFIX}", mgr.cache_key(f));
        assert!(
            storage.with(|s| s.read("fib", &key)).is_none(),
            "transient fault quarantined a valid entry: {key}"
        );
    }
}

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("LLVA_FAULT_SEED") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .collect(),
        Err(_) => vec![1, 7, 0x00de_cade],
    }
}

/// Chaos plan (read failures, truncations, bit flips, torn writes,
/// stale timestamps, all at once) across several seeds: results never
/// change, across repeated runs sharing the same battered storage.
#[test]
fn chaos_storage_never_changes_results() {
    let reference = ExecutionManager::new(module(), TargetIsa::X86)
        .run("main", &[])
        .expect("runs")
        .value;
    let mut injected_total = 0u64;
    for seed in chaos_seeds() {
        let storage = faulty_storage(FaultPlan::chaos(seed));
        for round in 0..3 {
            let mut mgr = ExecutionManager::new(module(), TargetIsa::X86);
            mgr.set_storage(Box::new(storage.clone()), "fib");
            let out = mgr.run("main", &[]).expect("runs under chaos");
            assert_eq!(out.value, reference, "seed {seed} round {round}");
        }
        injected_total += storage.with(|s| s.log()).total();
    }
    assert!(injected_total > 0, "chaos plan must actually inject faults");
}

/// Same chaos runs against the real on-disk [`DirStorage`] (atomic
/// temp-file writes + orphan sweep underneath the injected faults).
#[test]
fn chaos_over_dir_storage_never_changes_results() {
    let root = std::env::temp_dir().join(format!("llva_fault_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let reference = ExecutionManager::new(module(), TargetIsa::Sparc)
        .run("main", &[])
        .expect("runs")
        .value;
    for seed in chaos_seeds() {
        let storage = SharedStorage::new(FaultyStorage::new(
            DirStorage::new(root.join(format!("seed{seed}"))),
            FaultPlan::chaos(seed),
        ));
        for round in 0..2 {
            let mut mgr = ExecutionManager::new(module(), TargetIsa::Sparc);
            mgr.set_storage(Box::new(storage.clone()), "fib");
            let out = mgr.run("main", &[]).expect("runs under chaos");
            assert_eq!(out.value, reference, "seed {seed} round {round}");
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// One poisoned function (translation panics on crafted code) must not
/// kill the parallel fan-out: every other function still translates
/// and runs, and the poison surfaces as a per-function
/// [`EngineError::TranslationPanicked`].
#[test]
fn poisoned_function_does_not_kill_parallel_translation() {
    use llva::core::instruction::{Instruction, Opcode};
    use llva::core::value::Constant;

    let src = r#"
int %bad(int %x) {
entry:
    ret int %x
}

int %good() {
entry:
    ret int 42
}
"#;
    let m = llva::core::parser::parse_module(src).expect("parses");
    let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
    // Craft virtual object code the verifier would reject: a gep whose
    // base is an int, which panics the x86 lowering. (Cache-delivered
    // code skips the verifier, so this models a poisoned artifact.)
    mgr.modify_function("bad", |m, fid| {
        let int = m.types_mut().int();
        let void = m.types_mut().void();
        let func = m.function_mut(fid);
        let one = func.constant(Constant::Int { ty: int, bits: 1 });
        let arg = func.args()[0];
        let entry = func.entry_block();
        let gep = Instruction::new(Opcode::GetElementPtr, int, vec![arg, one], vec![]);
        func.append_inst(entry, gep, void);
    });

    // silence the worker's panic report; the panic is expected
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = mgr.translate_all_parallel(2);
    std::panic::set_hook(prev);

    match result {
        Err(EngineError::TranslationPanicked(name)) => assert_eq!(name, "bad"),
        other => panic!("expected TranslationPanicked, got {other:?}"),
    }
    assert_eq!(mgr.stats().functions_translated, 1, "good still translated");
    assert_eq!(mgr.run("good", &[]).expect("runs").value, 42);
}
