//! # llva-backend — native code generators (the "translator")
//!
//! Translates LLVA virtual object code to the two simulated
//! implementation ISAs in `llva-machine`:
//!
//! * [`x86gen`] — IA-32-like: deliberately naive (the paper: "performs
//!   virtually no optimization and very simple register allocation
//!   resulting in significant spill code"), every value spilled to the
//!   frame, memory-operand forms used where possible.
//! * [`sparcgen`] — SPARC-V9-like: "produces higher quality code, but
//!   requires more instructions because of the RISC architecture";
//!   use-count-based register assignment over 14 callee-saved
//!   registers, `sethi`/`or` materialization for wide constants.
//!
//! [`common`] holds shared pieces: global memory image layout,
//! compare/branch fusion, and constant canonicalization.

pub mod common;
pub mod sparcgen;
pub mod x86gen;

pub use common::{layout_globals, GlobalImage};
pub use sparcgen::compile_sparc;
pub use x86gen::compile_x86;
