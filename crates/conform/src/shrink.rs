//! Delta-debugging minimization of diverging modules.
//!
//! The shrinker repeatedly tries structural edits — dropping function
//! bodies, truncating blocks down to a bare `ret`, collapsing
//! conditional/multi-way branches to one arm, hollowing out single
//! instructions, and running cleanup passes — keeping an edit only if
//! the result (a) still passes the verifier and (b) still diverges
//! under the caller's predicate. Edits never need to preserve
//! semantics: the verifier filters out malformed candidates and the
//! predicate filters out candidates that lost the bug, so the edits
//! themselves can be as crude as they like.
//!
//! Termination is guaranteed because every accepted edit strictly
//! decreases an integer size metric (instructions, CFG edges, and live
//! function bodies, weighted).

use llva_core::function::{BlockId, Function};
use llva_core::instruction::{InstId, Instruction, Opcode};
use llva_core::module::{FuncId, Module};
use llva_core::value::{Constant, ValueData, ValueId};

/// Statistics from one shrink run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Candidate edits attempted.
    pub tried: usize,
    /// Edits that verified, still diverged, and were kept.
    pub applied: usize,
    /// Instruction count before shrinking.
    pub insts_before: usize,
    /// Instruction count after shrinking.
    pub insts_after: usize,
}

/// Minimizes `module` while `interesting` stays true.
///
/// `interesting(&module)` must be true on entry; the returned module
/// still satisfies it and still passes the verifier.
pub fn shrink(
    module: &Module,
    interesting: &dyn Fn(&Module) -> bool,
) -> (Module, ShrinkStats) {
    let mut cur = module.clone();
    let mut stats = ShrinkStats {
        insts_before: cur.total_insts(),
        ..ShrinkStats::default()
    };
    debug_assert!(interesting(&cur), "shrink precondition: module diverges");

    loop {
        let mut progressed = false;
        for edit in candidates(&cur) {
            stats.tried += 1;
            let Some(cand) = apply(&cur, &edit) else {
                continue;
            };
            if metric(&cand) >= metric(&cur) {
                continue;
            }
            if llva_core::verifier::verify_module(&cand).is_err() {
                continue;
            }
            if !interesting(&cand) {
                continue;
            }
            cur = cand;
            stats.applied += 1;
            progressed = true;
            break; // re-enumerate on the new, smaller module
        }
        if !progressed {
            break;
        }
    }
    stats.insts_after = cur.total_insts();
    (cur, stats)
}

/// The strictly-decreasing size metric: instructions dominate, then CFG
/// edges, then function bodies.
fn metric(m: &Module) -> usize {
    let mut insts = 0usize;
    let mut edges = 0usize;
    let mut bodies = 0usize;
    for (_, f) in m.functions() {
        if f.is_declaration() {
            continue;
        }
        bodies += 1;
        insts += f.num_insts();
        for &b in f.block_order() {
            edges += f.successors(b).len();
        }
    }
    insts * 4 + edges + bodies * 64
}

#[derive(Debug, Clone)]
enum Edit {
    /// Turn a never-referenced non-entry function into a declaration.
    DropBody(FuncId),
    /// Replace a block's contents from `at` onward with a bare `ret`.
    Truncate(FuncId, BlockId, usize),
    /// Replace a conditional/multi-way terminator with `br` to one target.
    TakeBranch(FuncId, BlockId, usize),
    /// Delete one result-less, non-terminator instruction (a store).
    RemoveInst(FuncId, InstId),
    /// Replace an instruction's result with one of its own same-typed
    /// operands, then delete it — collapses `or long 0, %x` to `%x`,
    /// a call to one of its arguments, chains generally.
    Forward(FuncId, InstId, usize),
    /// Replace one value-producing instruction's uses with zero, then
    /// delete it.
    Hollow(FuncId, InstId),
    /// DCE + SimplifyCFG over the whole module.
    Cleanup,
}

/// Candidate edits for the current module, most aggressive first.
fn candidates(m: &Module) -> Vec<Edit> {
    let mut edits = Vec::new();
    // whole function bodies (entry "f" is id-agnostic: we just never
    // drop a function that is still referenced, and the entry is
    // referenced by the oracle itself — guarded by name below)
    for (id, f) in m.functions() {
        if !f.is_declaration() && f.name() != "f" && f.name() != "main" && !is_referenced(m, id) {
            edits.push(Edit::DropBody(id));
        }
    }
    for (id, f) in m.functions() {
        if f.is_declaration() {
            continue;
        }
        // aggressive truncation: empty the block, then halve it
        for &b in f.block_order() {
            let n = f.block(b).insts().len();
            edits.push(Edit::Truncate(id, b, 0));
            if n > 2 {
                edits.push(Edit::Truncate(id, b, n / 2));
            }
        }
        for &b in f.block_order() {
            if let Some(t) = f.terminator(b) {
                let nb = f.inst(t).block_operands().len();
                if nb > 1 {
                    for which in 0..nb {
                        edits.push(Edit::TakeBranch(id, b, which));
                    }
                }
            }
        }
        for (_, inst_id) in f.inst_iter() {
            let inst = f.inst(inst_id);
            if inst.is_terminator() {
                continue;
            }
            if f.inst_result(inst_id).is_none() {
                edits.push(Edit::RemoveInst(id, inst_id));
            } else {
                for op_idx in 0..inst.operands().len() {
                    edits.push(Edit::Forward(id, inst_id, op_idx));
                }
                edits.push(Edit::Hollow(id, inst_id));
            }
        }
    }
    edits.push(Edit::Cleanup);
    edits
}

/// True if any instruction operand in the module resolves to the
/// address of `target` (i.e. a call or an escaped function pointer).
fn is_referenced(m: &Module, target: FuncId) -> bool {
    for (_, f) in m.functions() {
        for (_, inst_id) in f.inst_iter() {
            for &op in f.inst(inst_id).operands() {
                if let Some(Constant::FunctionAddr { func, .. }) = f.value_as_const(op) {
                    if *func == target {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Applies `edit` to a clone of `m`; `None` if it is inapplicable.
fn apply(m: &Module, edit: &Edit) -> Option<Module> {
    let mut m2 = m.clone();
    match *edit {
        Edit::DropBody(f) => {
            m2.discard_function_body(f);
        }
        Edit::Truncate(fid, block, at) => {
            let ret_ty = m2.function(fid).return_type();
            let ret_val = zero_value_of(&mut m2, fid, ret_ty)?;
            let func = m2.function_mut(fid);
            let tail: Vec<InstId> = func.block(block).insts().get(at..)?.to_vec();
            if tail.is_empty() {
                return None;
            }
            // no-op guard: don't re-truncate an already-minimal block
            if tail.len() == 1 && func.inst(tail[0]).opcode() == Opcode::Ret {
                return None;
            }
            for id in tail {
                func.remove_inst(id);
            }
            let void = m2.types_mut().void();
            let operands = ret_val.into_iter().collect();
            m2.function_mut(fid)
                .append_inst(block, Instruction::new(Opcode::Ret, void, operands, vec![]), void);
            prune_unreachable(m2.function_mut(fid));
            fixup_phis(m2.function_mut(fid));
        }
        Edit::TakeBranch(fid, block, which) => {
            let void = m2.types_mut().void();
            let func = m2.function_mut(fid);
            let t = func.terminator(block)?;
            let inst = func.inst(t);
            if inst.opcode() == Opcode::Ret || inst.block_operands().len() <= 1 {
                return None;
            }
            let dest = *inst.block_operands().get(which)?;
            func.remove_inst(t);
            func.append_inst(block, Instruction::new(Opcode::Br, void, vec![], vec![dest]), void);
            prune_unreachable(func);
            fixup_phis(func);
        }
        Edit::RemoveInst(fid, inst_id) => {
            let func = m2.function_mut(fid);
            if func.inst(inst_id).is_terminator() || func.inst_result(inst_id).is_some() {
                return None;
            }
            func.remove_inst(inst_id);
        }
        Edit::Forward(fid, inst_id, op_idx) => {
            let result = m.function(fid).inst_result(inst_id)?;
            let ty = m.function(fid).inst(inst_id).result_type();
            let op = *m.function(fid).inst(inst_id).operands().get(op_idx)?;
            let bool_ty = m2.types_mut().bool();
            let func = m2.function_mut(fid);
            if func.value_type(op, bool_ty) != ty {
                return None;
            }
            func.replace_all_uses(result, op);
            func.remove_inst(inst_id);
        }
        Edit::Hollow(fid, inst_id) => {
            let result = m.function(fid).inst_result(inst_id)?;
            let ty = m.function(fid).inst(inst_id).result_type();
            let zero = zero_value_of(&mut m2, fid, ty)??;
            let func = m2.function_mut(fid);
            func.replace_all_uses(result, zero);
            func.remove_inst(inst_id);
        }
        Edit::Cleanup => {
            let mut pm = llva_opt::PassManager::new();
            pm.add(llva_opt::dce::Dce::new())
                .add(llva_opt::simplify_cfg::SimplifyCfg::new());
            pm.run(&mut m2);
        }
    }
    Some(m2)
}

/// A zero-ish constant of `ty` in `fid`'s value pool.
///
/// Outer `None` means the type is unsupported (the edit is skipped);
/// inner `None` means "void — return without a value".
fn zero_value_of(m: &mut Module, fid: FuncId, ty: llva_core::types::TypeId) -> Option<Option<ValueId>> {
    use llva_core::types::TypeKind;
    let c = match m.types().kind(ty) {
        TypeKind::Void => return Some(None),
        TypeKind::Bool => Constant::Bool(false),
        TypeKind::Pointer(_) => Constant::Null(ty),
        TypeKind::Float | TypeKind::Double => Constant::Float { ty, bits: 0 },
        _ if m.types().is_integer(ty) => Constant::Int { ty, bits: 0 },
        _ => return None,
    };
    Some(Some(m.function_mut(fid).constant(c)))
}

/// Removes blocks no longer reachable from the entry.
///
/// The verifier tolerates dangling value references in unreachable
/// code (its SSA checks only cover reachable blocks), but the printer
/// and downstream consumers do not — so edits that cut CFG edges must
/// drop the code they orphaned.
fn prune_unreachable(func: &mut Function) {
    let entry = func.entry_block();
    let mut seen: Vec<BlockId> = vec![entry];
    let mut stack = vec![entry];
    while let Some(b) = stack.pop() {
        for s in func.successors(b) {
            if !seen.contains(&s) {
                seen.push(s);
                stack.push(s);
            }
        }
    }
    let dead: Vec<BlockId> = func
        .block_order()
        .iter()
        .copied()
        .filter(|b| !seen.contains(b))
        .collect();
    for b in dead {
        func.remove_block(b);
    }
}

/// Drops phi incoming entries whose source block is no longer an
/// actual predecessor (after an edge was removed by truncation or
/// branch collapsing).
fn fixup_phis(func: &mut Function) {
    let preds = func.predecessors();
    let blocks: Vec<BlockId> = func.block_order().to_vec();
    for b in blocks {
        let empty = Vec::new();
        let ps = preds.get(&b).unwrap_or(&empty).clone();
        let phi_ids: Vec<InstId> = func
            .block(b)
            .insts()
            .iter()
            .copied()
            .filter(|&i| func.inst(i).opcode() == Opcode::Phi)
            .collect();
        for id in phi_ids {
            let inst = func.inst(id);
            let pairs: Vec<(ValueId, BlockId)> = inst
                .operands()
                .iter()
                .copied()
                .zip(inst.block_operands().iter().copied())
                .filter(|(_, blk)| ps.contains(blk))
                .collect();
            if pairs.len() != inst.operands().len() {
                let (ops, blks): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
                let inst = func.inst_mut(id);
                inst.set_operands(ops);
                inst.set_block_operands(blks);
            }
        }
    }
}

/// Convenience for callers that want the defining instruction of a
/// value (used by tests).
pub fn defining_inst(func: &Function, v: ValueId) -> Option<InstId> {
    match *func.value(v) {
        ValueData::Inst { inst, .. } => Some(inst),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    /// Shrinking with an always-true predicate must drive any generated
    /// module down to almost nothing — and terminate.
    #[test]
    fn shrinks_to_trivial_when_everything_is_interesting() {
        for seed in [5u64, 17, 29] {
            let tc = generate(seed, &GenConfig::default());
            let before = tc.module.total_insts();
            let (min, stats) = shrink(&tc.module, &|_| true);
            llva_core::verifier::verify_module(&min).expect("minimized module verifies");
            assert!(stats.insts_after <= before);
            // the entry function must still exist and be minimal
            let f = min.function_by_name("f").expect("entry survives");
            assert!(min.function(f).num_insts() <= 2, "seed {seed}: {}", min.function(f).num_insts());
        }
    }

    /// A predicate that pins a specific behavior keeps that behavior.
    #[test]
    fn preserves_the_interesting_property() {
        let tc = generate(11, &GenConfig::default());
        let entry = tc.entry.clone();
        let args = tc.args.clone();
        let expected = match crate::oracle::interp_outcome(&tc.module, &entry, &args, 50_000_000) {
            crate::oracle::Outcome::Value(v) => v,
            other => panic!("seed 11 should complete normally, got {other}"),
        };
        // "interesting" = still returns the same value
        let pred = move |m: &Module| {
            matches!(
                crate::oracle::interp_outcome(m, &entry, &args, 50_000_000),
                crate::oracle::Outcome::Value(v) if v == expected
            )
        };
        let (min, _) = shrink(&tc.module, &pred);
        assert!(pred(&min));
        assert!(min.total_insts() <= tc.module.total_insts());
    }
}
