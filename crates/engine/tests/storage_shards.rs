//! Concurrent access to the sharded translation cache under fault
//! injection (ISSUE 7 satellite).
//!
//! `ShardedStorage` is the serving layer's shared cache: many tenant
//! executors hammer it concurrently while storage faults (read
//! failures, bit rot on the read path, in-place corruption, a writer
//! panicking while holding a shard mutex) fire underneath. The
//! contract under test:
//!
//! * **no poison leaks** — a panicking writer poisons only its shard's
//!   mutex, every subsequent operation on that shard recovers it, and
//!   no in-flight batch survives the recovery;
//! * **no lost valid entries** — every entry a surviving writer wrote
//!   is readable afterwards, bit-for-bit, once read-path fault
//!   injection is disarmed (read faults damage returned copies, never
//!   the stored bytes).
//!
//! Seeds honor `LLVA_FAULT_SEED` (comma-separated), the same env the
//! CI fault-injection matrix sets.

use llva_engine::storage::{FaultPlan, FaultyStorage, MemStorage, ShardedStorage, Storage};

const SHARDS: usize = 4;
const WRITERS: u64 = 6;
const KEYS_PER_WRITER: u64 = 48;

fn seeds() -> Vec<u64> {
    match std::env::var("LLVA_FAULT_SEED") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .collect(),
        Err(_) => vec![3, 41, 0xfeed],
    }
}

/// Read-side chaos only: returned copies get damaged, stored bytes
/// stay pristine — the precondition for the "no lost valid entries"
/// assertion (a torn *write* would legitimately lose data).
fn read_chaos(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        read_fail: 3,
        read_truncate: 4,
        read_bit_flip: 3,
        torn_write: 0,
        stale_timestamp: 5,
    }
}

fn payload(t: u64, i: u64) -> Vec<u8> {
    (0..32u64).map(|j| (t * 131 + i * 17 + j) as u8).collect()
}

#[test]
fn concurrent_shard_access_under_faults_loses_nothing() {
    for seed in seeds() {
        let storage: ShardedStorage<FaultyStorage<MemStorage>> =
            ShardedStorage::new(SHARDS, |i| {
                FaultyStorage::new(MemStorage::new(), read_chaos(seed + i as u64))
            });
        {
            let mut handle = storage.clone();
            handle.create_cache("serve");
        }
        // sacrificial entries for the corruptor thread to chew on
        {
            let mut handle = storage.clone();
            for i in 0..16u64 {
                handle.write("serve", &format!("sac.k{i}"), &payload(99, i), i);
            }
        }
        // a key routed to shard 0, for the poisoning writer
        let poison_key = (0..)
            .map(|i| format!("poison.k{i}"))
            .find(|k| storage.shard_index(k) == 0)
            .expect("some key routes to shard 0");

        std::thread::scope(|scope| {
            // writers: unique key ranges, write + occasionally re-read
            // (the re-read may see injected read faults — that's fine)
            for t in 0..WRITERS {
                let mut handle = storage.clone();
                scope.spawn(move || {
                    for i in 0..KEYS_PER_WRITER {
                        let key = format!("t{t}.k{i}");
                        handle.write("serve", &key, &payload(t, i), t * 1000 + i);
                        if i % 7 == 0 {
                            let _ = handle.read("serve", &key);
                            let _ = handle.timestamp("serve", &key);
                        }
                    }
                });
            }
            // corruptor: in-place bit flips on the sacrificial set
            {
                let storage = storage.clone();
                scope.spawn(move || {
                    for i in 0..16u64 {
                        let key = format!("sac.k{i}");
                        storage
                            .shard(storage.shard_index(&key))
                            .with(|s| s.corrupt_entry("serve", &key));
                    }
                });
            }
            // poisoner: panics mid-write while holding shard 0's mutex
            {
                let storage = storage.clone();
                let key = poison_key.clone();
                let handle = scope.spawn(move || {
                    storage.shard(0).with(|s| s.arm_write_panic(1));
                    let mut writer = storage.clone();
                    writer.write("serve", &key, b"never lands", 1);
                });
                assert!(handle.join().is_err(), "poisoner must have panicked");
            }
        });

        // no poison leak: every shard's lock recovers, no dirty batch
        assert_eq!(storage.pending_batch_total(), 0, "seed {seed}");
        // disarm read-path injection so reads show the true stored bytes
        for i in 0..SHARDS {
            storage.shard(i).with(|s| s.set_plan(FaultPlan::none(1)));
        }
        // no lost valid entries: every surviving writer's entry is
        // present and bit-for-bit identical
        for t in 0..WRITERS {
            for i in 0..KEYS_PER_WRITER {
                let key = format!("t{t}.k{i}");
                assert_eq!(
                    storage.read("serve", &key),
                    Some((payload(t, i), t * 1000 + i)),
                    "seed {seed}: entry {key} lost or damaged"
                );
            }
        }
        // every shard still serves writes (including poisoned shard 0)
        let mut after = storage.clone();
        for i in 0..16u64 {
            let key = format!("after.k{i}");
            after.write("serve", &key, &payload(7, i), i);
            assert_eq!(
                storage.read("serve", &key),
                Some((payload(7, i), i)),
                "seed {seed}: shard serving {key} did not recover"
            );
        }
        // the sacrificial entries still exist (corrupt_entry flips a
        // bit in place; it must never drop the entry)
        for i in 0..16u64 {
            assert!(
                storage.read("serve", &format!("sac.k{i}")).is_some(),
                "seed {seed}: corrupted entry sac.k{i} vanished"
            );
        }
    }
}
