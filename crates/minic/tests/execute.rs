//! End-to-end minic tests: compile → verify → run on all three
//! executors (reference interpreter + both native targets) and check
//! they agree.

use llva_core::layout::TargetConfig;
use llva_engine::llee::{ExecutionManager, TargetIsa};
use llva_engine::Interpreter;

/// Compiles and runs `src` on all three executors, asserting agreement,
/// and returns the common result.
fn run_all(src: &str, args: &[u64]) -> u64 {
    let m = llva_minic::compile(src, "t", TargetConfig::default()).expect("compiles");
    llva_core::verifier::verify_module(&m).expect("verifies");
    let mut interp = Interpreter::new(&m);
    let expected = interp.run("main", args).expect("interprets");
    for isa in TargetIsa::ALL {
        let m = llva_minic::compile(src, "t", TargetConfig::default()).expect("compiles");
        let mut mgr = ExecutionManager::new(m, isa);
        let out = mgr.run("main", args).expect("runs natively");
        assert_eq!(out.value, expected, "{isa} disagrees with the interpreter");
    }
    expected
}

#[test]
fn arithmetic_and_locals() {
    let r = run_all(
        r#"
int main(int x) {
    int a = x * 3 + 1;
    int b = a / 2 - 4;
    return a + b * 10;
}
"#,
        &[7],
    );
    // a = 22, b = 7, 22 + 70
    assert_eq!(r, 92);
}

#[test]
fn loops_sum() {
    let r = run_all(
        "int main(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }",
        &[100],
    );
    assert_eq!(r, 5050);
}

#[test]
fn while_break_continue() {
    let r = run_all(
        r#"
int main() {
    int s = 0;
    int i = 0;
    while (1) {
        i++;
        if (i > 20) break;
        if (i % 2 == 0) continue;
        s += i;
    }
    return s;
}
"#,
        &[],
    );
    assert_eq!(r, 100); // 1+3+...+19
}

#[test]
fn recursion_fib() {
    let r = run_all(
        r#"
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(14); }
"#,
        &[],
    );
    assert_eq!(r, 377);
}

#[test]
fn arrays_and_pointers() {
    let r = run_all(
        r#"
int main() {
    int a[10];
    for (int i = 0; i < 10; i++) a[i] = i * i;
    int* p = a;
    int s = 0;
    for (int i = 0; i < 10; i++) s += *(p + i);
    return s;
}
"#,
        &[],
    );
    assert_eq!(r, 285);
}

#[test]
fn structs_and_arrow() {
    let r = run_all(
        r#"
struct Point { int x; int y; };

int dot(struct Point* a, struct Point* b) {
    return a->x * b->x + a->y * b->y;
}

int main() {
    struct Point p;
    struct Point q;
    p.x = 3; p.y = 4;
    q.x = 5; q.y = 6;
    return dot(&p, &q);
}
"#,
        &[],
    );
    assert_eq!(r, 39);
}

#[test]
fn linked_list_on_heap() {
    let r = run_all(
        r#"
struct Node { int value; struct Node* next; };

int main() {
    struct Node* head = (struct Node*)0;
    for (int i = 1; i <= 5; i++) {
        struct Node* n = (struct Node*)malloc(sizeof(struct Node));
        n->value = i;
        n->next = head;
        head = n;
    }
    int s = 0;
    while (head != (struct Node*)0) {
        s = s * 10 + head->value;
        head = head->next;
    }
    return s;
}
"#,
        &[],
    );
    assert_eq!(r, 54321);
}

#[test]
fn globals_and_strings() {
    let r = run_all(
        r#"
int counter = 10;
int table[5] = {2, 4, 6, 8, 10};
char* msg = "abc";

int main() {
    counter += table[2];
    return counter * 100 + msg[1];
}
"#,
        &[],
    );
    assert_eq!(r, 1600 + u64::from(b'b'));
}

#[test]
fn floats_and_casts() {
    let r = run_all(
        r#"
int main() {
    double pi = 3.14159;
    double r = 10.0;
    double area = pi * r * r;
    float f = (float)area;
    return (int)f;
}
"#,
        &[],
    );
    assert_eq!(r, 314);
}

#[test]
fn short_circuit_semantics() {
    let r = run_all(
        r#"
int g = 0;

int bump() { g = g + 1; return 1; }

int main() {
    int a = 0 && bump();
    int b = 1 || bump();
    int c = 1 && bump();
    int d = 0 || bump();
    return g * 100 + a + b * 10 + c * 100 + d * 1000;
}
"#,
        &[],
    );
    // bump called exactly twice (c and d): g == 2
    assert_eq!(r, 200 + 10 + 100 + 1000); // a == 0
}

#[test]
fn ternary_and_logical_not() {
    let r = run_all(
        r#"
int main(int x) {
    int big = x > 10 ? 100 : 1;
    int flip = !x;
    return big + flip;
}
"#,
        &[0],
    );
    assert_eq!(r, 2); // 1 + 1

    let r = run_all(
        "int main(int x) { return (x > 10 ? 100 : 1) + !x; }",
        &[50],
    );
    assert_eq!(r, 100);
}

#[test]
fn function_pointers() {
    let r = run_all(
        r#"
int twice(int x) { return x * 2; }
int thrice(int x) { return x * 3; }

int apply(int (*)(int) f, int x) { return f(x); }

int main() {
    return apply(twice, 10) + apply(thrice, 10);
}
"#,
        &[],
    );
    assert_eq!(r, 50);
}

#[test]
fn char_arithmetic_and_io() {
    let src = r#"
int main() {
    char c = 'A';
    for (int i = 0; i < 5; i++) {
        putchar(c + i);
    }
    return 0;
}
"#;
    let m = llva_minic::compile(src, "t", TargetConfig::default()).expect("compiles");
    let mut interp = Interpreter::new(&m);
    interp.run("main", &[]).expect("runs");
    assert_eq!(interp.env.stdout_string(), "ABCDE");
    let m = llva_minic::compile(src, "t", TargetConfig::default()).expect("compiles");
    let mut mgr = ExecutionManager::new(m, TargetIsa::Sparc);
    mgr.run("main", &[]).expect("runs");
    assert_eq!(mgr.env.stdout_string(), "ABCDE");
}

#[test]
fn unsigned_vs_signed_division() {
    let r = run_all(
        r#"
int main() {
    int a = -7;
    int sq = a / 2;
    uint b = (uint)a;
    uint uq = b / 2;
    return sq + (int)(uq > 1000000u ? 1 : 0);
}
"#
        .replace("1000000u", "1000000")
        .as_str(),
        &[],
    );
    // sq = -3 (truncating), uq is huge
    assert_eq!(r as i64, -2);
}

#[test]
fn sizeof_matches_layout() {
    let r = run_all(
        r#"
struct S { char c; int i; double d; };
int main() {
    return (int)sizeof(struct S) + (int)sizeof(int) * 100 + (int)sizeof(char*) * 10000;
}
"#,
        &[],
    );
    // default target: 64-bit pointers; struct S = 16 (c pad i | d)
    assert_eq!(r, 16 + 400 + 80000);
}

#[test]
fn nested_loops_matrix() {
    let r = run_all(
        r#"
int main() {
    int m[4][4];
    for (int i = 0; i < 4; i++)
        for (int j = 0; j < 4; j++)
            m[i][j] = i * 4 + j;
    int trace = 0;
    for (int i = 0; i < 4; i++) trace += m[i][i];
    return trace;
}
"#,
        &[],
    );
    assert_eq!(r, 5 + 10 + 15); // m[0][0] == 0
}

#[test]
fn optimized_code_agrees() {
    // the full link-time pipeline must preserve minic semantics
    let src = r#"
int square(int x) { return x * x; }
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += square(i);
    return s;
}
"#;
    let expected = run_all(src, &[20]);
    let mut m = llva_minic::compile(src, "t", TargetConfig::default()).expect("compiles");
    let mut pm = llva_opt::link_time_pipeline(&["main"]);
    pm.run(&mut m);
    llva_core::verifier::verify_module(&m).expect("optimized module verifies");
    let mut interp = Interpreter::new(&m);
    assert_eq!(interp.run("main", &[20]).expect("runs"), expected);
    let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
    assert_eq!(mgr.run("main", &[20]).expect("runs").value, expected);
}
