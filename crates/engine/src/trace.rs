//! The software trace cache (paper §4.2).
//!
//! > "We have implemented the tracing strategy and software trace
//! > cache, including the ability to gather cross-procedure traces."
//!
//! Traces are sequences of basic blocks following the hottest CFG
//! successor from a hot seed. When a block makes a direct call to a
//! defined hot function, the trace crosses into the callee (a
//! cross-procedure trace). The cache indexes traces by head block; a
//! runtime reoptimizer would lay these out contiguously and respecialize
//! them — trace-informed inlining + re-running the scalar pipeline is
//! provided as [`reoptimize`].

use crate::profile::ProfileMap;
use llva_core::function::BlockId;
use llva_core::instruction::Opcode;
use llva_core::module::{FuncId, Module};
use llva_core::value::Constant;
use std::collections::{HashMap, HashSet};

/// One trace: a hot path through (possibly several) functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Blocks in execution order.
    pub blocks: Vec<(FuncId, BlockId)>,
    /// Execution count of the seed block.
    pub heat: u64,
    /// Whether the trace crosses a call boundary.
    pub cross_procedure: bool,
}

impl Trace {
    /// The head (entry) of the trace.
    pub fn head(&self) -> (FuncId, BlockId) {
        self.blocks[0]
    }

    /// Number of blocks in the trace.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the trace is empty (never true for formed traces).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// The software trace cache.
#[derive(Debug, Clone, Default)]
pub struct TraceCache {
    traces: Vec<Trace>,
    by_head: HashMap<(FuncId, BlockId), usize>,
}

impl TraceCache {
    /// All traces, hottest first.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Looks up a trace by its head block.
    pub fn lookup(&self, head: (FuncId, BlockId)) -> Option<&Trace> {
        self.by_head.get(&head).map(|&i| &self.traces[i])
    }

    /// Number of cached traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

/// Forms traces from block-frequency profile data.
///
/// `counts` holds one counter per instrumented block (see
/// [`crate::profile`]); blocks executing at least `threshold` times
/// seed traces of up to `max_len` blocks.
pub fn form_traces(
    module: &Module,
    map: &ProfileMap,
    counts: &[u64],
    threshold: u64,
    max_len: usize,
) -> TraceCache {
    let count_of = |f: FuncId, b: BlockId| -> u64 {
        map.index.get(&(f, b)).map_or(0, |&i| counts[i])
    };
    // hottest blocks first
    let mut seeds: Vec<((FuncId, BlockId), u64)> = map
        .index
        .keys()
        .map(|&k| (k, count_of(k.0, k.1)))
        .filter(|&(_, c)| c >= threshold)
        .collect();
    seeds.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut in_trace: HashSet<(FuncId, BlockId)> = HashSet::new();
    let mut cache = TraceCache::default();

    for (seed, heat) in seeds {
        if in_trace.contains(&seed) {
            continue;
        }
        let mut blocks = Vec::new();
        let mut cross = false;
        let mut cur = seed;
        let mut visited: HashSet<(FuncId, BlockId)> = HashSet::new();
        while blocks.len() < max_len {
            if visited.contains(&cur) || in_trace.contains(&cur) {
                break;
            }
            visited.insert(cur);
            blocks.push(cur);
            let (fid, bid) = cur;
            let func = module.function(fid);
            // cross-procedure extension: a hot direct call inside the block
            if let Some(callee) = hot_direct_callee(module, fid, bid, &count_of, threshold) {
                let centry = module.function(callee).entry_block();
                if !visited.contains(&(callee, centry)) && !in_trace.contains(&(callee, centry)) {
                    cross = true;
                    cur = (callee, centry);
                    continue;
                }
            }
            // follow the hottest successor
            let succs = func.successors(bid);
            let next = succs
                .into_iter()
                .map(|s| (s, count_of(fid, s)))
                .max_by_key(|&(_, c)| c);
            match next {
                Some((s, c)) if c >= threshold => cur = (fid, s),
                _ => break,
            }
        }
        if blocks.len() >= 2 {
            for &b in &blocks {
                in_trace.insert(b);
            }
            let idx = cache.traces.len();
            cache.by_head.insert(blocks[0], idx);
            cache.traces.push(Trace {
                blocks,
                heat,
                cross_procedure: cross,
            });
        }
    }
    cache
}

fn hot_direct_callee(
    module: &Module,
    fid: FuncId,
    bid: BlockId,
    count_of: &impl Fn(FuncId, BlockId) -> u64,
    threshold: u64,
) -> Option<FuncId> {
    let func = module.function(fid);
    for &i in func.block(bid).insts() {
        let inst = func.inst(i);
        if inst.opcode() != Opcode::Call {
            continue;
        }
        if let Some(Constant::FunctionAddr { func: callee, .. }) =
            func.value_as_const(inst.operands()[0])
        {
            let cf = module.function(*callee);
            if !cf.is_declaration()
                && !llva_core::intrinsics::is_intrinsic_name(cf.name())
                && count_of(*callee, cf.entry_block()) >= threshold
            {
                return Some(*callee);
            }
        }
    }
    None
}

/// Trace-driven reoptimization: inline the direct calls that hot traces
/// cross, then re-run the scalar pipeline on the module. Returns true
/// if anything changed (callers should re-translate affected code).
pub fn reoptimize(module: &mut Module, cache: &TraceCache) -> bool {
    let mut changed = false;
    let has_cross = cache.traces().iter().any(|t| t.cross_procedure);
    if has_cross {
        let mut inliner = llva_opt::inline::Inline::with_threshold(100);
        changed |= llva_opt::ModulePass::run(&mut inliner, module);
    }
    let mut pm = llva_opt::standard_pipeline();
    let stats = pm.run(module);
    changed |= stats.iter().any(|s| s.changed);
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llee::{ExecutionManager, TargetIsa};
    use crate::profile;

    const PROGRAM: &str = r#"
int %hot_leaf(int %x) {
entry:
    %y = mul int %x, 3
    %z = add int %y, 1
    ret int %z
}

int %main(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %t = call int %hot_leaf(int %i)
    %s2 = add int %s, %t
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#;

    fn profiled_run(n: u64) -> (Module, ProfileMap, Vec<u64>) {
        let mut m = llva_core::parser::parse_module(PROGRAM).expect("parses");
        let map = profile::instrument(&mut m);
        let clean = llva_core::parser::parse_module(PROGRAM).expect("parses");
        let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
        mgr.run("main", &[n]).expect("runs");
        let counts = profile::read_counters(&mgr, &map);
        (clean, map, counts)
    }

    #[test]
    fn forms_loop_trace() {
        let (m, map, counts) = profiled_run(100);
        let cache = form_traces(&m, &map, &counts, 50, 8);
        assert!(!cache.is_empty());
        // the hottest trace covers the loop (header/body) blocks
        let hot = &cache.traces()[0];
        assert!(hot.heat >= 100);
        assert!(hot.len() >= 2);
    }

    #[test]
    fn cross_procedure_trace_found() {
        let (m, map, counts) = profiled_run(100);
        let cache = form_traces(&m, &map, &counts, 50, 8);
        assert!(
            cache.traces().iter().any(|t| t.cross_procedure),
            "the loop body calls hot_leaf every iteration: {:?}",
            cache.traces()
        );
    }

    #[test]
    fn cold_code_not_traced() {
        let (m, map, counts) = profiled_run(2);
        let cache = form_traces(&m, &map, &counts, 50, 8);
        assert!(cache.is_empty(), "nothing is hot after 2 iterations");
    }

    #[test]
    fn lookup_by_head() {
        let (m, map, counts) = profiled_run(100);
        let cache = form_traces(&m, &map, &counts, 50, 8);
        let head = cache.traces()[0].head();
        assert_eq!(cache.lookup(head).map(Trace::head), Some(head));
    }

    #[test]
    fn reoptimize_inlines_hot_callee_and_preserves_semantics() {
        let (mut m, map, counts) = profiled_run(100);
        let cache = form_traces(&m, &map, &counts, 50, 8);
        assert!(reoptimize(&mut m, &cache));
        llva_core::verifier::verify_module(&m).expect("still verifies");
        let main = m.function(m.function_by_name("main").expect("main"));
        let calls = main
            .inst_iter()
            .filter(|&(_, i)| main.inst(i).opcode() == Opcode::Call)
            .count();
        assert_eq!(calls, 0, "hot_leaf inlined into the trace region");
        // semantics preserved
        let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
        let out = mgr.run("main", &[100]).expect("runs");
        // sum over i in 0..100 of (3i + 1)
        let expect: u64 = (0..100).map(|i| 3 * i + 1).sum();
        assert_eq!(out.value, expect);
    }
}
