//! Deterministic fuzzing of the untrusted-input decode paths.
//!
//! LLEE is system software: virtual object code arrives from disk or
//! from an OS-provided storage API, and a cached translation may have
//! rotted in place. No byte string — random, truncated, or bit-flipped
//! — may ever panic the decoder; malformed input must surface as a
//! typed `DecodeError` (ISSUE 2 acceptance criterion).
//!
//! The build environment has no crates.io access, so instead of a
//! fuzzing crate these loops are driven by the same deterministic
//! xorshift64* generator as `proptest_core.rs`: every run explores the
//! same case set, and a failing input is reproducible from the seed.

use llva::core::bytecode::{decode_module, encode_module};
use llva::engine::codec;

/// Deterministic xorshift64* PRNG (no external deps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn usize(&mut self, hi: usize) -> usize {
        (self.next() % hi as u64) as usize
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

fn sample_module_bytes() -> Vec<u8> {
    let m = llva::core::parser::parse_module(
        r#"
%Pair = type { int, int }

@counter = global int 4
@msg = internal constant [3 x sbyte] c"hi\00"

void %touch(%Pair* %p) {
entry:
    %f = getelementptr %Pair* %p, long 0, ubyte 1
    %v = load int* %f
    store int %v, int* %f
    ret void
}

int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}

int %main() {
entry:
    %v = load int* @counter
    %r = call int %fib(int 10)
    %t = add int %r, %v
    ret int %t
}
"#,
    )
    .expect("parses");
    llva::core::verifier::verify_module(&m).expect("verifies");
    encode_module(&m)
}

/// Random byte strings never panic the module decoder. Most are
/// rejected at the magic check; strings that start with the real
/// header exercise the deeper decode paths.
#[test]
fn random_bytes_never_panic_module_decode() {
    let mut rng = Rng::new(0x5eed_f00d);
    for case in 0..4000 {
        let len = rng.usize(256);
        let mut buf = rng.bytes(len);
        // Half the cases get a valid header spliced on so decoding
        // reaches types/globals/functions instead of dying at magic.
        if case % 2 == 0 {
            let header = [b'L', b'L', b'V', b'A', 1, 32, 0];
            for (i, b) in header.iter().enumerate() {
                if i < buf.len() {
                    buf[i] = *b;
                }
            }
        }
        let _ = decode_module(&buf); // must return, not panic
    }
}

/// Every strict truncation of a valid encoding is rejected (no prefix
/// of a well-formed module is itself well-formed), and none panics.
#[test]
fn truncations_of_valid_encoding_error_cleanly() {
    let bytes = sample_module_bytes();
    assert!(decode_module(&bytes).is_ok());
    for cut in 0..bytes.len() {
        assert!(
            decode_module(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes decoded successfully"
        );
    }
}

/// Single-bit flips of a valid encoding never panic. A flip may still
/// decode (e.g. it lands in a constant's payload) — the property under
/// test is absence of panics and allocation bombs, not rejection.
#[test]
fn bit_flips_of_valid_encoding_never_panic() {
    let bytes = sample_module_bytes();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << bit;
            let _ = decode_module(&corrupt);
        }
    }
}

/// Multi-byte corruption bursts (seeded) never panic.
#[test]
fn corruption_bursts_never_panic() {
    let bytes = sample_module_bytes();
    let mut rng = Rng::new(0xbad_cafe);
    for _ in 0..2000 {
        let mut corrupt = bytes.clone();
        let burst = 1 + rng.usize(8);
        for _ in 0..burst {
            let at = rng.usize(corrupt.len());
            corrupt[at] = rng.next() as u8;
        }
        let _ = decode_module(&corrupt);
    }
}

/// The native-code codecs (cached translation payloads) are equally
/// untrusted: random bytes and truncations must error, never panic —
/// for all three targets.
#[test]
fn native_codec_decode_never_panics() {
    let mut rng = Rng::new(0xc0de_c0de);
    for _ in 0..4000 {
        let len = rng.usize(192);
        let buf = rng.bytes(len);
        let _ = codec::decode_x86(&buf);
        let _ = codec::decode_sparc(&buf);
        let _ = codec::decode_riscv(&buf);
        let _ = codec::unframe_entry("some.key", &buf);
    }
}

/// Mutation fuzzing of the RISC-V codec: start from *well-formed*
/// encodings of real translated functions, then bit-flip, overwrite,
/// and truncate them. Corruptions near valid structure probe deeper
/// decoder states than pure random bytes (tags decode, then counts,
/// operands, and register fields go wrong); every one must surface as
/// `Err`, never a panic, and a blob that still round-trips must equal
/// what a fresh decode says it is.
#[test]
fn riscv_codec_survives_mutations_of_valid_blobs() {
    let src = r#"
int %grind(int %n) {
entry:
    %c = setle int %n, 1
    br bool %c, label %base, label %rec
base:
    ret int 1
rec:
    %n1 = sub int %n, 1
    %r = call int %grind(int %n1)
    %d = div int %r, 3
    %f = cast int %d to double
    %g = mul double %f, 2.5
    %h = cast double %g to int
    %m = mul int %h, %n
    ret int %m
}
"#;
    let mut module = llva::core::parser::parse_module(src).expect("parses");
    module.set_target(llva::core::layout::TargetConfig::riscv64());
    let fid = *module.function_ids().first().expect("one function");
    let code = llva::backend::compile_riscv(&module, fid);
    let blob = codec::encode_riscv(&code);
    let mut rng = Rng::new(0x715c_u64);
    for _ in 0..4000 {
        let mut corrupt = blob.clone();
        // truncate, then mutate 1..=4 bytes
        if rng.usize(4) == 0 {
            corrupt.truncate(rng.usize(corrupt.len()));
        }
        if !corrupt.is_empty() {
            for _ in 0..1 + rng.usize(4) {
                let at = rng.usize(corrupt.len());
                corrupt[at] = rng.next() as u8;
            }
        }
        if let Ok(decoded) = codec::decode_riscv(&corrupt) {
            // a mutation the codec accepts must still be
            // re-encodable: decode is total on its own image
            let reencoded = codec::encode_riscv(&decoded);
            let redecoded = codec::decode_riscv(&reencoded).expect("round trip");
            assert_eq!(decoded, redecoded);
        }
    }
}
