//! Global value numbering (dominator-scoped CSE).
//!
//! Walks the dominator tree keeping a scoped table of expression keys
//! `(opcode, type, operands)`; a pure instruction whose key was already
//! computed in a dominating position is replaced by the earlier value.
//! Commutative operations normalize operand order. This is one of the
//! "sparse" SSA-enabled optimizations the paper credits the V-ISA design
//! for (§3.1, §5.1).

use crate::pass::ModulePass;
use llva_core::dominators::DomTree;
use llva_core::function::BlockId;
use llva_core::instruction::Opcode;
use llva_core::module::Module;
use llva_core::types::TypeId;
use llva_core::value::ValueId;
use std::collections::HashMap;

/// The GVN pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gvn {
    replaced: usize,
}

impl Gvn {
    /// Creates the pass.
    pub fn new() -> Gvn {
        Gvn::default()
    }

    /// Redundant instructions replaced in the last run.
    pub fn replaced(&self) -> usize {
        self.replaced
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ExprKey {
    opcode: Opcode,
    ty: TypeId,
    operands: Vec<ValueId>,
}

impl ModulePass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }

    fn run(&mut self, module: &mut Module) -> bool {
        self.replaced = 0;
        for fid in module.function_ids() {
            if module.function(fid).is_declaration() {
                continue;
            }
            self.replaced += run_function(module, fid);
        }
        self.replaced > 0
    }
}

fn is_pure(inst: &llva_core::instruction::Instruction) -> bool {
    let op = inst.opcode();
    let pure_kind = op.is_binary()
        || op.is_comparison()
        || matches!(op, Opcode::Cast | Opcode::GetElementPtr);
    // A trapping op with exceptions enabled is not freely deduplicable in
    // general; deduplicating *identical* operands is still safe (same
    // trap either way) as long as the earlier one dominates, which GVN
    // guarantees. div/rem with identical operands trap identically, so
    // allow them.
    pure_kind
}

fn run_function(module: &mut Module, fid: llva_core::module::FuncId) -> usize {
    let dom = DomTree::compute(module.function(fid));
    let mut replaced = 0usize;
    // scoped hash table: stack of scopes, one per dominator-tree depth
    let mut table: HashMap<ExprKey, Vec<(usize, ValueId)>> = HashMap::new();
    let mut depth = 0usize;

    enum Action {
        Visit(BlockId),
        Leave(Vec<ExprKey>),
    }
    let entry = module.function(fid).entry_block();
    let mut agenda = vec![Action::Visit(entry)];
    while let Some(action) = agenda.pop() {
        match action {
            Action::Leave(keys) => {
                depth -= 1;
                for k in keys {
                    if let Some(stack) = table.get_mut(&k) {
                        stack.pop();
                        if stack.is_empty() {
                            table.remove(&k);
                        }
                    }
                }
            }
            Action::Visit(block) => {
                depth += 1;
                let mut inserted: Vec<ExprKey> = Vec::new();
                let insts: Vec<_> = module.function(fid).block(block).insts().to_vec();
                for inst_id in insts {
                    let func = module.function(fid);
                    let inst = func.inst(inst_id);
                    if !is_pure(inst) {
                        continue;
                    }
                    let Some(result) = func.inst_result(inst_id) else {
                        continue;
                    };
                    let mut operands = inst.operands().to_vec();
                    if matches!(
                        inst.opcode(),
                        Opcode::Add | Opcode::Mul | Opcode::And | Opcode::Or | Opcode::Xor
                            | Opcode::SetEq
                            | Opcode::SetNe
                    ) {
                        operands.sort();
                    }
                    let key = ExprKey {
                        opcode: inst.opcode(),
                        ty: inst.result_type(),
                        operands,
                    };
                    if let Some(stack) = table.get(&key) {
                        if let Some(&(_, existing)) = stack.last() {
                            let func = module.function_mut(fid);
                            func.replace_all_uses(result, existing);
                            func.remove_inst(inst_id);
                            replaced += 1;
                            continue;
                        }
                    }
                    table.entry(key.clone()).or_default().push((depth, result));
                    inserted.push(key);
                }
                agenda.push(Action::Leave(inserted));
                for &child in dom.children(block) {
                    agenda.push(Action::Visit(child));
                }
            }
        }
    }
    replaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_core::builder::FunctionBuilder;
    use llva_core::layout::TargetConfig;
    use llva_core::verifier::verify_module;

    #[test]
    fn eliminates_redundant_add_in_same_block() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int, int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let (x, y) = (b.func().args()[0], b.func().args()[1]);
        let a1 = b.add(x, y);
        let a2 = b.add(x, y);
        let s = b.mul(a1, a2);
        b.ret(Some(s));
        let mut pass = Gvn::new();
        assert!(pass.run(&mut m));
        assert_eq!(pass.replaced(), 1);
        verify_module(&m).expect("verifies");
        assert_eq!(m.function(f).num_insts(), 3);
    }

    #[test]
    fn commutative_normalization() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int, int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let (x, y) = (b.func().args()[0], b.func().args()[1]);
        let a1 = b.add(x, y);
        let a2 = b.add(y, x); // commuted
        let s = b.mul(a1, a2);
        b.ret(Some(s));
        let mut pass = Gvn::new();
        assert!(pass.run(&mut m));
        assert_eq!(pass.replaced(), 1);
    }

    #[test]
    fn sub_is_not_commutative() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int, int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let (x, y) = (b.func().args()[0], b.func().args()[1]);
        let a1 = b.sub(x, y);
        let a2 = b.sub(y, x);
        let s = b.mul(a1, a2);
        b.ret(Some(s));
        let mut pass = Gvn::new();
        assert!(!pass.run(&mut m));
        assert_eq!(m.function(f).num_insts(), 4);
    }

    #[test]
    fn dominating_definition_reused_across_blocks() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int, int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        let next = b.block("next");
        b.switch_to(e);
        let (x, y) = (b.func().args()[0], b.func().args()[1]);
        let a1 = b.add(x, y);
        let _ = a1;
        b.br(next);
        b.switch_to(next);
        let a2 = b.add(x, y); // dominated by a1's block
        let s = b.mul(a2, a1);
        b.ret(Some(s));
        let mut pass = Gvn::new();
        assert!(pass.run(&mut m));
        verify_module(&m).expect("verifies");
        assert_eq!(m.function(f).num_insts(), 4); // add, br, mul, ret
    }

    #[test]
    fn sibling_branches_do_not_share() {
        // values computed in one arm must not replace the same expression
        // in the sibling arm (no dominance)
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int, int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        let l = b.block("l");
        let r = b.block("r");
        let j = b.block("j");
        b.switch_to(e);
        let (x, y) = (b.func().args()[0], b.func().args()[1]);
        let c = b.setlt(x, y);
        b.cond_br(c, l, r);
        b.switch_to(l);
        let a1 = b.add(x, y);
        b.br(j);
        b.switch_to(r);
        let a2 = b.add(x, y);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(int, vec![(a1, l), (a2, r)]);
        b.ret(Some(p));
        let mut pass = Gvn::new();
        assert!(!pass.run(&mut m));
        verify_module(&m).expect("verifies");
    }

    #[test]
    fn gep_deduplication() {
        let src = r#"
%S = type { int, int }

int %f(%S* %p) {
entry:
    %a = getelementptr %S* %p, long 0, ubyte 1
    %b = getelementptr %S* %p, long 0, ubyte 1
    %va = load int* %a
    %vb = load int* %b
    %s = add int %va, %vb
    ret int %s
}
"#;
        let mut m = llva_core::parser::parse_module(src).expect("parses");
        let mut pass = Gvn::new();
        assert!(pass.run(&mut m));
        assert_eq!(pass.replaced(), 1);
        verify_module(&m).expect("verifies");
    }
}
