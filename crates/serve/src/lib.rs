//! # llva-serve — fault-isolated multi-tenant execution service
//!
//! The serving layer over the LLVA execution environment: the paper
//! puts the translator and its caches *below* the OS boundary
//! (§4.1–4.2), which means one implementation serves every consumer on
//! the machine — so the reproduction's capstone is a service where
//! many mutually-untrusting tenants execute modules through the tiered
//! supervisor while sharing one translation cache.
//!
//! Layers (each its own module):
//!
//! * [`quota`] — per-tenant limits, admission counters, and
//!   [`ServeError`];
//! * [`service`] — [`ExecService`]: per-tenant executor threads,
//!   bounded in-flight queues, a sharded content-addressed translation
//!   cache, per-call deadlines, and bounded retry-with-backoff;
//! * [`metrics`] — the `GET /metrics`-style Prometheus text surface;
//! * [`proto`] — the length-framed request/response wire codec;
//! * [`server`] — the localhost TCP listener (framed protocol with an
//!   HTTP `GET /metrics` sniff on the same port).
//!
//! The robustness claims (one tenant's poisoned function quarantines
//! only that tenant; quotas reject instead of queueing unboundedly;
//! transient storage faults heal within bounded retries) are proven by
//! `tests/service.rs` and the `tests/soak.rs` fault-isolation soak.
//! The self-healing claims (dead/wedged executors respawn warm from a
//! journal; every accepted call resolves; circuit breakers shed load
//! from poisoned functions; drain shuts down cleanly) are proven by
//! the `tests/chaos.rs` executor-kill soak — see DESIGN.md §16.

pub mod metrics;
pub mod proto;
pub mod quota;
pub mod server;
pub mod service;

pub use proto::{Request, Response};
pub use quota::{CounterValues, QuotaKind, ServeError, TenantCounters, TenantQuota};
pub use server::Server;
pub use service::{
    executor_kill_from_env, BoxedStorage, BreakerSnapshot, BreakerState, CallResult, DrainReport,
    ExecService, ExecutorKill, ExecutorKillPoint, LoadReply, ModuleSnapshot, ServeConfig,
    TenantSnapshot,
};
