//! Translation-cost bench (Table 2, columns 10–12): whole-program JIT
//! translation time per workload, for both targets. The paper's claim:
//! "simple translation costs under 1% of total execution time except
//! for very short runs".

use criterion::{criterion_group, criterion_main, Criterion};
use llva_core::layout::TargetConfig;
use llva_engine::llee::{ExecutionManager, TargetIsa};

fn bench_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("translate");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for name in ["ptrdist-anagram", "181.mcf", "300.twolf", "254.gap"] {
        let w = llva_workloads::by_name(name).expect("workload");
        for isa in TargetIsa::ALL {
            group.bench_function(format!("{name}/{isa}"), |b| {
                b.iter_batched(
                    || {
                        let mut m = w.compile(TargetConfig::default());
                        let mut pm = llva_opt::standard_pipeline();
                        pm.run(&mut m);
                        ExecutionManager::new(m, isa)
                    },
                    |mut mgr| {
                        mgr.translate_all().expect("translates");
                        mgr
                    },
                    criterion::BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

fn bench_translate_per_function(c: &mut Criterion) {
    // fine-grained: cost of translating a single hot function
    let mut group = c.benchmark_group("translate_one");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(30);
    let w = llva_workloads::by_name("186.crafty").expect("workload");
    group.bench_function("crafty_search_x86", |b| {
        let m = w.compile(TargetConfig::ia32());
        let f = m.function_by_name("search").expect("search");
        b.iter(|| llva_backend::compile_x86(&m, f));
    });
    group.bench_function("crafty_search_sparc", |b| {
        let m = w.compile(TargetConfig::sparc_v9());
        let f = m.function_by_name("search").expect("search");
        b.iter(|| llva_backend::compile_sparc(&m, f));
    });
    group.finish();
}

criterion_group!(benches, bench_translate, bench_translate_per_function);
criterion_main!(benches);
