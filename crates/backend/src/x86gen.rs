//! The IA-32 code generator.
//!
//! Faithful to the paper's description of its x86 back end: it
//! "performs virtually no optimization and very simple register
//! allocation resulting in significant spill code" (§5.2). Every SSA
//! value is homed in a stack slot; each LLVA instruction loads its
//! operands (using memory-operand forms where the ISA allows), computes
//! in EAX/ECX/EDX, and stores its result. The only cleverness retained
//! is compare/branch fusion, which real naive code generators also do.
//!
//! `phi` nodes are eliminated by copies in predecessor blocks (paper
//! §3.1: "The translator eliminates the φ-nodes by introducing copy
//! operations into predecessor basic blocks"), routed through staging
//! slots so parallel phi semantics are preserved.

use crate::common::{
    access_of, canonical_const, classify, fused_compares, inst_defining, intrinsic_target,
    ValClass,
};
use llva_core::function::{BlockId, Function};
use llva_core::instruction::{InstId, Opcode};
use llva_core::module::{FuncId, Module};
use llva_core::types::{TypeId, TypeKind};
use llva_core::value::{Constant, ValueId};
use llva_machine::common::{Sym, Width};
use llva_machine::x86::{AluOp, Cond, Fpr, Gpr, MemOp, Norm, X86Inst};
use std::collections::{HashMap, HashSet};

/// Compiles one function to x86 code. The module must verify.
pub fn compile_x86(module: &Module, fid: FuncId) -> Vec<X86Inst> {
    let func = module.function(fid);
    assert!(!func.is_declaration(), "cannot compile a declaration");
    let mut cg = CodeGen::new(module, func);
    cg.run();
    cg.finish()
}

const EAX: Gpr = Gpr::Eax;
const ECX: Gpr = Gpr::Ecx;
const EDX: Gpr = Gpr::Edx;
const F0: Fpr = Fpr(0);
const F1: Fpr = Fpr(1);

struct CodeGen<'a> {
    module: &'a Module,
    func: &'a Function,
    code: Vec<X86Inst>,
    slots: HashMap<ValueId, MemOp>,
    staging: HashMap<InstId, MemOp>,
    alloca_home: HashMap<InstId, i32>,
    frame_size: i32,
    fused: HashSet<InstId>,
    block_starts: HashMap<BlockId, u32>,
    fixups: Vec<(usize, BlockId)>,
    bool_ty: TypeId,
}

impl<'a> CodeGen<'a> {
    fn new(module: &'a Module, func: &'a Function) -> CodeGen<'a> {
        let bool_ty = module
            .types()
            .iter()
            .find_map(|(id, k)| matches!(k, TypeKind::Bool).then_some(id))
            .unwrap_or_else(|| TypeId::from_index((u32::MAX - 1) as usize));
        let mut cg = CodeGen {
            module,
            func,
            code: Vec::new(),
            slots: HashMap::new(),
            staging: HashMap::new(),
            alloca_home: HashMap::new(),
            frame_size: 0,
            fused: fused_compares(func),
            block_starts: HashMap::new(),
            fixups: Vec::new(),
            bool_ty,
        };
        cg.assign_frame();
        cg
    }

    fn new_slot(&mut self) -> MemOp {
        self.frame_size += 8;
        MemOp {
            base: Gpr::Ebp,
            disp: -self.frame_size,
        }
    }

    fn assign_frame(&mut self) {
        // arguments live where the caller pushed them
        for (i, &a) in self.func.args().iter().enumerate() {
            self.slots.insert(
                a,
                MemOp {
                    base: Gpr::Ebp,
                    disp: 8 + 8 * i as i32,
                },
            );
        }
        for (_, inst_id) in self.func.inst_iter() {
            if let Some(r) = self.func.inst_result(inst_id) {
                let slot = self.new_slot();
                self.slots.insert(r, slot);
            }
            let inst = self.func.inst(inst_id);
            if inst.opcode() == Opcode::Phi {
                let slot = self.new_slot();
                self.staging.insert(inst_id, slot);
            }
            if inst.opcode() == Opcode::Alloca && inst.operands().is_empty() {
                // paper §3.2: fixed-size allocas are preallocated in the frame
                let pointee = self
                    .module
                    .types()
                    .pointee(inst.result_type())
                    .expect("alloca yields a pointer");
                let size = self.module.target().size_of(self.module.types(), pointee);
                let size = ((size + 7) & !7) as i32;
                self.frame_size += size;
                self.alloca_home.insert(inst_id, -self.frame_size);
            }
        }
    }

    fn vty(&self, v: ValueId) -> TypeId {
        self.func.value_type(v, self.bool_ty)
    }

    fn slot(&self, v: ValueId) -> MemOp {
        self.slots[&v]
    }

    /// Emits code to materialize `v` into GPR `r`.
    fn load_into(&mut self, v: ValueId, r: Gpr) {
        match self.func.value_as_const(v) {
            Some(Constant::GlobalAddr { global, .. }) => {
                self.code
                    .push(X86Inst::MovRSym(r, Sym::Global(global.index() as u32)));
            }
            Some(Constant::FunctionAddr { func, .. }) => {
                self.code
                    .push(X86Inst::MovRSym(r, Sym::Function(func.index() as u32)));
            }
            Some(c) => {
                let bits = canonical_const(self.module, c);
                self.code.push(X86Inst::MovRI(r, bits as i64));
            }
            None => {
                self.code.push(X86Inst::Load {
                    dst: r,
                    mem: self.slot(v),
                    width: Width::B8,
                    signed: false,
                });
            }
        }
    }

    /// Emits code to materialize a float value into `f`.
    fn fload_into(&mut self, v: ValueId, f: Fpr) {
        match self.func.value_as_const(v) {
            Some(c) => {
                let bits = canonical_const(self.module, c);
                self.code.push(X86Inst::MovRI(EAX, bits as i64));
                self.code.push(X86Inst::MovFG(f, EAX));
            }
            None => {
                self.code.push(X86Inst::FLoad {
                    dst: f,
                    mem: self.slot(v),
                    is32: false,
                });
            }
        }
    }

    fn store_result_from(&mut self, inst: InstId, r: Gpr) {
        let v = self.func.inst_result(inst).expect("has a result");
        self.code.push(X86Inst::Store {
            src: r,
            mem: self.slot(v),
            width: Width::B8,
        });
    }

    fn fstore_result(&mut self, inst: InstId, f: Fpr) {
        let v = self.func.inst_result(inst).expect("has a result");
        self.code.push(X86Inst::FStore {
            src: f,
            mem: self.slot(v),
            is32: false,
        });
    }

    /// An immediate operand if `v` is a non-address constant that fits
    /// in an i32 immediate.
    fn as_imm(&self, v: ValueId) -> Option<i64> {
        match self.func.value_as_const(v) {
            Some(
                c @ (Constant::Int { .. }
                | Constant::Bool(_)
                | Constant::Null(_)
                | Constant::Undef(_)),
            ) => {
                let bits = canonical_const(self.module, c) as i64;
                i32::try_from(bits).ok().map(i64::from)
            }
            _ => None,
        }
    }

    /// Whether `v` is a slot-homed value (usable as a memory operand).
    fn in_slot(&self, v: ValueId) -> bool {
        self.slots.contains_key(&v)
    }

    /// The free width normalization real IA-32 arithmetic provides for
    /// 32-bit operands.
    fn norm_of(&self, ty: TypeId) -> Norm {
        let tt = self.module.types();
        match tt.int_bits(ty) {
            Some(32) => {
                if tt.is_signed_integer(ty) {
                    Norm::Sext32
                } else {
                    Norm::Zext32
                }
            }
            _ => Norm::None,
        }
    }

    /// Normalizes `r` for any width including 32 bits (used by casts,
    /// where there is no arithmetic instruction to fold the width into).
    fn normalize_full(&mut self, r: Gpr, ty: TypeId) {
        let tt = self.module.types();
        if let Some(w) = tt.int_bits(ty) {
            if w < 64 {
                let width = Width::from_bytes(u64::from(w.max(8)) / 8);
                if tt.is_signed_integer(ty) {
                    self.code.push(X86Inst::SignExtend(r, width));
                } else {
                    self.code.push(X86Inst::ZeroExtend(r, width));
                }
            }
        }
    }

    /// Normalizes `r` to the canonical representation of `ty` with an
    /// explicit extend — needed only for 8/16-bit types (32-bit widths
    /// are free via [`Norm`], 64-bit needs nothing).
    fn normalize(&mut self, r: Gpr, ty: TypeId) {
        let tt = self.module.types();
        if let Some(w) = tt.int_bits(ty) {
            if w < 32 {
                let width = Width::from_bytes(u64::from(w.max(8)) / 8);
                if tt.is_signed_integer(ty) {
                    self.code.push(X86Inst::SignExtend(r, width));
                } else {
                    self.code.push(X86Inst::ZeroExtend(r, width));
                }
            }
        }
    }

    fn jump(&mut self, target: BlockId) {
        self.fixups.push((self.code.len(), target));
        self.code.push(X86Inst::Jmp(0));
    }

    fn jcc(&mut self, cond: Cond, target: BlockId) {
        self.fixups.push((self.code.len(), target));
        self.code.push(X86Inst::Jcc(cond, 0));
    }

    fn cond_for(&self, op: Opcode, ty: TypeId) -> Cond {
        let tt = self.module.types();
        let signed = tt.is_signed_integer(ty) || tt.is_float(ty);
        match (op, signed) {
            (Opcode::SetEq, _) => Cond::E,
            (Opcode::SetNe, _) => Cond::Ne,
            (Opcode::SetLt, true) => Cond::L,
            (Opcode::SetLt, false) => Cond::B,
            (Opcode::SetGt, true) => Cond::G,
            (Opcode::SetGt, false) => Cond::A,
            (Opcode::SetLe, true) => Cond::Le,
            (Opcode::SetLe, false) => Cond::Be,
            (Opcode::SetGe, true) => Cond::Ge,
            (Opcode::SetGe, false) => Cond::Ae,
            _ => unreachable!("not a comparison"),
        }
    }

    /// Emits the flag-setting compare for a `set*` instruction.
    fn emit_compare_flags(&mut self, inst_id: InstId) {
        let inst = self.func.inst(inst_id);
        let (a, b) = (inst.operands()[0], inst.operands()[1]);
        let ty = self.vty(a);
        match classify(self.module, ty) {
            ValClass::Int => {
                self.load_into(a, EAX);
                if let Some(imm) = self.as_imm(b) {
                    self.code.push(X86Inst::CmpRI(EAX, imm));
                } else if self.in_slot(b) {
                    self.code.push(X86Inst::CmpRM(EAX, self.slot(b)));
                } else {
                    self.load_into(b, ECX);
                    self.code.push(X86Inst::CmpRR(EAX, ECX));
                }
            }
            ValClass::F32 | ValClass::F64 => {
                let is32 = classify(self.module, ty) == ValClass::F32;
                self.fload_into(a, F0);
                self.fload_into(b, F1);
                self.code.push(X86Inst::FCmp(F0, F1, is32));
            }
        }
    }

    fn run(&mut self) {
        // prologue
        self.code.push(X86Inst::Push(Gpr::Ebp));
        self.code.push(X86Inst::MovRR(Gpr::Ebp, Gpr::Esp));
        let frame = self.frame_size;
        if frame > 0 {
            self.code
                .push(X86Inst::AluRI(AluOp::Sub, Gpr::Esp, i64::from(frame), Norm::None));
        }
        let order = self.func.block_order().to_vec();
        for (bi, &block) in order.iter().enumerate() {
            self.block_starts.insert(block, self.code.len() as u32);
            let next_block = order.get(bi + 1).copied();
            let insts = self.func.block(block).insts().to_vec();
            for &inst_id in &insts {
                self.emit_inst(block, inst_id, next_block);
            }
        }
        // patch branch targets
        for (idx, block) in std::mem::take(&mut self.fixups) {
            let target = self.block_starts[&block];
            match &mut self.code[idx] {
                X86Inst::Jmp(t) | X86Inst::Jcc(_, t) => *t = target,
                X86Inst::CallFn { unwind, .. } | X86Inst::CallIndirect { unwind, .. } => {
                    *unwind = Some(target);
                }
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
    }

    fn finish(self) -> Vec<X86Inst> {
        self.code
    }

    /// Copies phi incomings of `succ` for the edge `block -> succ` into
    /// the staging slots.
    fn emit_phi_copies(&mut self, block: BlockId, succ: BlockId) {
        let phis: Vec<InstId> = self
            .func
            .block(succ)
            .insts()
            .iter()
            .copied()
            .filter(|&i| self.func.inst(i).opcode() == Opcode::Phi)
            .collect();
        for phi in phis {
            let Some(incoming) = self.func.phi_incoming(phi, block) else {
                continue;
            };
            let stage = self.staging[&phi];
            self.load_into(incoming, EAX);
            self.code.push(X86Inst::Store {
                src: EAX,
                mem: stage,
                width: Width::B8,
            });
        }
    }

    fn emit_all_phi_copies(&mut self, block: BlockId) {
        for succ in self.func.successors(block) {
            self.emit_phi_copies(block, succ);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn emit_inst(&mut self, block: BlockId, inst_id: InstId, next_block: Option<BlockId>) {
        let inst = self.func.inst(inst_id).clone();
        let op = inst.opcode();
        let ops = inst.operands().to_vec();
        let blocks = inst.block_operands().to_vec();
        let tt = self.module.types();

        if self.fused.contains(&inst_id) {
            return; // emitted at the branch
        }

        match op {
            _ if op.is_binary() => {
                let ty = inst.result_type();
                match classify(self.module, ty) {
                    ValClass::Int => self.emit_int_binary(inst_id, op, &ops, ty, inst.exceptions_enabled()),
                    class => {
                        let is32 = class == ValClass::F32;
                        let fop = match op {
                            Opcode::Add => llva_machine::x86::FpOp::Add,
                            Opcode::Sub => llva_machine::x86::FpOp::Sub,
                            Opcode::Mul => llva_machine::x86::FpOp::Mul,
                            Opcode::Div | Opcode::Rem => llva_machine::x86::FpOp::Div,
                            _ => panic!("bitwise op on float"),
                        };
                        self.fload_into(ops[0], F0);
                        self.fload_into(ops[1], F1);
                        if op == Opcode::Rem {
                            // x - trunc(x/y)*y
                            self.code.push(X86Inst::FMovRR(Fpr(2), F0));
                            self.code
                                .push(X86Inst::FAlu(llva_machine::x86::FpOp::Div, Fpr(2), F1, is32));
                            self.code.push(X86Inst::CvtFI {
                                dst: EAX,
                                src: Fpr(2),
                                from32: is32,
                                signed: true,
                            });
                            self.code.push(X86Inst::CvtIF {
                                dst: Fpr(2),
                                src: EAX,
                                to32: is32,
                                signed: true,
                            });
                            self.code
                                .push(X86Inst::FAlu(llva_machine::x86::FpOp::Mul, Fpr(2), F1, is32));
                            self.code
                                .push(X86Inst::FAlu(llva_machine::x86::FpOp::Sub, F0, Fpr(2), is32));
                        } else {
                            self.code.push(X86Inst::FAlu(fop, F0, F1, is32));
                        }
                        self.fstore_result(inst_id, F0);
                    }
                }
            }
            _ if op.is_comparison() => {
                self.emit_compare_flags(inst_id);
                let cond = self.cond_for(op, self.vty(ops[0]));
                self.code.push(X86Inst::MovRI(EAX, 0));
                self.code.push(X86Inst::Setcc(cond, EAX));
                self.store_result_from(inst_id, EAX);
            }
            Opcode::Ret => {
                if let Some(&v) = ops.first() {
                    match classify(self.module, self.vty(v)) {
                        ValClass::Int => self.load_into(v, EAX),
                        _ => {
                            self.fload_into(v, F0);
                            self.code.push(X86Inst::MovGF(EAX, F0));
                        }
                    }
                }
                self.code.push(X86Inst::MovRR(Gpr::Esp, Gpr::Ebp));
                self.code.push(X86Inst::Pop(Gpr::Ebp));
                self.code.push(X86Inst::Ret);
            }
            Opcode::Br => {
                self.emit_all_phi_copies(block);
                if ops.is_empty() {
                    if next_block != Some(blocks[0]) {
                        self.jump(blocks[0]);
                    }
                } else {
                    let cond_val = ops[0];
                    let (cond, _) = match inst_defining(self.func, cond_val) {
                        Some(def) if self.fused.contains(&def) => {
                            self.emit_compare_flags(def);
                            let def_inst = self.func.inst(def);
                            (
                                self.cond_for(def_inst.opcode(), self.vty(def_inst.operands()[0])),
                                (),
                            )
                        }
                        _ => {
                            self.load_into(cond_val, EAX);
                            self.code.push(X86Inst::CmpRI(EAX, 0));
                            (Cond::Ne, ())
                        }
                    };
                    self.jcc(cond, blocks[0]);
                    if next_block != Some(blocks[1]) {
                        self.jump(blocks[1]);
                    }
                }
            }
            Opcode::Mbr => {
                self.emit_all_phi_copies(block);
                self.load_into(ops[0], EAX);
                for (i, &case) in ops[1..].iter().enumerate() {
                    let imm = self.as_imm(case).expect("mbr cases are constants");
                    self.code.push(X86Inst::CmpRI(EAX, imm));
                    self.jcc(Cond::E, blocks[1 + i]);
                }
                if next_block != Some(blocks[0]) {
                    self.jump(blocks[0]);
                }
            }
            Opcode::Call | Opcode::Invoke => {
                self.emit_call(block, inst_id, op, &ops, &blocks, next_block);
            }
            Opcode::Unwind => {
                self.code.push(X86Inst::Unwind);
            }
            Opcode::Load => {
                let pointee = tt.pointee(self.vty(ops[0])).expect("load from pointer");
                let (width, signed) = access_of(self.module, pointee);
                self.load_into(ops[0], EAX);
                match classify(self.module, pointee) {
                    ValClass::Int => {
                        self.code.push(X86Inst::Load {
                            dst: ECX,
                            mem: MemOp { base: EAX, disp: 0 },
                            width,
                            signed,
                        });
                        self.store_result_from(inst_id, ECX);
                    }
                    class => {
                        self.code.push(X86Inst::FLoad {
                            dst: F0,
                            mem: MemOp { base: EAX, disp: 0 },
                            is32: class == ValClass::F32,
                        });
                        self.fstore_result(inst_id, F0);
                    }
                }
            }
            Opcode::Store => {
                let pointee = tt.pointee(self.vty(ops[1])).expect("store to pointer");
                let (width, _) = access_of(self.module, pointee);
                self.load_into(ops[0], EAX);
                self.load_into(ops[1], ECX);
                self.code.push(X86Inst::Store {
                    src: EAX,
                    mem: MemOp { base: ECX, disp: 0 },
                    width,
                });
            }
            Opcode::GetElementPtr => self.emit_gep(inst_id, &ops),
            Opcode::Alloca => {
                if ops.is_empty() {
                    let disp = self.alloca_home[&inst_id];
                    self.code.push(X86Inst::Lea(
                        EAX,
                        MemOp {
                            base: Gpr::Ebp,
                            disp,
                        },
                    ));
                } else {
                    // dynamic: esp -= size * count (8-byte aligned)
                    let pointee = tt.pointee(inst.result_type()).expect("alloca pointer");
                    let size = self.module.target().size_of(tt, pointee).max(1);
                    let size = (size + 7) & !7;
                    self.load_into(ops[0], ECX);
                    self.code.push(X86Inst::MovRI(EDX, size as i64));
                    self.code.push(X86Inst::IMulRR(ECX, EDX, Norm::None));
                    self.code.push(X86Inst::AluRR(AluOp::Sub, Gpr::Esp, ECX, Norm::None));
                    self.code.push(X86Inst::MovRR(EAX, Gpr::Esp));
                }
                self.store_result_from(inst_id, EAX);
            }
            Opcode::Cast => self.emit_cast(inst_id, ops[0], inst.result_type()),
            Opcode::Phi => {
                let stage = self.staging[&inst_id];
                self.code.push(X86Inst::Load {
                    dst: EAX,
                    mem: stage,
                    width: Width::B8,
                    signed: false,
                });
                self.store_result_from(inst_id, EAX);
            }
            _ => unreachable!("all opcodes covered"),
        }
    }

    fn emit_int_binary(
        &mut self,
        inst_id: InstId,
        op: Opcode,
        ops: &[ValueId],
        ty: TypeId,
        exceptions: bool,
    ) {
        let tt = self.module.types();
        let signed = tt.is_signed_integer(ty);
        match op {
            Opcode::Div | Opcode::Rem => {
                self.load_into(ops[0], EAX);
                if signed {
                    self.code.push(X86Inst::Cdq);
                } else {
                    self.code.push(X86Inst::MovRI(EDX, 0));
                }
                self.load_into(ops[1], ECX);
                self.code.push(X86Inst::Div {
                    signed,
                    divisor: ECX,
                    trapping: exceptions,
                    norm: self.norm_of(ty),
                });
                let out = if op == Opcode::Div { EAX } else { EDX };
                self.normalize(out, ty);
                self.store_result_from(inst_id, out);
            }
            Opcode::Mul => {
                let norm = self.norm_of(ty);
                self.load_into(ops[0], EAX);
                if self.in_slot(ops[1]) {
                    self.code.push(X86Inst::IMulRM(EAX, self.slot(ops[1]), norm));
                } else {
                    self.load_into(ops[1], ECX);
                    self.code.push(X86Inst::IMulRR(EAX, ECX, norm));
                }
                self.normalize(EAX, ty);
                self.store_result_from(inst_id, EAX);
            }
            Opcode::Shl | Opcode::Shr => {
                let alu = match (op, signed) {
                    (Opcode::Shl, _) => AluOp::Shl,
                    (Opcode::Shr, true) => AluOp::Sar,
                    (Opcode::Shr, false) => AluOp::Shr,
                    _ => unreachable!(),
                };
                let norm = if op == Opcode::Shl {
                    self.norm_of(ty)
                } else {
                    Norm::None
                };
                self.load_into(ops[0], EAX);
                if let Some(imm) = self.as_imm(ops[1]) {
                    self.code.push(X86Inst::AluRI(alu, EAX, imm, norm));
                } else {
                    self.load_into(ops[1], ECX);
                    self.code.push(X86Inst::AluRR(alu, EAX, ECX, norm));
                }
                if op == Opcode::Shl {
                    self.normalize(EAX, ty);
                }
                self.store_result_from(inst_id, EAX);
            }
            _ => {
                let alu = match op {
                    Opcode::Add => AluOp::Add,
                    Opcode::Sub => AluOp::Sub,
                    Opcode::And => AluOp::And,
                    Opcode::Or => AluOp::Or,
                    Opcode::Xor => AluOp::Xor,
                    _ => unreachable!(),
                };
                let norm = if matches!(op, Opcode::Add | Opcode::Sub) {
                    self.norm_of(ty)
                } else {
                    Norm::None
                };
                self.load_into(ops[0], EAX);
                if let Some(imm) = self.as_imm(ops[1]) {
                    self.code.push(X86Inst::AluRI(alu, EAX, imm, norm));
                } else if self.in_slot(ops[1]) {
                    self.code.push(X86Inst::AluRM(alu, EAX, self.slot(ops[1]), norm));
                } else {
                    self.load_into(ops[1], ECX);
                    self.code.push(X86Inst::AluRR(alu, EAX, ECX, norm));
                }
                if matches!(op, Opcode::Add | Opcode::Sub) {
                    self.normalize(EAX, ty);
                }
                self.store_result_from(inst_id, EAX);
            }
        }
    }

    fn emit_call(
        &mut self,
        block: BlockId,
        inst_id: InstId,
        op: Opcode,
        ops: &[ValueId],
        blocks: &[BlockId],
        next_block: Option<BlockId>,
    ) {
        let args = &ops[1..];
        // push right-to-left
        for &a in args.iter().rev() {
            self.load_into(a, EAX);
            self.code.push(X86Inst::Push(EAX));
        }
        let cleanup = 8 * args.len() as i64;
        let is_invoke = op == Opcode::Invoke;
        // the call itself
        let call_idx = self.code.len();
        if let Some(intr) = intrinsic_target(self.module, self.func, ops[0]) {
            self.code.push(X86Inst::CallIntrinsic {
                which: intr,
                nargs: args.len() as u8,
            });
        } else if let Some(Constant::FunctionAddr { func, .. }) = self.func.value_as_const(ops[0])
        {
            self.code.push(X86Inst::CallFn {
                func: func.index() as u32,
                unwind: None,
            });
        } else {
            self.load_into(ops[0], ECX);
            // reloading clobbers nothing pushed; call through ECX
            let reload = self.code.pop();
            // load_into may have emitted 1+ insts; put them back
            if let Some(i) = reload {
                self.code.push(i);
            }
            self.code.push(X86Inst::CallIndirect {
                target: ECX,
                unwind: None,
            });
        }
        // normal path: cleanup, store result
        if cleanup > 0 {
            self.code
                .push(X86Inst::AluRI(AluOp::Add, Gpr::Esp, cleanup, Norm::None));
        }
        if let Some(result) = self.func.inst_result(inst_id) {
            match classify(self.module, self.func.inst(inst_id).result_type()) {
                ValClass::Int => {
                    self.code.push(X86Inst::Store {
                        src: EAX,
                        mem: self.slots[&result],
                        width: Width::B8,
                    });
                }
                _ => {
                    self.code.push(X86Inst::FStore {
                        src: F0,
                        mem: self.slots[&result],
                        is32: false,
                    });
                }
            }
        }
        if is_invoke {
            // normal edge
            self.emit_phi_copies(block, blocks[0]);
            self.jump(blocks[0]);
            // unwind pad: cleanup then jump to the unwind block
            let pad_start = self.code.len() as u32;
            if cleanup > 0 {
                self.code
                    .push(X86Inst::AluRI(AluOp::Add, Gpr::Esp, cleanup, Norm::None));
            }
            self.emit_phi_copies(block, blocks[1]);
            self.jump(blocks[1]);
            // point the call's unwind at the pad
            match &mut self.code[call_idx] {
                X86Inst::CallFn { unwind, .. } | X86Inst::CallIndirect { unwind, .. } => {
                    *unwind = Some(pad_start);
                }
                X86Inst::CallIntrinsic { .. } => {
                    // intrinsics do not unwind
                }
                other => unreachable!("call fixup on {other:?}"),
            }
            let _ = next_block;
        }
    }

    fn emit_gep(&mut self, inst_id: InstId, ops: &[ValueId]) {
        let tt = self.module.types();
        let cfg = self.module.target();
        self.load_into(ops[0], EAX);
        let mut cur = tt.pointee(self.vty(ops[0])).expect("gep base pointer");
        let mut static_off: i64 = 0;
        for (i, &idx) in ops[1..].iter().enumerate() {
            let elem_size = if i == 0 {
                cfg.size_of(tt, cur)
            } else {
                match tt.kind(cur).clone() {
                    TypeKind::Array { elem, .. } => {
                        let s = cfg.size_of(tt, elem);
                        cur = elem;
                        s
                    }
                    TypeKind::LiteralStruct(_) | TypeKind::Struct(_) => {
                        let field = self
                            .func
                            .value_as_const(idx)
                            .and_then(Constant::as_int_bits)
                            .expect("struct index constant")
                            as usize;
                        static_off += cfg.field_offset(tt, cur, field) as i64;
                        cur = tt.struct_fields(cur).expect("defined struct")[field];
                        continue;
                    }
                    other => panic!("gep into non-aggregate {other:?}"),
                }
            };
            if let Some(k) = self
                .func
                .value_as_const(idx)
                .map(|c| canonical_const(self.module, c) as i64)
            {
                static_off += k * elem_size as i64;
            } else {
                self.load_into(idx, ECX);
                if elem_size.is_power_of_two() {
                    self.code.push(X86Inst::AluRI(
                        AluOp::Shl,
                        ECX,
                        i64::from(elem_size.trailing_zeros()),
                        Norm::None,
                    ));
                } else {
                    self.code.push(X86Inst::MovRI(EDX, elem_size as i64));
                    self.code.push(X86Inst::IMulRR(ECX, EDX, Norm::None));
                }
                self.code.push(X86Inst::AluRR(AluOp::Add, EAX, ECX, Norm::None));
            }
        }
        if static_off != 0 {
            self.code.push(X86Inst::Lea(
                EAX,
                MemOp {
                    base: EAX,
                    disp: static_off as i32,
                },
            ));
        }
        self.store_result_from(inst_id, EAX);
    }

    fn emit_cast(&mut self, inst_id: InstId, src: ValueId, to: TypeId) {
        let tt = self.module.types();
        let from = self.vty(src);
        let from_class = classify(self.module, from);
        let to_class = classify(self.module, to);
        match (from_class, to_class) {
            (ValClass::Int, ValClass::Int) => {
                self.load_into(src, EAX);
                if matches!(tt.kind(to), TypeKind::Bool) {
                    self.code.push(X86Inst::CmpRI(EAX, 0));
                    self.code.push(X86Inst::MovRI(EAX, 0));
                    self.code.push(X86Inst::Setcc(Cond::Ne, EAX));
                } else {
                    self.normalize_full(EAX, to);
                }
                self.store_result_from(inst_id, EAX);
            }
            (ValClass::Int, fc) => {
                self.load_into(src, EAX);
                self.code.push(X86Inst::CvtIF {
                    dst: F0,
                    src: EAX,
                    to32: fc == ValClass::F32,
                    signed: tt.is_signed_integer(from) || matches!(tt.kind(from), TypeKind::Bool),
                });
                self.fstore_result(inst_id, F0);
            }
            (fc, ValClass::Int) => {
                self.fload_into(src, F0);
                if matches!(tt.kind(to), TypeKind::Bool) {
                    self.code.push(X86Inst::MovRI(EAX, 0));
                    self.code.push(X86Inst::MovFG(F1, EAX));
                    self.code.push(X86Inst::FCmp(F0, F1, fc == ValClass::F32));
                    self.code.push(X86Inst::MovRI(EAX, 0));
                    self.code.push(X86Inst::Setcc(Cond::Ne, EAX));
                } else {
                    self.code.push(X86Inst::CvtFI {
                        dst: EAX,
                        src: F0,
                        from32: fc == ValClass::F32,
                        signed: tt.is_signed_integer(to),
                    });
                    self.normalize_full(EAX, to);
                }
                self.store_result_from(inst_id, EAX);
            }
            (fa, fb) => {
                self.fload_into(src, F0);
                if fa != fb {
                    self.code.push(X86Inst::CvtFF {
                        dst: F0,
                        src: F0,
                        to32: fb == ValClass::F32,
                    });
                }
                self.fstore_result(inst_id, F0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_machine::common::Exit;
    use llva_machine::memory::Memory;
    use llva_machine::x86::{X86Machine, X86Program};

    fn run_main(src: &str, args: &[u64]) -> Exit {
        let m = llva_core::parser::parse_module(src).expect("parses");
        llva_core::verifier::verify_module(&m).expect("verifies");
        let image = crate::common::layout_globals(&m);
        let mut program = X86Program::new(m.num_functions(), image.addrs.clone());
        for (fid, f) in m.functions() {
            if !f.is_declaration() {
                program.install(fid.index() as u32, compile_x86(&m, fid));
            }
        }
        let mut mem = Memory::new(1 << 22, image.heap_base, m.target().endianness);
        mem.write_bytes(llva_machine::memory::GLOBAL_BASE, &image.image)
            .expect("image fits");
        let mut machine = X86Machine::new(mem);
        let main = m.function_by_name("main").expect("main");
        machine.call_entry(main.index() as u32, args).expect("entry");
        machine.run(&program, 100_000_000)
    }

    #[test]
    fn arithmetic_pipeline() {
        let exit = run_main(
            r#"
int %main(int %x) {
entry:
    %a = add int %x, 10
    %b = mul int %a, 3
    %c = sub int %b, 6
    %d = div int %c, 2
    ret int %d
}
"#,
            &[4],
        );
        assert_eq!(exit, Exit::Halt(18)); // ((4+10)*3-6)/2
    }

    #[test]
    fn fib_recursive() {
        let exit = run_main(
            r#"
int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}

int %main() {
entry:
    %r = call int %fib(int 10)
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(55));
    }

    #[test]
    fn loops_and_phis() {
        let exit = run_main(
            r#"
int %main(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %s2 = add int %s, %i
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#,
            &[10],
        );
        assert_eq!(exit, Exit::Halt(45));
    }

    #[test]
    fn memory_and_gep() {
        let exit = run_main(
            r#"
%Pair = type { int, long }

long %main() {
entry:
    %p = alloca %Pair
    %f0 = getelementptr %Pair* %p, long 0, ubyte 0
    %f1 = getelementptr %Pair* %p, long 0, ubyte 1
    store int 7, int* %f0
    store long 35, long* %f1
    %a = load int* %f0
    %b = load long* %f1
    %aw = cast int %a to long
    %s = add long %aw, %b
    ret long %s
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(42));
    }

    #[test]
    fn globals_resolve() {
        let exit = run_main(
            r#"
@counter = global int 5

int %main() {
entry:
    %v = load int* @counter
    %v2 = add int %v, 1
    store int %v2, int* @counter
    %v3 = load int* @counter
    ret int %v3
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(6));
    }

    #[test]
    fn narrow_arithmetic_wraps() {
        let exit = run_main(
            r#"
int %main() {
entry:
    %a = cast int 250 to ubyte
    %b = cast int 10 to ubyte
    %c = add ubyte %a, %b
    %r = cast ubyte %c to int
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(4)); // 260 wraps to 4
    }

    #[test]
    fn float_math() {
        let exit = run_main(
            r#"
int %main() {
entry:
    %a = cast int 7 to double
    %b = cast int 2 to double
    %q = div double %a, %b
    %t = mul double %q, %b
    %r = cast double %t to int
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(7));
    }

    #[test]
    fn mbr_dispatch() {
        for (x, expect) in [(0, 10), (1, 11), (7, 12)] {
            let exit = run_main(
                r#"
int %main(int %x) {
entry:
    mbr int %x, label %other, [ int 0, label %zero ], [ int 1, label %one ]
zero:
    ret int 10
one:
    ret int 11
other:
    ret int 12
}
"#,
                &[x],
            );
            assert_eq!(exit, Exit::Halt(expect));
        }
    }

    #[test]
    fn invoke_unwind_flow() {
        let exit = run_main(
            r#"
void %thrower(int %x) {
entry:
    %c = setgt int %x, 5
    br bool %c, label %throw, label %ok
throw:
    unwind
ok:
    ret void
}

int %main(int %x) {
entry:
    invoke void %thrower(int %x) to label %fine unwind label %caught
fine:
    ret int 0
caught:
    ret int 1
}
"#,
            &[9],
        );
        assert_eq!(exit, Exit::Halt(1));
    }

    #[test]
    fn indirect_call() {
        let exit = run_main(
            r#"
int %double(int %x) {
entry:
    %r = add int %x, %x
    ret int %r
}

int %apply(int (int)* %f, int %v) {
entry:
    %r = call int %f(int %v)
    ret int %r
}

int %main() {
entry:
    %r = call int %apply(int (int)* %double, int 21)
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(42));
    }

    #[test]
    fn division_traps_when_enabled() {
        let exit = run_main(
            r#"
int %main(int %x) {
entry:
    %q = div int 10, %x
    ret int %q
}
"#,
            &[0],
        );
        match exit {
            Exit::Trapped(t) => assert_eq!(t.kind, llva_machine::TrapKind::DivideByZero),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn expansion_ratio_in_paper_range() {
        // The paper reports 2.2–3.3 x86 instructions per LLVA
        // instruction across its benchmarks. Check a representative
        // function lands in a sane band (we allow a slightly wider one).
        let m = llva_core::parser::parse_module(
            r#"
int %work(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %t = mul int %i, 3
    %u = add int %t, %s
    %s2 = rem int %u, 1000
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#,
        )
        .expect("parses");
        let f = m.function_by_name("work").expect("work");
        let code = compile_x86(&m, f);
        let llva_count = m.function(f).num_insts();
        let ratio = code.len() as f64 / llva_count as f64;
        assert!(
            (1.5..=4.5).contains(&ratio),
            "x86 expansion ratio {ratio:.2} out of range ({} -> {})",
            llva_count,
            code.len()
        );
    }
}
