//! Cross-target differential testing: the same module, run on all
//! three simulated processors at -O0 and -O, must produce the same
//! observable outcome — the paper's I-ISA-independence claim (§2, §3)
//! made executable.
//!
//! Two corpora:
//!
//! * every Table 2 workload (`llva-workloads`), the paper's own
//!   benchmark set;
//! * 200 conform-generated seed modules, the adversarial tail.
//!
//! Any divergence — a different return value, a different trap kind,
//! or a different instruction-class profile where one is guaranteed —
//! fails the test. For generated seeds the failure message is a
//! *minimized* `.ll` reproducer (the conform shrinker), so a broken
//! back end produces a small replayable module, not a 200-seed haystack.

use llva_conform::{generate, minimize, GenConfig, Oracle, Outcome};
use llva_engine::llee::{EngineError, ExecutionManager, TargetIsa};
use llva_opt::standard_pipeline;

/// Per-run fuel: the heaviest Table 2 workload (175.vpr) retires ~74M
/// SPARC instructions at -O0, so this is a real completion budget, not
/// a cutoff — a `Fuel` outcome on a workload is itself a regression.
const FUEL: u64 = 400_000_000;

/// One target's observation: the outcome plus the instruction-class
/// counts that must be target-invariant.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    outcome: Outcome,
    /// Dynamic calls executed (including intrinsic calls). Every V-ISA
    /// call site lowers to exactly one call-class machine instruction
    /// on every target, so this count is an ISA-independent invariant —
    /// unlike loads/stores (spill strategy) or branches (fusion).
    calls: u64,
}

fn observe(module: &llva_core::module::Module, isa: TargetIsa, entry: &str, args: &[u64]) -> Observation {
    let mut mgr = ExecutionManager::new(module.clone(), isa);
    mgr.set_fuel(FUEL);
    let outcome = match mgr.run(entry, args) {
        Ok(out) => Outcome::Value(out.value),
        Err(EngineError::Trapped(t)) => Outcome::Trap(t.kind),
        Err(EngineError::OutOfFuel) => Outcome::Fuel,
        Err(e) => Outcome::Error(e.to_string()),
    };
    Observation {
        outcome,
        calls: mgr.exec_stats().calls,
    }
}

/// Runs `module` on all three targets and asserts pairwise agreement,
/// labelling failures with `what`.
fn assert_targets_agree(module: &llva_core::module::Module, entry: &str, args: &[u64], what: &str) {
    let mut base: Option<(TargetIsa, Observation)> = None;
    for isa in TargetIsa::ALL {
        let obs = observe(module, isa, entry, args);
        match &base {
            None => base = Some((isa, obs)),
            Some((base_isa, base_obs)) => {
                assert_eq!(
                    base_obs.outcome, obs.outcome,
                    "{what}: outcome divergence between {base_isa} and {isa}"
                );
                // at a fuel cutoff the counters reflect where each
                // target happened to stop, not program semantics
                if obs.outcome != Outcome::Fuel {
                    assert_eq!(
                        base_obs.calls, obs.calls,
                        "{what}: dynamic call-class count divergence between {base_isa} and {isa}"
                    );
                }
            }
        }
    }
}

#[test]
fn table2_workloads_agree_across_targets() {
    // -O0: translate each workload for each target and diff outcomes
    // and call-class counts. The workload's own checksum convention
    // (`main` returns it) makes Value divergence a real miscompile.
    for w in llva_workloads::all() {
        let module = w.compile(llva_core::layout::TargetConfig::ia32());
        assert_targets_agree(&module, "main", &[], w.name);
    }
}

#[test]
fn table2_workloads_agree_across_targets_optimized() {
    // -O: the standard pipeline first, then the same three-way diff.
    for w in llva_workloads::all() {
        let mut module = w.compile(llva_core::layout::TargetConfig::ia32());
        standard_pipeline().run(&mut module);
        llva_core::verifier::verify_module(&module)
            .unwrap_or_else(|e| panic!("{}: optimized module fails verify: {e}", w.name));
        assert_targets_agree(&module, "main", &[], &format!("{} -O", w.name));
    }
}

#[test]
fn generated_seeds_agree_across_targets() {
    // 200 adversarial seeds through the conformance oracle restricted
    // to the native stages: interp baseline + every target at -O0 and
    // -O. A divergence is shrunk to a minimized `.ll` reproducer and
    // the test fails with that reproducer as the message.
    let cfg = GenConfig::default();
    let mut oracle = Oracle::new();
    let mut stages = Vec::new();
    for isa in TargetIsa::ALL {
        stages.push(isa.to_string());
        stages.push(format!("{isa}:opt"));
    }
    oracle.restrict_stages(stages);
    for seed in 0..200u64 {
        let tc = generate(seed, &cfg);
        let (_, divergences) = oracle.check(&tc.module, &tc.entry, &tc.args);
        if !divergences.is_empty() {
            let repro = minimize(seed, &tc, &oracle);
            panic!("cross-target divergence:\n{}", repro.render());
        }
    }
}

#[test]
fn generated_seeds_agree_on_call_class_counts() {
    // The instruction-class invariant on generated modules: dynamic
    // call-class counts agree across targets whenever the run
    // completes or traps identically (the outcome agreement itself is
    // `generated_seeds_agree_across_targets`' job).
    let cfg = GenConfig::default();
    for seed in 0..40u64 {
        let tc = generate(seed, &cfg);
        assert_targets_agree(&tc.module, &tc.entry, &tc.args, &format!("seed {seed}"));
    }
}
