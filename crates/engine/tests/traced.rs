//! Differential tests for the hot-trace tier: a tracing
//! [`FastInterpreter`] must be value-for-value, trap-for-trap identical
//! to the structural [`Interpreter`] — same results, same precise trap
//! coordinates (including traps raised inside fused superinstructions),
//! same instruction counts — while actually spending time in compiled
//! traces (asserted through [`TraceStats`]).

use llva_core::module::Module;
use llva_engine::{FastInterpreter, InterpError, Interpreter, TraceConfig, TraceStats};
use llva_machine::common::TrapKind;

fn parse(src: &str) -> Module {
    let m = llva_core::parser::parse_module(src).expect("parses");
    llva_core::verifier::verify_module(&m).expect("verifies");
    m
}

/// Runs `entry(args)` under the structural interpreter, the plain
/// fast interpreter, and the fast interpreter with tracing enabled at
/// a low hot threshold. Asserts the complete observable outcome is
/// identical across all three and returns the outcome plus the
/// trace-tier statistics.
fn run_traced(
    src: &str,
    entry: &str,
    args: &[u64],
) -> (Result<u64, InterpError>, TraceStats) {
    run_traced_fuel(src, entry, args, u64::MAX)
}

fn run_traced_fuel(
    src: &str,
    entry: &str,
    args: &[u64],
    fuel: u64,
) -> (Result<u64, InterpError>, TraceStats) {
    let m = parse(src);
    let mut slow = Interpreter::new(&m);
    slow.set_fuel(fuel);
    let expected = slow.run(entry, args);

    let mut plain = FastInterpreter::new(&m);
    plain.set_fuel(fuel);
    let plain_out = plain.run(entry, args);
    assert_eq!(plain_out, expected, "untraced fast interp diverges on {entry}{args:?}");

    let mut traced = FastInterpreter::new(&m);
    traced.set_fuel(fuel);
    traced.enable_tracing(TraceConfig { hot_threshold: 4, max_blocks: 16 });
    let got = traced.run(entry, args);
    assert_eq!(got, expected, "traced outcome diverges on {entry}{args:?}");
    assert_eq!(
        traced.insts_executed(),
        slow.insts_executed(),
        "instruction counts diverge on {entry}{args:?}"
    );
    assert_eq!(
        traced.env.stdout_string(),
        slow.env.stdout_string(),
        "intrinsic output diverges on {entry}{args:?}"
    );
    assert!(traced.slab_consistent(), "slab inconsistent after {entry}{args:?}");
    let stats = traced.trace_stats().expect("tracing enabled");
    (got, stats)
}

const LOOP_SUM: &str = r#"
int %main(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %s2 = add int %s, %i
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#;

#[test]
fn loop_trace_compiles_and_matches() {
    let (out, stats) = run_traced(LOOP_SUM, "main", &[200]);
    assert_eq!(out, Ok((0..200).sum()));
    assert!(stats.traces_compiled >= 1, "loop must form a trace: {stats:?}");
    assert!(stats.trace_entries >= 1, "dispatch must enter the trace: {stats:?}");
    assert!(stats.trace_insts > 100, "most retirement inside the trace: {stats:?}");
    assert!(stats.superinsts >= 1, "setcc+br must fuse: {stats:?}");
}

#[test]
fn side_exit_taken_mid_trace() {
    // the inner branch goes to %spike every 7th iteration: the trace
    // follows the hot %latch side and must side-exit on the spikes
    let src = r#"
int %main(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %latch ]
    %s = phi int [ 0, %entry ], [ %s3, %latch ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %r = rem int %i, 7
    %z = seteq int %r, 0
    br bool %z, label %spike, label %latch
spike:
    %sa = add int %s, 100
    br label %latch
latch:
    %sm = phi int [ %s, %body ], [ %sa, %spike ]
    %s2 = add int %sm, %i
    %i2 = add int %i, 1
    %s3 = add int %s2, 0
    br label %header
exit:
    ret int %s
}
"#;
    let n = 100u64;
    let expect: u64 = (0..n).map(|i| i + u64::from(i % 7 == 0) * 100).sum();
    let (out, stats) = run_traced(src, "main", &[n]);
    assert_eq!(out, Ok(expect));
    assert!(stats.traces_compiled >= 1, "{stats:?}");
    assert!(stats.side_exits >= 1, "spikes must leave the trace: {stats:?}");
}

#[test]
fn deep_recursion_through_cross_procedure_trace() {
    let src = r#"
int %helper(int %x) {
entry:
    %y = mul int %x, 3
    %z = add int %y, 1
    ret int %z
}

int %rec(int %n, int %acc) {
entry:
    %c = setle int %n, 0
    br bool %c, label %done, label %go
done:
    ret int %acc
go:
    %h = call int %helper(int %n)
    %acc2 = add int %acc, %h
    %n2 = sub int %n, 1
    %r = call int %rec(int %n2, int %acc2)
    ret int %r
}

int %main(int %n) {
entry:
    %r = call int %rec(int %n, int 0)
    ret int %r
}
"#;
    let n = 500u64;
    let expect: u64 = (1..=n).map(|k| 3 * k + 1).sum();
    let (out, stats) = run_traced(src, "main", &[n]);
    assert_eq!(out, Ok(expect));
    assert!(stats.traces_compiled >= 1, "hot recursion must trace: {stats:?}");
    assert!(stats.trace_entries >= 1, "{stats:?}");
}

#[test]
fn trap_inside_fused_superinstruction_has_exact_coordinates() {
    // the load fuses with the add consuming it (load+op); at i == 50
    // the address goes wild and the fused op must report the same
    // MemoryFault coordinates as the structural interpreter
    let src = r#"
int %main(int %n) {
entry:
    %buf = alloca int, uint 4
    %bufi = cast int* %buf to long
    %nl = cast int %n to long
    br label %header
header:
    %i = phi long [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt long %i, %nl
    br bool %c, label %body, label %exit
body:
    %isbad = seteq long %i, 50
    %badi = cast bool %isbad to long
    %off = mul long %badi, 99999999999
    %ai = add long %bufi, %off
    %a = cast long %ai to int*
    %v = load int* %a
    %s2 = add int %s, %v
    %i2 = add long %i, 1
    br label %header
exit:
    ret int %s
}
"#;
    let (out, stats) = run_traced(src, "main", &[100]);
    let err = out.expect_err("the wild load must trap");
    let InterpError::Trap(t) = &err else {
        panic!("expected a trap, got {err:?}");
    };
    assert_eq!(t.kind, TrapKind::MemoryFault);
    assert_eq!(&*t.block, "body");
    assert!(stats.traces_compiled >= 1, "trap fires after the loop is hot: {stats:?}");
    assert!(stats.trace_insts > 0, "{stats:?}");
}

#[test]
fn div_by_zero_mid_trace_has_exact_coordinates() {
    let src = r#"
int %main(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %d = sub int 50, %i
    %q = div int 1000, %d
    %s2 = add int %s, %q
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#;
    let (out, stats) = run_traced(src, "main", &[100]);
    let err = out.expect_err("division hits zero at i == 50");
    let InterpError::Trap(t) = &err else {
        panic!("expected a trap, got {err:?}");
    };
    assert_eq!(t.kind, TrapKind::DivideByZero);
    assert_eq!(&*t.block, "body");
    assert!(stats.traces_compiled >= 1, "{stats:?}");
}

#[test]
fn smc_edit_invalidates_live_trace() {
    // each outer iteration heats %helper's inner loop into a trace,
    // then an SMC edit drops it; the next call re-decodes and re-heats
    let src = r#"
declare int %llva.smc.invalidate(int (int)*)

int %helper(int %x) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, 10
    br bool %c, label %body, label %exit
body:
    %s2 = add int %s, %x
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}

int %main(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %h = call int %helper(int %i)
    %x = call int %llva.smc.invalidate(int (int)* %helper)
    %s2 = add int %s, %h
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#;
    let n = 20u64;
    let expect: u64 = (0..n).map(|i| 10 * i).sum();
    let (out, stats) = run_traced(src, "main", &[n]);
    assert_eq!(out, Ok(expect));
    assert!(stats.invalidated >= 1, "SMC must drop compiled traces: {stats:?}");
    assert!(
        stats.traces_compiled >= 2,
        "the helper re-heats after invalidation: {stats:?}"
    );
}

#[test]
fn fuel_exhaustion_mid_trace_matches() {
    // fuel budgets that land inside the compiled loop trace must
    // produce the same OutOfFuel point and instruction count
    for fuel in [37, 64, 100, 317, 1000] {
        let (out, _) = run_traced_fuel(LOOP_SUM, "main", &[10_000], fuel);
        assert_eq!(out, Err(InterpError::OutOfFuel), "fuel {fuel}");
    }
}

#[test]
fn traced_results_match_across_workload_shapes() {
    // memory traffic: gep+load / gep+store fusion paths
    let src = r#"
int %main(int %n) {
entry:
    %buf = alloca int, uint 64
    br label %fill
fill:
    %i = phi int [ 0, %entry ], [ %i2, %fill ]
    %p = getelementptr int* %buf, int %i
    store int %i, int* %p
    %i2 = add int %i, 1
    %c = setlt int %i2, 64
    br bool %c, label %fill, label %sum
sum:
    %j = phi int [ 0, %fill ], [ %j2, %sum ]
    %s = phi int [ 0, %fill ], [ %s2, %sum ]
    %q = getelementptr int* %buf, int %j
    %v = load int* %q
    %s2 = add int %s, %v
    %j2 = add int %j, 1
    %d = setlt int %j2, 64
    br bool %d, label %sum, label %done
done:
    ret int %s2
}
"#;
    let (out, stats) = run_traced(src, "main", &[0]);
    assert_eq!(out, Ok((0..64).sum()));
    assert!(stats.traces_compiled >= 1, "{stats:?}");
    assert!(stats.superinsts >= 1, "gep+mem ops must fuse: {stats:?}");
}
