//! Profiling instrumentation (paper §4.2).
//!
//! > "Our V-ISA provides us with ability to perform static
//! > instrumentation to assist runtime path profiling, and to use the
//! > CFG at runtime to perform path profiling within frequently
//! > executed loop regions while avoiding interpretation."
//!
//! [`instrument`] rewrites a module so every basic block bumps a
//! counter in a dedicated global array — pure LLVA, so the same
//! profiling runs under the interpreter or either native target. The
//! counters are read back through the execution substrate after a run
//! and feed the trace-formation algorithm in [`crate::trace`].

use llva_core::function::BlockId;
use llva_core::instruction::{Instruction, Opcode};
use llva_core::module::{FuncId, GlobalId, Initializer, Module};
use llva_core::value::Constant;
use std::collections::HashMap;

/// Maps instrumented blocks to their counter indices.
#[derive(Debug, Clone)]
pub struct ProfileMap {
    /// The counter-array global.
    pub counters: GlobalId,
    /// Counter index of each `(function, block)`.
    pub index: HashMap<(FuncId, BlockId), usize>,
    /// Total number of counters.
    pub len: usize,
}

/// Name of the injected counter array.
pub const COUNTERS_GLOBAL: &str = "llva.profile.counters";

/// Instruments every block of every defined function with a counter
/// increment. Returns the counter map. The module still verifies.
pub fn instrument(module: &mut Module) -> ProfileMap {
    // assign indices
    let mut index = HashMap::new();
    let mut n = 0usize;
    for (fid, func) in module.functions() {
        if func.is_declaration() {
            continue;
        }
        for &b in func.block_order() {
            index.insert((fid, b), n);
            n += 1;
        }
    }
    let ulong = module.types_mut().ulong();
    let arr = module.types_mut().array_of(ulong, n as u64);
    let counters = module.add_global(COUNTERS_GLOBAL, arr, Initializer::Zero, false);
    let arr_ptr = module.types_mut().pointer_to(arr);
    let long = module.types_mut().long();
    let void = module.types_mut().void();
    let ulong_ptr = module.types_mut().pointer_to(ulong);
    let ubyte = module.types_mut().ubyte();
    let _ = ubyte;

    let fids: Vec<FuncId> = module.function_ids();
    for fid in fids {
        if module.function(fid).is_declaration() {
            continue;
        }
        let blocks = module.function(fid).block_order().to_vec();
        for b in blocks {
            let k = index[&(fid, b)];
            let func = module.function_mut(fid);
            // skip past leading phis
            let pos = func
                .block(b)
                .insts()
                .iter()
                .take_while(|&&i| func.inst(i).opcode() == Opcode::Phi)
                .count();
            // %base = @counters ; %slot = gep %base, 0, k
            // %v = load %slot ; %v1 = add %v, 1 ; store %v1, %slot
            let base = func.constant(Constant::GlobalAddr {
                global: counters,
                ty: arr_ptr,
            });
            let zero = func.constant(Constant::Int { ty: long, bits: 0 });
            let kc = func.constant(Constant::Int {
                ty: long,
                bits: k as u64,
            });
            let one = func.constant(Constant::Int { ty: ulong, bits: 1 });
            let (_, slot) = func.insert_inst_at(
                b,
                pos,
                Instruction::new(Opcode::GetElementPtr, ulong_ptr, vec![base, zero, kc], vec![]),
                void,
            );
            let slot = slot.expect("gep result");
            let (_, v) = func.insert_inst_at(
                b,
                pos + 1,
                Instruction::new(Opcode::Load, ulong, vec![slot], vec![]),
                void,
            );
            let v = v.expect("load result");
            let (_, v1) = func.insert_inst_at(
                b,
                pos + 2,
                Instruction::new(Opcode::Add, ulong, vec![v, one], vec![]),
                void,
            );
            let v1 = v1.expect("add result");
            func.insert_inst_at(
                b,
                pos + 3,
                Instruction::new(Opcode::Store, void, vec![v1, slot], vec![]),
                void,
            );
        }
    }
    ProfileMap {
        counters,
        index,
        len: n,
    }
}

/// Builds the block-index map *without* instrumenting the module. The
/// trace tier ([`crate::traced`]) keeps its counters in interpreter-side
/// arrays rather than a module global, but shares the trace-formation
/// algorithm — which addresses counters through a [`ProfileMap`].
///
/// The returned map's `counters` global is a placeholder and must not
/// be dereferenced.
pub fn index_only(module: &Module) -> ProfileMap {
    let mut index = HashMap::new();
    let mut n = 0usize;
    for (fid, func) in module.functions() {
        if func.is_declaration() {
            continue;
        }
        for &b in func.block_order() {
            index.insert((fid, b), n);
            n += 1;
        }
    }
    ProfileMap {
        counters: GlobalId::from_index(0),
        index,
        len: n,
    }
}

/// Decodes counter values from the raw bytes of the counter array
/// (endianness per the module target).
pub fn decode_counters(bytes: &[u8], len: usize, big_endian: bool) -> Vec<u64> {
    (0..len)
        .map(|i| {
            let chunk: [u8; 8] = bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes");
            if big_endian {
                u64::from_be_bytes(chunk)
            } else {
                u64::from_le_bytes(chunk)
            }
        })
        .collect()
}

/// Reads the counters back from an execution manager after a run.
pub fn read_counters(mgr: &crate::llee::ExecutionManager, map: &ProfileMap) -> Vec<u64> {
    let addr = mgr.global_addr(map.counters);
    let bytes = mgr
        .read_memory(addr, (map.len * 8) as u64)
        .expect("counters mapped");
    let big = matches!(
        mgr.module().target().endianness,
        llva_core::layout::Endianness::Big
    );
    decode_counters(&bytes, map.len, big)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llee::{ExecutionManager, TargetIsa};

    const LOOPY: &str = r#"
int %main(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %i
}
"#;

    #[test]
    fn instrumented_module_verifies_and_runs() {
        let mut m = llva_core::parser::parse_module(LOOPY).expect("parses");
        let map = instrument(&mut m);
        llva_core::verifier::verify_module(&m).expect("instrumented module verifies");
        assert_eq!(map.len, 4);
        let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
        let out = mgr.run("main", &[10]).expect("runs");
        assert_eq!(out.value, 10, "instrumentation must not change results");
    }

    #[test]
    fn counters_reflect_execution_frequency() {
        let mut m = llva_core::parser::parse_module(LOOPY).expect("parses");
        let map = instrument(&mut m);
        let fid = m.function_by_name("main").expect("main");
        let blocks = m.function(fid).block_order().to_vec();
        let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
        mgr.run("main", &[25]).expect("runs");
        let counts = profile_of(&mgr, &map, fid, &blocks);
        // entry 1, header 26, body 25, exit 1
        assert_eq!(counts, vec![1, 26, 25, 1]);
    }

    #[test]
    fn counters_identical_on_all_targets() {
        for isa in TargetIsa::ALL {
            let mut m = llva_core::parser::parse_module(LOOPY).expect("parses");
            let map = instrument(&mut m);
            let fid = m.function_by_name("main").expect("main");
            let blocks = m.function(fid).block_order().to_vec();
            let mut mgr = ExecutionManager::new(m, isa);
            mgr.run("main", &[7]).expect("runs");
            let counts = profile_of(&mgr, &map, fid, &blocks);
            assert_eq!(counts, vec![1, 8, 7, 1], "{isa}");
        }
    }

    fn profile_of(
        mgr: &ExecutionManager,
        map: &ProfileMap,
        fid: llva_core::module::FuncId,
        blocks: &[llva_core::function::BlockId],
    ) -> Vec<u64> {
        let all = read_counters(mgr, map);
        blocks
            .iter()
            .map(|&b| all[map.index[&(fid, b)]])
            .collect()
    }
}
