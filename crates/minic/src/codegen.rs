//! minic → LLVA lowering.
//!
//! Follows exactly the lowering story of paper §3.1: "array and
//! structure indexing operations are lowered to typed pointer
//! arithmetic with the getelementptr instruction", locals become
//! `alloca` + loads/stores (SSA promotion is the optimizer's job),
//! short-circuit operators become CFG diamonds, and runtime services
//! (`malloc`, `putchar`, …) become calls to `llva.*` intrinsics.

use crate::ast::*;
use llva_core::builder::FunctionBuilder;
use llva_core::function::BlockId;
use llva_core::layout::TargetConfig;
use llva_core::module::{FuncId, Initializer, Module};
use llva_core::types::TypeId;
use llva_core::value::{Constant, ValueId};
use std::collections::HashMap;
use std::fmt;

/// A semantic error found during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Description (minic is small enough that name context suffices).
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "minic compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

type Result<T> = std::result::Result<T, CompileError>;

fn err<T>(message: impl Into<String>) -> Result<T> {
    Err(CompileError {
        message: message.into(),
    })
}

/// Compiles a parsed program into an LLVA module for `target`.
///
/// # Errors
///
/// Returns a [`CompileError`] for type errors, unknown names, and
/// unsupported constructs.
pub fn compile_program(program: &Program, name: &str, target: TargetConfig) -> Result<Module> {
    let mut cx = Cx::new(name, target);
    cx.collect_structs(program)?;
    cx.collect_signatures(program)?;
    cx.emit_globals(program)?;
    cx.emit_functions(program)?;
    Ok(cx.module)
}

/// Built-in functions mapped to LLVA intrinsics (§3.5).
const BUILTINS: &[(&str, &str)] = &[
    ("putchar", "llva.io.putchar"),
    ("getchar", "llva.io.getchar"),
    ("malloc", "llva.heap.alloc"),
    ("free", "llva.heap.free"),
    ("clock", "llva.clock"),
];

struct StructInfo {
    fields: Vec<(String, CType)>,
}

struct Cx {
    module: Module,
    structs: HashMap<String, StructInfo>,
    fn_sigs: HashMap<String, (CType, Vec<CType>, FuncId)>,
    global_tys: HashMap<String, CType>,
    string_count: usize,
}

impl Cx {
    fn new(name: &str, target: TargetConfig) -> Cx {
        Cx {
            module: Module::new(name, target),
            structs: HashMap::new(),
            fn_sigs: HashMap::new(),
            global_tys: HashMap::new(),
            string_count: 0,
        }
    }

    fn ty(&mut self, c: &CType) -> Result<TypeId> {
        Ok(match c {
            CType::Void => self.module.types_mut().void(),
            CType::Char => self.module.types_mut().sbyte(),
            CType::Int => self.module.types_mut().int(),
            CType::Uint => self.module.types_mut().uint(),
            CType::Long => self.module.types_mut().long(),
            CType::Ulong => self.module.types_mut().ulong(),
            CType::Float => self.module.types_mut().float(),
            CType::Double => self.module.types_mut().double(),
            CType::Ptr(p) => {
                let inner = self.ty(p)?;
                self.module.types_mut().pointer_to(inner)
            }
            CType::Array(elem, n) => {
                let inner = self.ty(elem)?;
                self.module.types_mut().array_of(inner, *n)
            }
            CType::Struct(name) => {
                if !self.structs.contains_key(name) {
                    return err(format!("unknown struct '{name}'"));
                }
                self.module.types_mut().named_struct(name)
            }
            CType::FnPtr(ret, params) => {
                let r = self.ty(ret)?;
                let mut ps = Vec::with_capacity(params.len());
                for p in params {
                    ps.push(self.ty(p)?);
                }
                let fty = self.module.types_mut().function(r, ps, false);
                self.module.types_mut().pointer_to(fty)
            }
        })
    }

    fn collect_structs(&mut self, program: &Program) -> Result<()> {
        // two passes so structs may reference each other
        for item in &program.items {
            if let Item::StructDef { name, .. } = item {
                self.module.types_mut().named_struct(name);
                self.structs.insert(
                    name.clone(),
                    StructInfo {
                        fields: Vec::new(),
                    },
                );
            }
        }
        for item in &program.items {
            if let Item::StructDef { name, fields } = item {
                let mut tys = Vec::with_capacity(fields.len());
                let mut info = Vec::with_capacity(fields.len());
                for (ty, fname) in fields {
                    tys.push(self.ty(ty)?);
                    info.push((fname.clone(), ty.clone()));
                }
                self.module.types_mut().set_struct_body(name, tys);
                self.structs
                    .insert(name.clone(), StructInfo { fields: info });
            }
        }
        Ok(())
    }

    fn collect_signatures(&mut self, program: &Program) -> Result<()> {
        for item in &program.items {
            if let Item::Func {
                ret, name, params, ..
            } = item
            {
                let r = self.ty(ret)?;
                let mut ps = Vec::with_capacity(params.len());
                let mut ptys = Vec::with_capacity(params.len());
                for (pt, _) in params {
                    // arrays decay in parameter position
                    let decayed = decay(pt.clone());
                    ps.push(self.ty(&decayed)?);
                    ptys.push(decayed);
                }
                if self.fn_sigs.contains_key(name) {
                    return err(format!("duplicate function '{name}'"));
                }
                let fid = self.module.add_function(name, r, ps);
                self.fn_sigs
                    .insert(name.clone(), (ret.clone(), ptys, fid));
            }
        }
        Ok(())
    }

    fn fold_const(&mut self, e: &Expr, want: &CType) -> Result<Constant> {
        // minimal constant folding for global initializers
        fn eval_i(e: &Expr) -> Option<i64> {
            Some(match e {
                Expr::Int(v) => *v,
                Expr::Char(c) => i64::from(*c),
                Expr::Un(UnOp::Neg, x) => -eval_i(x)?,
                Expr::Un(UnOp::BitNot, x) => !eval_i(x)?,
                Expr::Bin(op, a, b) => {
                    let (a, b) = (eval_i(a)?, eval_i(b)?);
                    match op {
                        BinOp::Add => a.wrapping_add(b),
                        BinOp::Sub => a.wrapping_sub(b),
                        BinOp::Mul => a.wrapping_mul(b),
                        BinOp::Div => a.checked_div(b)?,
                        BinOp::Rem => a.checked_rem(b)?,
                        BinOp::Shl => a << (b & 63),
                        BinOp::Shr => a >> (b & 63),
                        BinOp::And => a & b,
                        BinOp::Or => a | b,
                        BinOp::Xor => a ^ b,
                        _ => return None,
                    }
                }
                _ => return None,
            })
        }
        fn eval_f(e: &Expr) -> Option<f64> {
            Some(match e {
                Expr::Float(v) => *v,
                Expr::Int(v) => *v as f64,
                Expr::Char(c) => f64::from(*c),
                Expr::Un(UnOp::Neg, x) => -eval_f(x)?,
                Expr::Bin(op, a, b) => {
                    let (a, b) = (eval_f(a)?, eval_f(b)?);
                    match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => a / b,
                        _ => return None,
                    }
                }
                _ => return None,
            })
        }
        let ty = self.ty(want)?;
        if want.is_float() {
            let Some(v) = eval_f(e) else {
                return err("global initializer is not a constant");
            };
            let bits = if matches!(want, CType::Float) {
                (v as f32).to_bits() as u64
            } else {
                v.to_bits()
            };
            return Ok(Constant::Float { ty, bits });
        }
        if want.is_integer() {
            let Some(v) = eval_i(e) else {
                return err("global initializer is not a constant");
            };
            let w = self
                .module
                .types()
                .int_bits(ty)
                .expect("integer type");
            return Ok(Constant::Int {
                ty,
                bits: llva_core::eval::truncate(v as u64, w),
            });
        }
        if matches!(want, CType::Ptr(_)) {
            if matches!(e, Expr::Int(0)) {
                return Ok(Constant::Null(ty));
            }
            if let Expr::Ident(name) = e {
                if let Some((_, _, fid)) = self.fn_sigs.get(name) {
                    let fty = self.module.function(*fid).type_id();
                    let pty = self.module.types_mut().pointer_to(fty);
                    return Ok(Constant::FunctionAddr {
                        func: *fid,
                        ty: pty,
                    });
                }
            }
        }
        err("unsupported constant initializer")
    }

    fn global_initializer(&mut self, init: &GlobalInit, ty: &CType) -> Result<Initializer> {
        Ok(match init {
            GlobalInit::Scalar(e) => Initializer::Scalar(self.fold_const(e, ty)?),
            GlobalInit::Str(s) => {
                match ty {
                    CType::Array(..) => {
                        let mut bytes = s.clone();
                        bytes.push(0);
                        Initializer::Bytes(bytes)
                    }
                    CType::Ptr(_) => {
                        let g = self.string_global(s)?;
                        let sb = self.module.types_mut().sbyte();
                        let sbp = self.module.types_mut().pointer_to(sb);
                        // address of the array's first element == array addr
                        Initializer::Scalar(Constant::GlobalAddr { global: g, ty: sbp })
                    }
                    _ => return err("string initializer needs char[] or char*"),
                }
            }
            GlobalInit::List(items) => {
                let CType::Array(elem, _) = ty else {
                    return err("brace initializer needs an array type");
                };
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.global_initializer(item, elem)?);
                }
                Initializer::Array(out)
            }
        })
    }

    fn string_global(&mut self, s: &[u8]) -> Result<llva_core::module::GlobalId> {
        let mut bytes = s.to_vec();
        bytes.push(0);
        let sb = self.module.types_mut().sbyte();
        let arr = self.module.types_mut().array_of(sb, bytes.len() as u64);
        let name = format!(".str{}", self.string_count);
        self.string_count += 1;
        Ok(self
            .module
            .add_global(&name, arr, Initializer::Bytes(bytes), true))
    }

    fn emit_globals(&mut self, program: &Program) -> Result<()> {
        for item in &program.items {
            if let Item::Global { ty, name, init } = item {
                let rendered = match init {
                    Some(i) => self.global_initializer(i, ty)?,
                    None => Initializer::Zero,
                };
                let lty = self.ty(ty)?;
                self.module.add_global(name, lty, rendered, false);
                self.global_tys.insert(name.clone(), ty.clone());
            }
        }
        Ok(())
    }

    fn emit_functions(&mut self, program: &Program) -> Result<()> {
        for item in &program.items {
            if let Item::Func {
                name, params, body, ret, ..
            } = item
            {
                self.emit_function(name, ret, params, body)?;
            }
        }
        Ok(())
    }

    fn intrinsic_fid(&mut self, c_name: &str) -> Result<FuncId> {
        let intr_name = BUILTINS
            .iter()
            .find(|(c, _)| *c == c_name)
            .map(|(_, i)| *i)
            .expect("known builtin");
        if let Some(f) = self.module.function_by_name(intr_name) {
            return Ok(f);
        }
        let int = self.module.types_mut().int();
        let ulong = self.module.types_mut().ulong();
        let sbyte = self.module.types_mut().sbyte();
        let sbp = self.module.types_mut().pointer_to(sbyte);
        let void = self.module.types_mut().void();
        let (ret, params) = match c_name {
            "putchar" => (int, vec![int]),
            "getchar" => (int, vec![]),
            "malloc" => (sbp, vec![ulong]),
            "free" => (void, vec![sbp]),
            "clock" => (ulong, vec![]),
            _ => unreachable!(),
        };
        Ok(self.module.add_function(intr_name, ret, params))
    }

    fn emit_function(
        &mut self,
        name: &str,
        ret: &CType,
        params: &[(CType, String)],
        body: &[Stmt],
    ) -> Result<()> {
        let fid = self.fn_sigs[name].2;
        let mut fg = FnGen {
            cx: self,
            fid,
            ret: ret.clone(),
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
            reachable: true,
            current: None,
        };
        fg.emit(params, body)
    }
}

/// What the builtin decay rule does to a type in rvalue/parameter
/// position.
fn decay(ty: CType) -> CType {
    match ty {
        CType::Array(elem, _) => CType::Ptr(elem),
        other => other,
    }
}

#[derive(Clone)]
struct Lv {
    ptr: ValueId,
    ty: CType,
}

#[derive(Clone)]
struct Rv {
    val: ValueId,
    ty: CType,
}

struct FnGen<'c> {
    cx: &'c mut Cx,
    fid: FuncId,
    ret: CType,
    scopes: Vec<HashMap<String, Lv>>,
    loops: Vec<(BlockId, BlockId)>, // (break target, continue target)
    reachable: bool,
    current: Option<BlockId>,
}

impl<'c> FnGen<'c> {
    fn b(&mut self) -> FunctionBuilder<'_> {
        let mut b = FunctionBuilder::new(&mut self.cx.module, self.fid);
        if let Some(cur) = self.current {
            b.switch_to(cur);
        }
        b
    }

    fn switch_to(&mut self, block: BlockId) {
        self.current = Some(block);
        self.reachable = true;
    }

    fn emit(&mut self, params: &[(CType, String)], body: &[Stmt]) -> Result<()> {
        let entry = self.b().block("entry");
        self.switch_to(entry);
        // home each parameter in an alloca so it is addressable
        let args = self.cx.module.function(self.fid).args().to_vec();
        for ((pty, pname), arg) in params.iter().zip(args) {
            let cty = decay(pty.clone());
            let lty = self.cx.ty(&cty)?;
            let mut b = self.b();
            let slot = b.alloca(lty);
            b.store(arg, slot);
            b.name_value(slot, &format!("{pname}.addr"));
            self.scopes
                .last_mut()
                .expect("scope")
                .insert(pname.clone(), Lv { ptr: slot, ty: cty });
        }
        for stmt in body {
            self.stmt(stmt)?;
        }
        //終: make sure every block is terminated
        self.finish_function()?;
        Ok(())
    }

    fn finish_function(&mut self) -> Result<()> {
        let ret = self.ret.clone();
        let blocks = self.cx.module.function(self.fid).block_order().to_vec();
        for block in blocks {
            let needs_term = {
                let f = self.cx.module.function(self.fid);
                f.terminator(block).is_none()
            };
            if needs_term {
                self.current = Some(block);
                if matches!(ret, CType::Void) {
                    self.b().ret(None);
                } else {
                    let lty = self.cx.ty(&ret)?;
                    let mut b = self.b();
                    let u = b.undef(lty);
                    b.ret(Some(u));
                }
            }
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Lv> {
        for scope in self.scopes.iter().rev() {
            if let Some(lv) = scope.get(name) {
                return Some(lv.clone());
            }
        }
        None
    }

    // ---- statements ----

    fn stmt(&mut self, s: &Stmt) -> Result<()> {
        if !self.reachable {
            return Ok(()); // dead code after return/break/continue
        }
        match s {
            Stmt::Block(body) => {
                self.scopes.push(HashMap::new());
                for s in body {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Decl { ty, name, init } => {
                let lty = self.cx.ty(ty)?;
                let slot = {
                    let mut b = self.b();
                    let slot = b.alloca(lty);
                    b.name_value(slot, &format!("{name}.addr"));
                    slot
                };
                self.scopes.last_mut().expect("scope").insert(
                    name.clone(),
                    Lv {
                        ptr: slot,
                        ty: ty.clone(),
                    },
                );
                if let Some(e) = init {
                    let rv = self.rvalue(e)?;
                    let rv = self.cast_to(rv, ty)?;
                    self.b().store(rv.val, slot);
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.rvalue(e)?;
                Ok(())
            }
            Stmt::If(c, then, els) => {
                let cond = self.condition(c)?;
                let then_bb = self.b().block("if.then");
                let else_bb = self.b().block("if.else");
                let join_bb = self.b().block("if.end");
                self.b().cond_br(cond, then_bb, else_bb);
                self.switch_to(then_bb);
                self.stmt(then)?;
                if self.reachable {
                    self.b().br(join_bb);
                }
                self.switch_to(else_bb);
                if let Some(e) = els {
                    self.stmt(e)?;
                }
                if self.reachable {
                    self.b().br(join_bb);
                }
                self.switch_to(join_bb);
                Ok(())
            }
            Stmt::While(c, body) => {
                let header = self.b().block("while.cond");
                let body_bb = self.b().block("while.body");
                let exit = self.b().block("while.end");
                self.b().br(header);
                self.switch_to(header);
                let cond = self.condition(c)?;
                self.b().cond_br(cond, body_bb, exit);
                self.switch_to(body_bb);
                self.loops.push((exit, header));
                self.stmt(body)?;
                self.loops.pop();
                if self.reachable {
                    self.b().br(header);
                }
                self.switch_to(exit);
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let header = self.b().block("for.cond");
                let body_bb = self.b().block("for.body");
                let step_bb = self.b().block("for.step");
                let exit = self.b().block("for.end");
                self.b().br(header);
                self.switch_to(header);
                match cond {
                    Some(c) => {
                        let cv = self.condition(c)?;
                        self.b().cond_br(cv, body_bb, exit);
                    }
                    None => self.b().br(body_bb),
                }
                self.switch_to(body_bb);
                self.loops.push((exit, step_bb));
                self.stmt(body)?;
                self.loops.pop();
                if self.reachable {
                    self.b().br(step_bb);
                }
                self.switch_to(step_bb);
                if let Some(st) = step {
                    self.rvalue(st)?;
                }
                self.b().br(header);
                self.switch_to(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(v) => {
                match v {
                    Some(e) => {
                        let rv = self.rvalue(e)?;
                        let ret = self.ret.clone();
                        let rv = self.cast_to(rv, &ret)?;
                        self.b().ret(Some(rv.val));
                    }
                    None => self.b().ret(None),
                }
                self.reachable = false;
                Ok(())
            }
            Stmt::Break => {
                let Some(&(exit, _)) = self.loops.last() else {
                    return err("break outside a loop");
                };
                self.b().br(exit);
                self.reachable = false;
                Ok(())
            }
            Stmt::Continue => {
                let Some(&(_, cont)) = self.loops.last() else {
                    return err("continue outside a loop");
                };
                self.b().br(cont);
                self.reachable = false;
                Ok(())
            }
        }
    }

    // ---- expressions ----

    /// Evaluates `e` and converts to an LLVA `bool`.
    fn condition(&mut self, e: &Expr) -> Result<ValueId> {
        let rv = self.rvalue(e)?;
        let lty = self.cx.ty(&rv.ty)?;
        let mut b = self.b();
        let zero = if rv.ty.is_float() {
            b.fconst(lty, 0.0)
        } else if rv.ty.is_pointer_like() {
            b.null(lty)
        } else {
            b.iconst(lty, 0)
        };
        Ok(b.setne(rv.val, zero))
    }

    fn lvalue(&mut self, e: &Expr) -> Result<Lv> {
        match e {
            Expr::Ident(name) => {
                if let Some(lv) = self.lookup(name) {
                    return Ok(lv);
                }
                if let Some(gty) = self.cx.global_tys.get(name).cloned() {
                    let g = self
                        .cx
                        .module
                        .global_by_name(name)
                        .expect("registered global");
                    let ptr = self.b().global_addr(g);
                    return Ok(Lv { ptr, ty: gty });
                }
                err(format!("unknown variable '{name}'"))
            }
            Expr::Un(UnOp::Deref, inner) => {
                let rv = self.rvalue(inner)?;
                let CType::Ptr(t) = rv.ty else {
                    return err("dereference of non-pointer");
                };
                Ok(Lv {
                    ptr: rv.val,
                    ty: *t,
                })
            }
            Expr::Index(base, idx) => {
                let base = self.rvalue(base)?; // arrays decay here
                let CType::Ptr(elem) = base.ty.clone() else {
                    return err(format!("indexing non-pointer {}", base.ty));
                };
                let idx = self.rvalue(idx)?;
                let idx = self.cast_to(idx, &CType::Long)?;
                let ptr = self.b().gep(base.val, vec![idx.val]);
                Ok(Lv {
                    ptr,
                    ty: *elem,
                })
            }
            Expr::Member(base, field) => {
                let lv = self.lvalue(base)?;
                self.field_ptr(lv, field)
            }
            Expr::Arrow(base, field) => {
                let rv = self.rvalue(base)?;
                let CType::Ptr(inner) = rv.ty.clone() else {
                    return err("-> on non-pointer");
                };
                self.field_ptr(
                    Lv {
                        ptr: rv.val,
                        ty: *inner,
                    },
                    field,
                )
            }
            other => err(format!("expression is not an lvalue: {other:?}")),
        }
    }

    fn field_ptr(&mut self, lv: Lv, field: &str) -> Result<Lv> {
        let CType::Struct(sname) = &lv.ty else {
            return err(format!("member access on non-struct {}", lv.ty));
        };
        let info = self
            .cx
            .structs
            .get(sname)
            .ok_or_else(|| CompileError {
                message: format!("unknown struct '{sname}'"),
            })?;
        let Some(pos) = info.fields.iter().position(|(n, _)| n == field) else {
            return err(format!("struct {sname} has no field '{field}'"));
        };
        let fty = info.fields[pos].1.clone();
        let ptr = self
            .b()
            .gep_const(lv.ptr, &[(0, false), (pos as i64, true)]);
        Ok(Lv { ptr, ty: fty })
    }

    /// Loads an lvalue (with array decay).
    fn load_lv(&mut self, lv: Lv) -> Result<Rv> {
        if let CType::Array(elem, _) = &lv.ty {
            // decay: &a[0]
            let ptr = self.b().gep_const(lv.ptr, &[(0, false), (0, false)]);
            return Ok(Rv {
                val: ptr,
                ty: CType::Ptr(elem.clone()),
            });
        }
        if matches!(lv.ty, CType::Struct(_)) {
            return err("struct values cannot be loaded whole (use pointers)");
        }
        let val = self.b().load(lv.ptr);
        Ok(Rv {
            val,
            ty: lv.ty,
        })
    }

    #[allow(clippy::too_many_lines)]
    fn rvalue(&mut self, e: &Expr) -> Result<Rv> {
        match e {
            Expr::Int(v) => {
                let (cty, lty) = if i32::try_from(*v).is_ok() {
                    (CType::Int, self.cx.module.types_mut().int())
                } else {
                    (CType::Long, self.cx.module.types_mut().long())
                };
                let val = self.b().iconst(lty, *v);
                Ok(Rv { val, ty: cty })
            }
            Expr::Float(v) => {
                let lty = self.cx.module.types_mut().double();
                let val = self.b().fconst(lty, *v);
                Ok(Rv {
                    val,
                    ty: CType::Double,
                })
            }
            Expr::Char(c) => {
                let lty = self.cx.module.types_mut().sbyte();
                let val = self.b().iconst(lty, i64::from(*c));
                Ok(Rv {
                    val,
                    ty: CType::Char,
                })
            }
            Expr::Str(s) => {
                let g = self.cx.string_global(s)?;
                let base = self.b().global_addr(g);
                let ptr = self.b().gep_const(base, &[(0, false), (0, false)]);
                Ok(Rv {
                    val: ptr,
                    ty: CType::Ptr(Box::new(CType::Char)),
                })
            }
            Expr::Ident(name) => {
                if self.lookup(name).is_none() && !self.cx.global_tys.contains_key(name) {
                    // function reference?
                    if let Some((ret, params, fid)) = self.cx.fn_sigs.get(name).cloned() {
                        let val = self.b().func_addr(fid);
                        return Ok(Rv {
                            val,
                            ty: CType::FnPtr(Box::new(ret), params),
                        });
                    }
                }
                let lv = self.lvalue(e)?;
                self.load_lv(lv)
            }
            Expr::Un(UnOp::Addr, inner) => {
                let lv = self.lvalue(inner)?;
                // &array yields a pointer to the element type in minic
                let ty = match lv.ty {
                    CType::Array(elem, _) => {
                        let ptr = self.b().gep_const(lv.ptr, &[(0, false), (0, false)]);
                        return Ok(Rv {
                            val: ptr,
                            ty: CType::Ptr(elem),
                        });
                    }
                    other => CType::Ptr(Box::new(other)),
                };
                Ok(Rv { val: lv.ptr, ty })
            }
            Expr::Un(UnOp::Deref, _) => {
                let lv = self.lvalue(e)?;
                self.load_lv(lv)
            }
            Expr::Un(UnOp::Neg, inner) => {
                let rv = self.rvalue(inner)?;
                let lty = self.cx.ty(&rv.ty)?;
                let mut b = self.b();
                let zero = if rv.ty.is_float() {
                    b.fconst(lty, 0.0)
                } else {
                    b.iconst(lty, 0)
                };
                let val = b.sub(zero, rv.val);
                Ok(Rv { val, ty: rv.ty })
            }
            Expr::Un(UnOp::Not, inner) => {
                let c = self.condition(inner)?;
                let mut b = self.b();
                let t = b.bconst(false);
                let val = b.seteq(c, t);
                let int = b.module().types_mut().int();
                let val = b.cast(val, int);
                Ok(Rv {
                    val,
                    ty: CType::Int,
                })
            }
            Expr::Un(UnOp::BitNot, inner) => {
                let rv = self.rvalue(inner)?;
                if !rv.ty.is_integer() {
                    return err("~ requires an integer");
                }
                let lty = self.cx.ty(&rv.ty)?;
                let mut b = self.b();
                let ones = b.iconst(lty, -1);
                let val = b.xor(rv.val, ones);
                Ok(Rv { val, ty: rv.ty })
            }
            Expr::Assign(lhs, rhs) => {
                let lv = self.lvalue(lhs)?;
                let rv = self.rvalue(rhs)?;
                let rv = self.cast_to(rv, &lv.ty)?;
                self.b().store(rv.val, lv.ptr);
                Ok(rv)
            }
            Expr::Bin(op, a, b) => self.binary(*op, a, b),
            Expr::Call(callee, args) => self.call(callee, args),
            Expr::Index(..) | Expr::Member(..) | Expr::Arrow(..) => {
                let lv = self.lvalue(e)?;
                self.load_lv(lv)
            }
            Expr::Cast(ty, inner) => {
                let rv = self.rvalue(inner)?;
                self.cast_to(rv, ty)
            }
            Expr::Sizeof(ty) => {
                let lty = self.cx.ty(ty)?;
                let size = self
                    .cx
                    .module
                    .target()
                    .size_of(self.cx.module.types(), lty);
                let ulong = self.cx.module.types_mut().ulong();
                let val = self.b().iconst(ulong, size as i64);
                Ok(Rv {
                    val,
                    ty: CType::Ulong,
                })
            }
            Expr::Cond(c, t, f) => {
                let cond = self.condition(c)?;
                let then_bb = self.b().block("sel.then");
                let else_bb = self.b().block("sel.else");
                let join = self.b().block("sel.end");
                self.b().cond_br(cond, then_bb, else_bb);
                self.switch_to(then_bb);
                let tv = self.rvalue(t)?;
                // evaluate both to a common type
                self.switch_to(else_bb);
                let fv = self.rvalue(f)?;
                let common = promote_types(&tv.ty, &fv.ty)
                    .unwrap_or_else(|| tv.ty.clone());
                // cast in each arm, then merge
                self.switch_to(then_bb);
                // NOTE: the cast instructions must live in their own arms;
                // we re-emit the casts at the end of each arm.
                let tvc = self.cast_to(tv, &common)?;
                let then_end = self.current.expect("current");
                self.b().br(join);
                self.switch_to(else_bb);
                let fvc = self.cast_to(fv, &common)?;
                let else_end = self.current.expect("current");
                self.b().br(join);
                self.switch_to(join);
                let lty = self.cx.ty(&common)?;
                let val = self
                    .b()
                    .phi(lty, vec![(tvc.val, then_end), (fvc.val, else_end)]);
                Ok(Rv { val, ty: common })
            }
        }
    }

    fn binary(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<Rv> {
        // short-circuit logical operators
        if matches!(op, BinOp::LAnd | BinOp::LOr) {
            let lhs = self.condition(a)?;
            let rhs_bb = self.b().block("sc.rhs");
            let join = self.b().block("sc.end");
            let lhs_end = self.current.expect("current");
            if op == BinOp::LAnd {
                self.b().cond_br(lhs, rhs_bb, join);
            } else {
                self.b().cond_br(lhs, join, rhs_bb);
            }
            self.switch_to(rhs_bb);
            let rhs = self.condition(b)?;
            let rhs_end = self.current.expect("current");
            self.b().br(join);
            self.switch_to(join);
            let mut bb = self.b();
            let boolt = bb.module().types_mut().bool();
            let short_val = bb.bconst(op == BinOp::LOr);
            let val = bb.phi(boolt, vec![(short_val, lhs_end), (rhs, rhs_end)]);
            let int = bb.module().types_mut().int();
            let val = bb.cast(val, int);
            return Ok(Rv {
                val,
                ty: CType::Int,
            });
        }

        let lhs = self.rvalue(a)?;
        let rhs = self.rvalue(b)?;

        // pointer arithmetic
        if let CType::Ptr(elem) = lhs.ty.clone() {
            if matches!(op, BinOp::Add | BinOp::Sub) && rhs.ty.is_integer() {
                let idx = self.cast_to(rhs, &CType::Long)?;
                let mut bb = self.b();
                let idx_val = if op == BinOp::Sub {
                    let long = bb.module().types_mut().long();
                    let zero = bb.iconst(long, 0);
                    bb.sub(zero, idx.val)
                } else {
                    idx.val
                };
                let val = bb.gep(lhs.val, vec![idx_val]);
                return Ok(Rv {
                    val,
                    ty: CType::Ptr(elem),
                });
            }
            if op == BinOp::Sub && matches!(rhs.ty, CType::Ptr(_)) {
                // pointer difference in elements
                let esize = {
                    let ety = self.cx.ty(&elem)?;
                    self.cx.module.target().size_of(self.cx.module.types(), ety)
                };
                let long = self.cx.module.types_mut().long();
                let mut bb = self.b();
                let l = bb.cast(lhs.val, long);
                let r = bb.cast(rhs.val, long);
                let d = bb.sub(l, r);
                let sz = bb.iconst(long, esize as i64);
                let val = bb.div(d, sz);
                return Ok(Rv {
                    val,
                    ty: CType::Long,
                });
            }
            if op.is_comparison() && rhs.ty.is_pointer_like() {
                return self.compare(op, lhs, rhs);
            }
            if op.is_comparison() && matches!(b, Expr::Int(0)) {
                let null = Rv {
                    val: self.null_of(&lhs.ty)?,
                    ty: lhs.ty.clone(),
                };
                return self.compare(op, lhs, null);
            }
            return err(format!("invalid pointer operation {op:?}"));
        }
        if matches!(rhs.ty, CType::Ptr(_)) {
            if matches!(op, BinOp::Add) && lhs.ty.is_integer() {
                return self.binary_swapped_ptr(lhs, rhs);
            }
            if op.is_comparison() && matches!(a, Expr::Int(0)) {
                let null = Rv {
                    val: self.null_of(&rhs.ty)?,
                    ty: rhs.ty.clone(),
                };
                return self.compare(op, null, rhs);
            }
            return err("invalid pointer operation");
        }

        // usual arithmetic conversions
        let common = promote_types(&lhs.ty, &rhs.ty).ok_or_else(|| CompileError {
            message: format!("incompatible operand types {} and {}", lhs.ty, rhs.ty),
        })?;
        let lhs = self.cast_to(lhs, &common)?;
        let rhs = self.cast_to(rhs, &common)?;
        if op.is_comparison() {
            return self.compare(op, lhs, rhs);
        }
        let mut bb = self.b();
        let val = match op {
            BinOp::Add => bb.add(lhs.val, rhs.val),
            BinOp::Sub => bb.sub(lhs.val, rhs.val),
            BinOp::Mul => bb.mul(lhs.val, rhs.val),
            BinOp::Div => bb.div(lhs.val, rhs.val),
            BinOp::Rem => bb.rem(lhs.val, rhs.val),
            BinOp::And => bb.and(lhs.val, rhs.val),
            BinOp::Or => bb.or(lhs.val, rhs.val),
            BinOp::Xor => bb.xor(lhs.val, rhs.val),
            BinOp::Shl => bb.shl(lhs.val, rhs.val),
            BinOp::Shr => bb.shr(lhs.val, rhs.val),
            _ => unreachable!(),
        };
        Ok(Rv { val, ty: common })
    }

    fn binary_swapped_ptr(&mut self, idx: Rv, ptr: Rv) -> Result<Rv> {
        let CType::Ptr(elem) = ptr.ty.clone() else {
            unreachable!()
        };
        let idx = self.cast_to(idx, &CType::Long)?;
        let val = self.b().gep(ptr.val, vec![idx.val]);
        Ok(Rv {
            val,
            ty: CType::Ptr(elem),
        })
    }

    fn null_of(&mut self, ty: &CType) -> Result<ValueId> {
        let lty = self.cx.ty(ty)?;
        Ok(self.b().null(lty))
    }

    fn compare(&mut self, op: BinOp, lhs: Rv, rhs: Rv) -> Result<Rv> {
        let mut bb = self.b();
        let val = match op {
            BinOp::Eq => bb.seteq(lhs.val, rhs.val),
            BinOp::Ne => bb.setne(lhs.val, rhs.val),
            BinOp::Lt => bb.setlt(lhs.val, rhs.val),
            BinOp::Gt => bb.setgt(lhs.val, rhs.val),
            BinOp::Le => bb.setle(lhs.val, rhs.val),
            BinOp::Ge => bb.setge(lhs.val, rhs.val),
            _ => unreachable!(),
        };
        let int = bb.module().types_mut().int();
        let val = bb.cast(val, int);
        Ok(Rv {
            val,
            ty: CType::Int,
        })
    }

    fn call(&mut self, callee: &Expr, args: &[Expr]) -> Result<Rv> {
        // builtin?
        if let Expr::Ident(name) = callee {
            if BUILTINS.iter().any(|(c, _)| c == name) {
                return self.call_builtin(name, args);
            }
            if let Some((ret, params, fid)) = self.cx.fn_sigs.get(name).cloned() {
                if args.len() != params.len() {
                    return err(format!(
                        "call to {name} passes {} args, expected {}",
                        args.len(),
                        params.len()
                    ));
                }
                let mut vals = Vec::with_capacity(args.len());
                for (arg, pty) in args.iter().zip(&params) {
                    let rv = self.rvalue(arg)?;
                    let rv = self.cast_to(rv, pty)?;
                    vals.push(rv.val);
                }
                let out = self.b().call(fid, vals);
                return Ok(Rv {
                    val: out.unwrap_or_else(|| {
                        // void call used in expression position: dummy 0
                        let int = self.cx.module.types_mut().int();
                        self.b().iconst(int, 0)
                    }),
                    ty: if matches!(ret, CType::Void) {
                        CType::Int
                    } else {
                        ret
                    },
                });
            }
        }
        // indirect call through a function-pointer value
        let f = self.rvalue(callee)?;
        let CType::FnPtr(ret, params) = f.ty.clone() else {
            return err(format!("call of non-function {}", f.ty));
        };
        if args.len() != params.len() {
            return err("indirect call arity mismatch");
        }
        let mut vals = Vec::with_capacity(args.len());
        for (arg, pty) in args.iter().zip(&params) {
            let rv = self.rvalue(arg)?;
            let rv = self.cast_to(rv, pty)?;
            vals.push(rv.val);
        }
        let rty = self.cx.ty(&ret)?;
        let out = self.b().call_indirect(f.val, rty, vals);
        Ok(Rv {
            val: out.unwrap_or_else(|| {
                let int = self.cx.module.types_mut().int();
                self.b().iconst(int, 0)
            }),
            ty: if matches!(*ret, CType::Void) {
                CType::Int
            } else {
                *ret
            },
        })
    }

    fn call_builtin(&mut self, name: &str, args: &[Expr]) -> Result<Rv> {
        let fid = self.cx.intrinsic_fid(name)?;
        let (ret_cty, param_ctys): (CType, Vec<CType>) = match name {
            "putchar" => (CType::Int, vec![CType::Int]),
            "getchar" => (CType::Int, vec![]),
            "malloc" => (CType::Ptr(Box::new(CType::Char)), vec![CType::Ulong]),
            "free" => (CType::Int, vec![CType::Ptr(Box::new(CType::Char))]),
            "clock" => (CType::Ulong, vec![]),
            _ => unreachable!(),
        };
        if args.len() != param_ctys.len() {
            return err(format!("{name} takes {} argument(s)", param_ctys.len()));
        }
        let mut vals = Vec::with_capacity(args.len());
        for (arg, pty) in args.iter().zip(&param_ctys) {
            let rv = self.rvalue(arg)?;
            let rv = self.cast_to(rv, pty)?;
            vals.push(rv.val);
        }
        let out = self.b().call(fid, vals);
        Ok(Rv {
            val: out.unwrap_or_else(|| {
                let int = self.cx.module.types_mut().int();
                self.b().iconst(int, 0)
            }),
            ty: ret_cty,
        })
    }

    fn cast_to(&mut self, rv: Rv, to: &CType) -> Result<Rv> {
        let to = decay(to.clone());
        if rv.ty == to {
            return Ok(rv);
        }
        let lty = self.cx.ty(&to)?;
        let val = self.b().cast(rv.val, lty);
        Ok(Rv { val, ty: to })
    }
}

/// The usual arithmetic conversions: promote to the higher-ranked type.
fn promote_types(a: &CType, b: &CType) -> Option<CType> {
    if a == b {
        return Some(a.clone());
    }
    if a.is_integer() || a.is_float() {
        if !(b.is_integer() || b.is_float()) {
            return None;
        }
        let (ra, rb) = (a.rank(), b.rank());
        return Some(if ra >= rb { a.clone() } else { b.clone() });
    }
    None
}
