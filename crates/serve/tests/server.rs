//! End-to-end tests for the TCP front-end: the length-framed protocol
//! (hello → load → call → metrics) and the HTTP `GET /metrics` sniff
//! on the same port.

use std::io::{Read, Write};
use std::net::TcpStream;

use llva_core::layout::TargetConfig;
use llva_core::printer::print_module;
use llva_serve::server::Client;
use llva_serve::{ExecService, Request, Response, ServeConfig, Server, TenantQuota};

const MINIC_SRC: &str = r"
int answer() {
    int acc = 0;
    for (int i = 0; i < 7; i++) acc = acc + 6;
    return acc;
}
";

fn module_text() -> String {
    let module = llva_minic::compile(MINIC_SRC, "wire", TargetConfig::default())
        .expect("test module compiles");
    print_module(&module)
}

fn start_server() -> std::net::SocketAddr {
    let service = ExecService::new(ServeConfig::default());
    let server = Server::bind(service, "127.0.0.1:0", TenantQuota::default())
        .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    drop(server.spawn());
    addr
}

#[test]
fn framed_protocol_load_call_metrics() {
    let addr = start_server();
    let mut client = Client::connect(addr, "acme").expect("hello");

    let loaded = client
        .request(&Request::Load {
            module: "m".to_string(),
            source: module_text(),
        })
        .unwrap();
    let Response::Loaded { cache, functions } = loaded else {
        panic!("expected Loaded, got {loaded:?}");
    };
    assert!(cache.starts_with('m'), "content-addressed cache: {cache}");
    assert_eq!(functions, 1);

    let answered = client
        .request(&Request::Call {
            module: "m".to_string(),
            entry: "answer".to_string(),
            args: Vec::new(),
            fuel: 0,
        })
        .unwrap();
    let Response::Value { value, degraded, .. } = answered else {
        panic!("expected Value, got {answered:?}");
    };
    assert_eq!(value, 42);
    assert!(!degraded);

    let metrics = client.request(&Request::Metrics).unwrap();
    let Response::Text { body } = metrics else {
        panic!("expected Text, got {metrics:?}");
    };
    assert!(body.contains(r#"llva_serve_calls_total{tenant="acme",result="ok"} 1"#));

    // structured errors, not dropped connections
    let err = client
        .request(&Request::Call {
            module: "ghost".to_string(),
            entry: "answer".to_string(),
            args: Vec::new(),
            fuel: 0,
        })
        .unwrap();
    assert!(matches!(err, Response::Error { .. }), "got {err:?}");
}

#[test]
fn hello_is_required_before_load_or_call() {
    let addr = start_server();
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = std::io::BufWriter::new(stream);
    let req = Request::Call {
        module: "m".to_string(),
        entry: "f".to_string(),
        args: Vec::new(),
        fuel: 0,
    };
    llva_serve::proto::write_frame(&mut writer, &req.encode()).unwrap();
    let payload = llva_serve::proto::read_frame(&mut reader).unwrap().unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Error { message } => assert!(message.contains("Hello"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }
}

#[test]
fn http_metrics_scrape_on_the_same_port() {
    let addr = start_server();
    // a framed client creates some state to scrape
    let mut client = Client::connect(addr, "acme").expect("hello");
    let loaded = client.request(&Request::Load {
        module: "m".to_string(),
        source: module_text(),
    });
    assert!(matches!(loaded, Ok(Response::Loaded { .. })));

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    assert!(response.contains("text/plain"));
    assert!(response.contains("llva_serve_tenants 1"));
    assert!(response.contains(r#"llva_serve_in_flight{tenant="acme"} 0"#));

    // other paths 404 without disturbing the service
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /nope HTTP/1.0\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 404"), "{response}");
}

/// A wire-level drain: the response body is the final metrics flush,
/// the accept loop exits, and the port stops serving.
#[test]
fn drain_over_the_wire_shuts_the_server_down() {
    let service = ExecService::new(ServeConfig::default());
    let server = Server::bind(service, "127.0.0.1:0", TenantQuota::default())
        .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let accept_loop = server.spawn();

    let mut client = Client::connect(addr, "acme").expect("hello");
    let loaded = client.request(&Request::Load {
        module: "m".to_string(),
        source: module_text(),
    });
    assert!(matches!(loaded, Ok(Response::Loaded { .. })));

    let drained = client
        .request(&Request::Drain { deadline_ms: 10_000 })
        .unwrap();
    let Response::Text { body } = drained else {
        panic!("expected the final metrics flush, got {drained:?}");
    };
    assert!(body.contains("llva_serve_draining 1"), "{body}");

    // the accept loop observed the drain and exited (no hang here)
    accept_loop.join().expect("accept loop exits after drain");
}
