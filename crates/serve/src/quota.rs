//! Per-tenant quotas, admission counters, and the service error type.
//!
//! Admission control is the first robustness layer of `llva-serve`:
//! every request is checked against its tenant's quota *before* any
//! work is queued, and a rejection is a cheap, counted, first-class
//! answer — never unbounded queue growth. The counters are all atomics
//! so the metrics surface reads them without touching the tenant's
//! executor.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Resource limits for one tenant. Every limit is enforced at
/// admission (before queuing) or by construction (memory: the
/// simulated machine is *built* at the quota size, so a tenant cannot
/// address memory it was never given).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Calls admitted but not yet answered (the bounded in-flight
    /// queue). One executes while the rest wait in the tenant's
    /// command queue; the `max_in_flight + 1`-th caller is rejected
    /// with [`ServeError::Busy`].
    pub max_in_flight: u32,
    /// Total execution fuel (steps) this tenant may burn across all
    /// calls. Admission rejects once it hits zero; see
    /// [`crate::ExecService::refill_fuel`].
    pub fuel_budget: u64,
    /// Per-call step ceiling (a single call can never burn more than
    /// this, regardless of remaining budget).
    pub max_call_fuel: u64,
    /// Simulated memory per call, in bytes.
    pub memory_bytes: u64,
    /// Modules this tenant may hold loaded at once.
    pub max_modules: usize,
    /// Largest accepted module source, in bytes.
    pub max_module_bytes: usize,
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota {
            max_in_flight: 8,
            fuel_budget: u64::MAX,
            max_call_fuel: 1_000_000_000,
            memory_bytes: llva_engine::DEFAULT_MEMORY_SIZE,
            max_modules: 8,
            max_module_bytes: 1 << 20,
        }
    }
}

impl TenantQuota {
    /// A deliberately tight quota for tests and abuse experiments.
    #[must_use]
    pub fn tight() -> TenantQuota {
        TenantQuota {
            max_in_flight: 2,
            fuel_budget: 10_000_000,
            max_call_fuel: 5_000_000,
            memory_bytes: 1 << 20,
            max_modules: 2,
            max_module_bytes: 64 << 10,
        }
    }
}

/// Which quota an admission rejection hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaKind {
    /// The bounded in-flight queue was full.
    InFlight,
    /// The tenant's fuel budget is exhausted.
    Fuel,
    /// Module count or module size limit.
    Module,
}

impl fmt::Display for QuotaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QuotaKind::InFlight => "in-flight",
            QuotaKind::Fuel => "fuel",
            QuotaKind::Module => "module",
        })
    }
}

/// Why a service request failed. Admission rejections
/// ([`ServeError::Busy`], [`ServeError::QuotaExceeded`]) are expected
/// backpressure, not faults; everything else is surfaced with enough
/// structure for a client to act on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No tenant registered under this name.
    UnknownTenant(String),
    /// A tenant with this name already exists.
    TenantExists(String),
    /// The bounded in-flight queue is full — retry later
    /// (backpressure, never unbounded queueing).
    Busy {
        /// Calls in flight when the request was rejected.
        in_flight: u32,
    },
    /// A quota was exhausted.
    QuotaExceeded {
        /// Which quota.
        kind: QuotaKind,
        /// Human-readable detail.
        detail: String,
    },
    /// The named module is not loaded for this tenant.
    NoSuchModule(String),
    /// The module source failed to parse or verify.
    BadModule(String),
    /// The entry function does not exist in the module.
    NoSuchFunction(String),
    /// Every execution tier faulted, through the bounded retry budget.
    TiersExhausted {
        /// Incidents recorded across all attempts of this call.
        incidents: u32,
        /// Serve-level retries consumed.
        retries: u32,
    },
    /// The per-call wall-clock deadline expired before the tenant's
    /// executor answered (the call still completes in the background
    /// and is fully accounted; only this caller gave up waiting).
    DeadlineExpired,
    /// The tenant's executor is gone (service shut down).
    Shutdown,
    /// The tenant's executor died (panic or wedge) while this call was
    /// accepted; the supervisor is respawning it. The call's in-flight
    /// slot has been released — retry against the new executor epoch.
    ExecutorLost {
        /// Executor epoch at the time the loss was observed.
        epoch: u64,
    },
    /// The per-(module, function) circuit breaker is open after
    /// repeated [`ServeError::TiersExhausted`] outcomes.
    BreakerOpen {
        /// Suggested wait before the next attempt, in milliseconds.
        retry_in_ms: u64,
    },
    /// The service is draining: admission is closed while queued work
    /// finishes ahead of shutdown.
    Draining,
    /// A malformed request (wire protocol violations, bad arguments).
    BadRequest(String),
    /// An unexpected internal failure (caught panic in the executor —
    /// the tenant stays up; the incident is in the message).
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant '{t}'"),
            ServeError::TenantExists(t) => write!(f, "tenant '{t}' already exists"),
            ServeError::Busy { in_flight } => {
                write!(f, "busy: {in_flight} call(s) in flight, queue full")
            }
            ServeError::QuotaExceeded { kind, detail } => {
                write!(f, "{kind} quota exceeded: {detail}")
            }
            ServeError::NoSuchModule(m) => write!(f, "no such module '{m}'"),
            ServeError::BadModule(e) => write!(f, "bad module: {e}"),
            ServeError::NoSuchFunction(n) => write!(f, "no such function %{n}"),
            ServeError::TiersExhausted { incidents, retries } => write!(
                f,
                "all execution tiers exhausted ({incidents} incident(s), {retries} retries)"
            ),
            ServeError::DeadlineExpired => f.write_str("deadline expired"),
            ServeError::Shutdown => f.write_str("service shut down"),
            ServeError::ExecutorLost { epoch } => {
                write!(f, "executor lost (epoch {epoch}); respawning")
            }
            ServeError::BreakerOpen { retry_in_ms } => {
                write!(f, "circuit breaker open; retry in {retry_in_ms}ms")
            }
            ServeError::Draining => f.write_str("service draining"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Lock-free admission/outcome counters for one tenant (the metrics
/// surface reads these without queueing behind the executor).
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Calls admitted past every quota check.
    pub admitted: AtomicU64,
    /// Calls rejected because the in-flight queue was full.
    pub rejected_busy: AtomicU64,
    /// Calls rejected because the fuel budget was exhausted.
    pub rejected_fuel: AtomicU64,
    /// Module loads rejected by count/size quota.
    pub rejected_module: AtomicU64,
    /// Callers that gave up waiting (per-call deadline).
    pub deadline_expired: AtomicU64,
    /// Calls answered with a value.
    pub calls_ok: AtomicU64,
    /// Calls answered with a precise trap.
    pub calls_trapped: AtomicU64,
    /// Calls that genuinely ran out of call fuel.
    pub calls_out_of_fuel: AtomicU64,
    /// Calls that exhausted every tier (after retries).
    pub calls_exhausted: AtomicU64,
    /// Serve-level bounded retries consumed (transient-fault recovery).
    pub retries: AtomicU64,
    /// Total steps burned against the fuel budget.
    pub fuel_used: AtomicU64,
    /// Accepted calls answered with [`ServeError::ExecutorLost`]
    /// because the executor died while they were queued or running.
    pub executor_lost: AtomicU64,
    /// Calls rejected by an open circuit breaker.
    pub rejected_breaker: AtomicU64,
    /// Requests rejected because the service was draining.
    pub rejected_draining: AtomicU64,
}

/// A plain-value copy of [`TenantCounters`] (one consistent-enough
/// read per counter; metrics rendering and assertions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterValues {
    pub admitted: u64,
    pub rejected_busy: u64,
    pub rejected_fuel: u64,
    pub rejected_module: u64,
    pub deadline_expired: u64,
    pub calls_ok: u64,
    pub calls_trapped: u64,
    pub calls_out_of_fuel: u64,
    pub calls_exhausted: u64,
    pub retries: u64,
    pub fuel_used: u64,
    pub executor_lost: u64,
    pub rejected_breaker: u64,
    pub rejected_draining: u64,
}

impl TenantCounters {
    /// Reads every counter (relaxed; monotonic counters need no
    /// cross-counter consistency).
    #[must_use]
    pub fn values(&self) -> CounterValues {
        CounterValues {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            rejected_fuel: self.rejected_fuel.load(Ordering::Relaxed),
            rejected_module: self.rejected_module.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            calls_ok: self.calls_ok.load(Ordering::Relaxed),
            calls_trapped: self.calls_trapped.load(Ordering::Relaxed),
            calls_out_of_fuel: self.calls_out_of_fuel.load(Ordering::Relaxed),
            calls_exhausted: self.calls_exhausted.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            fuel_used: self.fuel_used.load(Ordering::Relaxed),
            executor_lost: self.executor_lost.load(Ordering::Relaxed),
            rejected_breaker: self.rejected_breaker.load(Ordering::Relaxed),
            rejected_draining: self.rejected_draining.load(Ordering::Relaxed),
        }
    }
}

impl CounterValues {
    /// Total admission rejections across all reasons.
    #[must_use]
    pub fn rejected_total(&self) -> u64 {
        self.rejected_busy + self.rejected_fuel + self.rejected_module + self.rejected_breaker
    }
}
