//! # llva-backend — native code generators (the "translator")
//!
//! Translates LLVA virtual object code to the three simulated
//! implementation ISAs in `llva-machine`:
//!
//! * [`x86gen`] — IA-32-like: historically "virtually no optimization
//!   and very simple register allocation resulting in significant
//!   spill code" (the paper, §5.2); now uses the same use-count
//!   linear-scan register assignment as the SPARC back end over its
//!   three callee-saved registers, with the naive slot-everything
//!   allocator preserved behind [`x86gen::compile_x86_naive`] for the
//!   Table 2 spill-delta comparison.
//! * [`sparcgen`] — SPARC-V9-like: "produces higher quality code, but
//!   requires more instructions because of the RISC architecture";
//!   use-count-based register assignment over 14 callee-saved
//!   registers, `sethi`/`or` materialization for wide constants.
//! * [`riscvgen`] — RV64-like: the third target, proving the V-ISA's
//!   I-ISA independence with a condition-code-free ISA (fused
//!   compare-and-branch, `slt`-materialized booleans) and 12-bit
//!   immediates.
//!
//! [`common`] holds shared pieces: global memory image layout,
//! compare/branch fusion, and constant canonicalization. [`peephole`]
//! is the shared target-independent peephole pass every generator runs
//! over its finished stream.

pub mod common;
pub mod peephole;
pub mod riscvgen;
pub mod sparcgen;
pub mod x86gen;

pub use common::{layout_globals, GlobalImage};
pub use peephole::{PeepholeConfig, PeepholeStats};
pub use riscvgen::{compile_riscv, compile_riscv_with};
pub use sparcgen::{compile_sparc, compile_sparc_with};
pub use x86gen::{compile_x86, compile_x86_naive, compile_x86_with, spill_count};

#[cfg(test)]
mod tests {
    //! The compile entry points are the unit of work for LLEE's
    //! parallel offline translator: they must be pure over `&Module`
    //! and callable concurrently from many threads.

    use llva_core::layout::TargetConfig;
    use llva_core::module::Module;

    const SRC: &str = r#"
int %helper(int %x) {
entry:
    %a = mul int %x, 7
    %c = setlt int %a, 50
    br bool %c, label %lo, label %hi
lo:
    ret int %a
hi:
    %b = sub int %a, 50
    ret int %b
}

int %main(int %n) {
entry:
    %r = call int %helper(int %n)
    ret int %r
}
"#;

    #[test]
    fn module_is_shareable_across_threads() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Module>();
    }

    /// Compiles every function serially and from 4 threads and asserts
    /// the results agree, via a target-erasing closure.
    fn assert_reentrant<C, O>(m: &Module, compile: C)
    where
        C: Fn(&Module, llva_core::module::FuncId) -> O + Sync,
        O: PartialEq + std::fmt::Debug + Send,
    {
        let fids: Vec<_> = m.functions().map(|(fid, _)| fid).collect();
        let serial: Vec<_> = fids.iter().map(|&f| compile(m, f)).collect();
        let (compile, fids) = (&compile, &fids);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(move || fids.iter().map(|&f| compile(m, f)).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("no panic"), serial);
            }
        });
    }

    #[test]
    fn compile_entry_points_are_reentrant() {
        // the same &Module compiled concurrently from many threads
        // must produce the same code as a serial compile — all three
        // back ends
        let mut m = llva_core::parser::parse_module(SRC).expect("parses");
        m.set_target(TargetConfig::ia32());
        assert_reentrant(&m, crate::compile_x86);
        m.set_target(TargetConfig::sparc_v9());
        assert_reentrant(&m, crate::compile_sparc);
        m.set_target(TargetConfig::riscv64());
        assert_reentrant(&m, crate::compile_riscv);
    }
}
