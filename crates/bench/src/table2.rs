//! Table 2 of the paper: "Metrics demonstrating code size and
//! low-level nature of the V-ISA".
//!
//! Columns reproduced per workload (see EXPERIMENTS.md for the
//! paper-vs-measured comparison):
//!
//! 1. `#LOC` — source lines (minic instead of C),
//! 2. native size (KB) — SPARC native code bytes (the paper's native
//!    executables were SPARC, built by the same back end),
//! 3. LLVA code size (KB) — the binary virtual object code,
//! 4. `#LLVA` instructions,
//! 5. `#x86` instructions + expansion ratio,
//! 6. `#SPARC` instructions + expansion ratio,
//! 7. translate time (s) — wall-clock x86 whole-program JIT,
//! 8. run time (s) — simulated cycles at [`CLOCK_HZ`] (substitution #4
//!    in DESIGN.md: the paper measured gcc -O3 native time on real
//!    hardware), and the translate/run ratio.
//!
//! "The same LLVA optimizations were applied in both cases": the
//! standard per-module pipeline runs before any measurement.

use llva_core::layout::TargetConfig;
use llva_engine::llee::{ExecutionManager, TargetIsa};
use std::time::Duration;

/// Simulated clock rate used to convert cycles to seconds (the paper's
/// machines were sub-GHz; 1 GHz keeps numbers readable).
pub const CLOCK_HZ: f64 = 1.0e9;

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub program: String,
    /// Lines of source.
    pub loc: usize,
    /// Native (SPARC) code size in bytes.
    pub native_bytes: usize,
    /// LLVA virtual object code size in bytes.
    pub llva_bytes: usize,
    /// LLVA instruction count.
    pub llva_insts: usize,
    /// x86 instruction count.
    pub x86_insts: usize,
    /// SPARC instruction count.
    pub sparc_insts: usize,
    /// Whole-program x86 JIT translation wall-clock.
    pub translate_time: Duration,
    /// Simulated run time (cycles / [`CLOCK_HZ`]).
    pub run_time: Duration,
}

impl Row {
    /// x86 instructions per LLVA instruction.
    pub fn x86_ratio(&self) -> f64 {
        self.x86_insts as f64 / self.llva_insts as f64
    }

    /// SPARC instructions per LLVA instruction.
    pub fn sparc_ratio(&self) -> f64 {
        self.sparc_insts as f64 / self.llva_insts as f64
    }

    /// Native-to-LLVA size ratio (paper: ~1.3–2x for large programs).
    pub fn size_ratio(&self) -> f64 {
        self.native_bytes as f64 / self.llva_bytes as f64
    }

    /// Translate time over run time (paper: < 1% except short runs).
    pub fn translate_ratio(&self) -> f64 {
        self.translate_time.as_secs_f64() / self.run_time.as_secs_f64().max(1e-12)
    }
}

/// Computes one row for a workload.
pub fn row_for(w: &llva_workloads::Workload) -> Row {
    // "the same LLVA optimizations were applied in both cases"
    let optimize = |mut m: llva_core::module::Module| {
        let mut pm = llva_opt::standard_pipeline();
        pm.run(&mut m);
        m
    };

    // LLVA metrics
    let m = optimize(w.compile(TargetConfig::default()));
    let llva_bytes = llva_core::bytecode::encode_module(&m).len();
    let llva_insts = m.total_insts();

    // x86: instruction count + whole-program JIT translate time
    let m_x86 = optimize(w.compile(TargetConfig::ia32()));
    let mut mgr_x86 = ExecutionManager::new(m_x86, TargetIsa::X86);
    mgr_x86.translate_all().expect("translates");
    let x86_insts = mgr_x86.installed_insts();
    let translate_time = mgr_x86.stats().translate_time;

    // SPARC: instruction count, native size, and the simulated run
    let m_sparc = optimize(w.compile(TargetConfig::sparc_v9()));
    let mut mgr_sparc = ExecutionManager::new(m_sparc, TargetIsa::Sparc);
    mgr_sparc.translate_all().expect("translates");
    let sparc_insts = mgr_sparc.installed_insts();
    let native_bytes = mgr_sparc.installed_bytes();
    mgr_sparc.run("main", &[]).expect("runs");
    let cycles = mgr_sparc.exec_stats().cycles;
    let run_time = Duration::from_secs_f64(cycles as f64 / CLOCK_HZ);

    Row {
        program: w.name.to_string(),
        loc: w.loc(),
        native_bytes,
        llva_bytes,
        llva_insts,
        x86_insts,
        sparc_insts,
        translate_time,
        run_time,
    }
}

/// Computes all rows (Table 2 order).
pub fn compute_all() -> Vec<Row> {
    llva_workloads::all().iter().map(row_for).collect()
}

/// Formats rows as the paper's Table 2.
pub fn format_table(rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>5} {:>10} {:>10} {:>7} {:>7} {:>6} {:>7} {:>6} {:>10} {:>10} {:>7}",
        "Program",
        "#LOC",
        "Native(B)",
        "LLVA(B)",
        "#LLVA",
        "#X86",
        "Ratio",
        "#SPARC",
        "Ratio",
        "Trans(s)",
        "Run(s)",
        "Ratio"
    );
    let _ = writeln!(out, "{}", "-".repeat(112));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<18} {:>5} {:>10} {:>10} {:>7} {:>7} {:>6.2} {:>7} {:>6.2} {:>10.6} {:>10.6} {:>7.4}",
            r.program,
            r.loc,
            r.native_bytes,
            r.llva_bytes,
            r.llva_insts,
            r.x86_insts,
            r.x86_ratio(),
            r.sparc_insts,
            r.sparc_ratio(),
            r.translate_time.as_secs_f64(),
            r.run_time.as_secs_f64(),
            r.translate_ratio(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_shapes_match_paper_claims() {
        // check the headline claims on a representative workload
        let w = llva_workloads::by_name("181.mcf").expect("mcf");
        let r = row_for(&w);
        // "virtual object code is comparable in size to native machine
        // code" and smaller for the SPARC comparison
        assert!(
            r.size_ratio() > 0.8,
            "native/LLVA size ratio {} too small",
            r.size_ratio()
        );
        // "virtual instructions expand to only 2-4 ordinary hardware
        // instructions on average" (we allow a slightly wider band)
        assert!(
            (1.5..=5.0).contains(&r.x86_ratio()),
            "x86 ratio {}",
            r.x86_ratio()
        );
        assert!(
            (1.5..=6.0).contains(&r.sparc_ratio()),
            "sparc ratio {}",
            r.sparc_ratio()
        );
        // translation is fast in absolute terms
        assert!(r.translate_time.as_secs_f64() < 1.0);
    }

    #[test]
    fn formatting_includes_all_programs() {
        let rows = vec![Row {
            program: "test".into(),
            loc: 10,
            native_bytes: 2000,
            llva_bytes: 1000,
            llva_insts: 100,
            x86_insts: 250,
            sparc_insts: 300,
            translate_time: Duration::from_micros(50),
            run_time: Duration::from_millis(10),
        }];
        let text = format_table(&rows);
        assert!(text.contains("test"));
        assert!(text.contains("2.50"));
        assert!(text.contains("3.00"));
    }
}
