//! Seeded generation of well-typed LLVA modules with real structure.
//!
//! Every generated module passes the verifier *by construction*: the
//! generator only ever emits dominance-correct SSA, phi nodes whose
//! incoming lists exactly match their block's predecessors, guarded
//! division/remainder (divisor forced odd, hence nonzero), and masked
//! shift amounts. Programs are total and deterministic: loops run a
//! constant trip count, the call graph is a DAG (helper `hN` may only
//! call helpers with a smaller `N`), and all memory traffic goes
//! through `alloca` slots or module globals that exist by
//! construction.
//!
//! The shapes exercised (one per [`Step`] variant):
//!
//! * straight-line arithmetic with guarded `div`/`rem` and masked
//!   `shl`/`shr`,
//! * compare → `cast bool to long` chains and width-changing
//!   `cast long → int/ubyte → long` chains,
//! * `select` lowered as a CFG diamond + `phi`,
//! * constant-trip-count loops (`phi` recurrences with a back edge),
//! * `mbr` multi-way branches joined by a 4-way `phi`,
//! * loads/stores through `alloca` slots, scalar globals, and a global
//!   array indexed via `getelementptr`,
//! * direct calls into the helper DAG.

use crate::rng::Rng;
use llva_core::builder::FunctionBuilder;
use llva_core::layout::TargetConfig;
use llva_core::module::{FuncId, GlobalId, Initializer, Module};
use llva_core::value::{Constant, ValueData, ValueId};

/// Tuning knobs for the generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of helper functions (callable from `f` and from
    /// later helpers).
    pub max_helpers: usize,
    /// Maximum number of steps per function body.
    pub max_steps: usize,
    /// Number of scalar `long` globals.
    pub num_globals: usize,
    /// Length of the global `long` array.
    pub array_len: u64,
    /// Number of `alloca` slots per function.
    pub num_slots: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_helpers: 3,
            max_steps: 22,
            num_globals: 3,
            array_len: 8,
            num_slots: 2,
        }
    }
}

/// A generated test case: the module, its entry point, and the
/// arguments every oracle stage is run with.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// The module (verifies by construction).
    pub module: Module,
    /// Entry function name (always `"f"`, signature `long(long, long)`).
    pub entry: String,
    /// Raw argument bits for the entry function.
    pub args: Vec<u64>,
}

/// Generates the test case for `seed`.
pub fn generate(seed: u64, cfg: &GenConfig) -> TestCase {
    let mut rng = Rng::new(seed ^ 0xC0F0_44A1_D1FF_5EED);
    let mut m = Module::new(format!("conform_{seed}"), TargetConfig::default());

    let long = m.types_mut().long();
    let mut globals = Vec::new();
    for i in 0..cfg.num_globals {
        let init = Constant::Int {
            ty: long,
            bits: rng.range(-100, 100) as u64,
        };
        globals.push(m.add_global(&format!("g{i}"), long, Initializer::Scalar(init), false));
    }
    let arr_ty = m.types_mut().array_of(long, cfg.array_len);
    let garr = m.add_global("garr", arr_ty, Initializer::Zero, false);

    let n_helpers = rng.index(cfg.max_helpers + 1);
    let mut helpers: Vec<FuncId> = Vec::new();
    for i in 0..n_helpers {
        let long = m.types_mut().long();
        let h = m.add_function(&format!("h{i}"), long, vec![long, long]);
        gen_function(&mut m, h, &mut rng, &helpers[..], &globals, garr, cfg);
        helpers.push(h);
    }
    let f = m.add_function("f", long, vec![long, long]);
    gen_function(&mut m, f, &mut rng, &helpers[..], &globals, garr, cfg);

    let args = vec![
        rng.range(-1000, 1000) as u64,
        if rng.chance(1, 4) {
            rng.next_u64()
        } else {
            rng.range(-1000, 1000) as u64
        },
    ];
    TestCase {
        module: m,
        entry: "f".to_string(),
        args,
    }
}

/// The step shapes; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Const,
    Bin,
    CmpCast,
    WidthCast,
    Select,
    Loop,
    Mbr,
    Slot,
    Global,
    Array,
    Call,
}

const STEPS: [Step; 11] = [
    Step::Const,
    Step::Bin,
    Step::CmpCast,
    Step::WidthCast,
    Step::Select,
    Step::Loop,
    Step::Mbr,
    Step::Slot,
    Step::Global,
    Step::Array,
    Step::Call,
];

fn gen_function(
    m: &mut Module,
    f: FuncId,
    rng: &mut Rng,
    callees: &[FuncId],
    globals: &[GlobalId],
    garr: GlobalId,
    cfg: &GenConfig,
) {
    let long = m.types_mut().long();
    let mut b = FunctionBuilder::new(m, f);
    let entry = b.block("entry");
    b.switch_to(entry);

    // `vals` holds long-typed values defined on the "spine": every one
    // dominates the current insertion point, because each step returns
    // control to a join block dominated by the block it started in.
    let mut vals: Vec<ValueId> = b.func().args().to_vec();
    let mut slots: Vec<ValueId> = Vec::new();
    for s in 0..cfg.num_slots {
        let slot = b.alloca(long);
        let init = vals[s % vals.len()];
        b.store(init, slot);
        slots.push(slot);
    }

    let mut label = 0usize;
    let mut fresh = move |prefix: &str| {
        label += 1;
        format!("{prefix}{label}")
    };

    let n_steps = 4 + rng.index(cfg.max_steps.saturating_sub(3).max(1));
    for _ in 0..n_steps {
        let pick = |rng: &mut Rng, vals: &[ValueId]| vals[rng.index(vals.len())];
        let step = STEPS[rng.index(STEPS.len())];
        match step {
            Step::Const => {
                let v = b.iconst(long, rng.range(-1000, 1000));
                vals.push(v);
            }
            Step::Bin => {
                let x = pick(rng, &vals);
                let y = pick(rng, &vals);
                let v = gen_binary(&mut b, rng, long, x, y);
                vals.push(v);
            }
            Step::CmpCast => {
                let x = pick(rng, &vals);
                let y = pick(rng, &vals);
                let c = match rng.index(6) {
                    0 => b.seteq(x, y),
                    1 => b.setne(x, y),
                    2 => b.setlt(x, y),
                    3 => b.setgt(x, y),
                    4 => b.setle(x, y),
                    _ => b.setge(x, y),
                };
                let v = b.cast(c, long);
                vals.push(v);
            }
            Step::WidthCast => {
                let x = pick(rng, &vals);
                let narrow = if rng.chance(1, 2) {
                    b.module().types_mut().int()
                } else {
                    b.module().types_mut().ubyte()
                };
                let t = b.cast(x, narrow);
                let v = b.cast(t, long);
                vals.push(v);
            }
            Step::Select => {
                // select(c, x, y) as a diamond + phi
                let cx = pick(rng, &vals);
                let cy = pick(rng, &vals);
                let x = pick(rng, &vals);
                let y = pick(rng, &vals);
                let c = b.setlt(cx, cy);
                let tb = b.block(&fresh("sel.t"));
                let eb = b.block(&fresh("sel.e"));
                let jb = b.block(&fresh("sel.j"));
                b.cond_br(c, tb, eb);
                b.switch_to(tb);
                b.br(jb);
                b.switch_to(eb);
                b.br(jb);
                b.switch_to(jb);
                let v = b.phi(long, vec![(x, tb), (y, eb)]);
                vals.push(v);
            }
            Step::Loop => {
                let v = gen_loop(&mut b, rng, long, &mut fresh, &vals);
                vals.push(v);
            }
            Step::Mbr => {
                let sel_src = pick(rng, &vals);
                let arms: Vec<ValueId> = (0..4).map(|_| pick(rng, &vals)).collect();
                let three = b.iconst(long, 3);
                let sel = b.and(sel_src, three);
                let c0 = b.block(&fresh("mbr.a"));
                let c1 = b.block(&fresh("mbr.b"));
                let c2 = b.block(&fresh("mbr.c"));
                let d = b.block(&fresh("mbr.d"));
                let jb = b.block(&fresh("mbr.j"));
                let k0 = b.iconst(long, 0);
                let k1 = b.iconst(long, 1);
                let k2 = b.iconst(long, 2);
                b.mbr(sel, d, vec![(k0, c0), (k1, c1), (k2, c2)]);
                for arm in [c0, c1, c2, d] {
                    b.switch_to(arm);
                    b.br(jb);
                }
                b.switch_to(jb);
                let incoming = [c0, c1, c2, d]
                    .into_iter()
                    .enumerate()
                    .map(|(i, arm)| (arms[i], arm))
                    .collect();
                let v = b.phi(long, incoming);
                vals.push(v);
            }
            Step::Slot => {
                if slots.is_empty() {
                    continue;
                }
                let slot = slots[rng.index(slots.len())];
                if rng.chance(1, 2) {
                    let x = pick(rng, &vals);
                    b.store(x, slot);
                } else {
                    let v = b.load(slot);
                    vals.push(v);
                }
            }
            Step::Global => {
                if globals.is_empty() {
                    continue;
                }
                let g = globals[rng.index(globals.len())];
                let addr = b.global_addr(g);
                if rng.chance(1, 2) {
                    let x = pick(rng, &vals);
                    b.store(x, addr);
                } else {
                    let v = b.load(addr);
                    vals.push(v);
                }
            }
            Step::Array => {
                let base = b.global_addr(garr);
                let idx = rng.index(cfg.array_len as usize) as i64;
                let p = b.gep_const(base, &[(0, false), (idx, false)]);
                if rng.chance(1, 2) {
                    let x = pick(rng, &vals);
                    b.store(x, p);
                } else {
                    let v = b.load(p);
                    vals.push(v);
                }
            }
            Step::Call => {
                if callees.is_empty() {
                    continue;
                }
                let callee = callees[rng.index(callees.len())];
                let x = pick(rng, &vals);
                let y = pick(rng, &vals);
                let v = b.call(callee, vec![x, y]).expect("helpers return long");
                vals.push(v);
            }
        }
    }

    let ret = *vals.last().expect("at least the arguments");
    b.ret(Some(ret));
}

/// A guarded binary operation: division/remainder force an odd (hence
/// nonzero) divisor, shifts mask the amount to `[0, 32)`.
fn gen_binary(
    b: &mut FunctionBuilder<'_>,
    rng: &mut Rng,
    long: llva_core::types::TypeId,
    x: ValueId,
    y: ValueId,
) -> ValueId {
    match rng.index(10) {
        0 => b.add(x, y),
        1 => b.sub(x, y),
        2 => b.mul(x, y),
        3 => {
            let one = b.iconst(long, 1);
            let nz = b.or(y, one);
            b.div(x, nz)
        }
        4 => {
            let one = b.iconst(long, 1);
            let nz = b.or(y, one);
            b.rem(x, nz)
        }
        5 => b.and(x, y),
        6 => b.or(x, y),
        7 => b.xor(x, y),
        8 => {
            let mask = b.iconst(long, 31);
            let sh = b.and(y, mask);
            b.shl(x, sh)
        }
        _ => {
            let mask = b.iconst(long, 31);
            let sh = b.and(y, mask);
            b.shr(x, sh)
        }
    }
}

/// A constant-trip-count accumulation loop:
///
/// ```text
/// pre:    br header
/// header: i   = phi [0, pre], [i+1, body]
///         acc = phi [init, pre], [acc', body]
///         br (i < trip), body, exit
/// body:   acc' = acc ⊕ step
///         br header
/// exit:   ... acc ...
/// ```
fn gen_loop(
    b: &mut FunctionBuilder<'_>,
    rng: &mut Rng,
    long: llva_core::types::TypeId,
    fresh: &mut impl FnMut(&str) -> String,
    vals: &[ValueId],
) -> ValueId {
    let trip_n = 1 + rng.range(0, 6);
    let init = vals[rng.index(vals.len())];
    let step_src = vals[rng.index(vals.len())];

    let zero = b.iconst(long, 0);
    let one = b.iconst(long, 1);
    let trip = b.iconst(long, trip_n);
    let pre = b.current_block();
    let header = b.block(&fresh("loop.h"));
    let body = b.block(&fresh("loop.b"));
    let exit = b.block(&fresh("loop.x"));
    b.br(header);

    b.switch_to(header);
    // back-edge operands are placeholders until the body exists
    let i_phi = b.phi(long, vec![(zero, pre), (zero, body)]);
    let acc_phi = b.phi(long, vec![(init, pre), (init, body)]);
    let c = b.setlt(i_phi, trip);
    b.cond_br(c, body, exit);

    b.switch_to(body);
    let acc_next = match rng.index(4) {
        0 => b.add(acc_phi, step_src),
        1 => b.xor(acc_phi, step_src),
        2 => b.sub(acc_phi, step_src),
        _ => {
            let m = b.mul(acc_phi, step_src);
            let c3 = b.iconst(long, 1021);
            b.rem(m, c3)
        }
    };
    let i_next = b.add(i_phi, one);
    b.br(header);

    // patch the back-edge phi operands
    patch_phi_operand(b, i_phi, 1, i_next);
    patch_phi_operand(b, acc_phi, 1, acc_next);

    b.switch_to(exit);
    acc_phi
}

/// Rewrites incoming operand `idx` of the phi that defines `phi_value`.
fn patch_phi_operand(b: &mut FunctionBuilder<'_>, phi_value: ValueId, idx: usize, v: ValueId) {
    let inst = match *b.func().value(phi_value) {
        ValueData::Inst { inst, .. } => inst,
        _ => panic!("phi value is not an instruction result"),
    };
    b.func_mut().inst_mut(inst).operands_mut()[idx] = v;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_modules_verify() {
        let cfg = GenConfig::default();
        for seed in 0..64 {
            let tc = generate(seed, &cfg);
            llva_core::verifier::verify_module(&tc.module)
                .unwrap_or_else(|e| panic!("seed {seed}: generated module fails to verify:\n{e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate(12345, &cfg);
        let b = generate(12345, &cfg);
        assert_eq!(
            llva_core::printer::print_module(&a.module),
            llva_core::printer::print_module(&b.module)
        );
        assert_eq!(a.args, b.args);
    }

    #[test]
    fn structure_is_present_somewhere_in_the_seed_space() {
        // across a modest seed range we must see multi-block CFGs,
        // loops (back edges), phis, memory traffic, and calls
        let cfg = GenConfig::default();
        let (mut multi_block, mut has_phi, mut has_mem, mut has_call) = (false, false, false, false);
        for seed in 0..32 {
            let tc = generate(seed, &cfg);
            let text = llva_core::printer::print_module(&tc.module);
            for (_, func) in tc.module.functions() {
                if func.num_blocks() > 1 {
                    multi_block = true;
                }
            }
            has_phi |= text.contains("phi");
            has_mem |= text.contains("load") && text.contains("store");
            has_call |= text.contains("call");
        }
        assert!(multi_block && has_phi && has_mem && has_call);
    }
}
