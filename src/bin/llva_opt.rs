//! `llva-opt` — run optimization pipelines over virtual object code.
//!
//! Usage: `llva-opt input.{ll,bc} [-o output.bc] [--pipeline standard|linktime]
//!         [--entry NAME] [--print] [--stats]`

use std::process::exit;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut output = None;
    let mut pipeline = "standard".to_string();
    let mut entry = "main".to_string();
    let mut print = false;
    let mut stats = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => output = it.next().cloned(),
            "--pipeline" => pipeline = it.next().cloned().unwrap_or_default(),
            "--entry" => entry = it.next().cloned().unwrap_or_default(),
            "--print" => print = true,
            "--stats" => stats = true,
            "-h" | "--help" => {
                eprintln!(
                    "usage: llva-opt input [-o out.bc] [--pipeline standard|linktime] \
                     [--entry NAME] [--print] [--stats]"
                );
                exit(0);
            }
            other => input = Some(other.to_string()),
        }
    }
    let Some(input) = input else {
        eprintln!("usage: llva-opt input [-o out.bc]");
        exit(1);
    };
    let bytes = std::fs::read(&input).unwrap_or_else(|e| {
        eprintln!("llva-opt: cannot read {input}: {e}");
        exit(1);
    });
    let mut module = if bytes.starts_with(llva::core::bytecode::MAGIC) {
        llva::core::bytecode::decode_module(&bytes).unwrap_or_else(|e| {
            eprintln!("llva-opt: {e}");
            exit(1);
        })
    } else {
        llva::core::parser::parse_module(&String::from_utf8_lossy(&bytes)).unwrap_or_else(|e| {
            eprintln!("llva-opt: {e}");
            exit(1);
        })
    };
    let before = module.total_insts();
    let mut pm = match pipeline.as_str() {
        "standard" => llva::opt::standard_pipeline(),
        "linktime" => llva::opt::link_time_pipeline(&[entry.as_str()]),
        other => {
            eprintln!("llva-opt: unknown pipeline '{other}' (standard|linktime)");
            exit(1);
        }
    };
    let pass_stats = pm.run(&mut module);
    if let Err(e) = llva::core::verifier::verify_module(&module) {
        eprintln!("llva-opt: INTERNAL ERROR — output does not verify:\n{e}");
        exit(2);
    }
    if stats {
        for s in &pass_stats {
            eprintln!(
                "  {:<12} {:<8} {:?}",
                s.name,
                if s.changed { "changed" } else { "-" },
                s.duration
            );
        }
        eprintln!(
            "llva-opt: {} -> {} LLVA instructions",
            before,
            module.total_insts()
        );
    }
    if print {
        print!("{}", llva::core::printer::print_module(&module));
    }
    if let Some(out) = output {
        let bytes = llva::core::bytecode::encode_module(&module);
        if let Err(e) = std::fs::write(&out, bytes) {
            eprintln!("llva-opt: cannot write {out}: {e}");
            exit(1);
        }
    }
}
