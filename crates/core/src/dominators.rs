//! Dominator analysis over the explicit CFG.
//!
//! The verifier uses dominance to check the SSA property ("defs dominate
//! uses"), and `mem2reg` uses dominance frontiers to place `phi` nodes.
//! The implementation is the Cooper–Harvey–Kennedy iterative algorithm
//! over a reverse-postorder numbering — simple, and fast in practice.

use crate::function::{BlockId, Function};
use std::collections::HashMap;

/// Dominator tree plus dominance frontiers for one function.
#[derive(Debug, Clone)]
pub struct DomTree {
    rpo: Vec<BlockId>,
    rpo_index: HashMap<BlockId, usize>,
    idom: HashMap<BlockId, BlockId>,
    children: HashMap<BlockId, Vec<BlockId>>,
    frontier: HashMap<BlockId, Vec<BlockId>>,
}

impl DomTree {
    /// Computes dominators for `func`.
    ///
    /// Blocks unreachable from the entry are excluded from the tree (they
    /// have no RPO number and no immediate dominator).
    pub fn compute(func: &Function) -> DomTree {
        let rpo = reverse_postorder(func);
        let rpo_index: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();

        let preds_all = func.predecessors();
        // Immediate dominators, CHK-style. idom[entry] = entry.
        let entry = rpo[0];
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(entry, entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let preds: Vec<BlockId> = preds_all
                    .get(&b)
                    .map(|ps| {
                        ps.iter()
                            .copied()
                            .filter(|p| rpo_index.contains_key(p))
                            .collect()
                    })
                    .unwrap_or_default();
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds {
                    if !idom.contains_key(&p) {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }

        let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for (&b, &d) in &idom {
            if b != d {
                children.entry(d).or_default().push(b);
            }
        }
        for c in children.values_mut() {
            c.sort();
        }

        // Dominance frontiers (Cytron et al. via the CHK formulation).
        let mut frontier: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in &rpo {
            let preds: Vec<BlockId> = preds_all
                .get(&b)
                .map(|ps| {
                    ps.iter()
                        .copied()
                        .filter(|p| idom.contains_key(p))
                        .collect()
                })
                .unwrap_or_default();
            if preds.len() >= 2 {
                for &p in &preds {
                    let mut runner = p;
                    while runner != idom[&b] {
                        let df = frontier.entry(runner).or_default();
                        if !df.contains(&b) {
                            df.push(b);
                        }
                        runner = idom[&runner];
                    }
                }
            }
        }

        DomTree {
            rpo,
            rpo_index,
            idom,
            children,
            frontier,
        }
    }

    /// Blocks in reverse postorder (entry first).
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Whether `block` is reachable from the entry.
    pub fn is_reachable(&self, block: BlockId) -> bool {
        self.rpo_index.contains_key(&block)
    }

    /// The immediate dominator of `block` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        let d = *self.idom.get(&block)?;
        (d != block).then_some(d)
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = self.idom[&cur];
            if next == cur {
                return false; // reached entry
            }
            cur = next;
        }
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Children of `block` in the dominator tree.
    pub fn children(&self, block: BlockId) -> &[BlockId] {
        self.children.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The dominance frontier of `block`.
    pub fn frontier(&self, block: BlockId) -> &[BlockId] {
        self.frontier.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }
}

fn intersect(
    idom: &HashMap<BlockId, BlockId>,
    rpo_index: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

/// Reverse-postorder DFS from the entry block.
pub fn reverse_postorder(func: &Function) -> Vec<BlockId> {
    let entry = func.entry_block();
    let mut visited: HashMap<BlockId, bool> = HashMap::new();
    let mut postorder = Vec::new();
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    visited.insert(entry, true);
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = func.successors(b);
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if !visited.get(&s).copied().unwrap_or(false) {
                visited.insert(s, true);
                stack.push((s, 0));
            }
        } else {
            postorder.push(b);
            stack.pop();
        }
    }
    postorder.reverse();
    postorder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::layout::TargetConfig;
    use crate::module::Module;

    /// Builds the classic diamond:  entry -> {t, e} -> join -> exit
    fn diamond() -> (Module, crate::module::FuncId, Vec<BlockId>) {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let t = b.block("t");
        let e = b.block("e");
        let join = b.block("join");
        b.switch_to(entry);
        let x = b.func().args()[0];
        let zero = b.iconst(int, 0);
        let c = b.setgt(x, zero);
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(join);
        b.switch_to(e);
        b.br(join);
        b.switch_to(join);
        b.ret(Some(x));
        (m, f, vec![entry, t, e, join])
    }

    #[test]
    fn diamond_dominators() {
        let (m, f, blocks) = diamond();
        let dom = DomTree::compute(m.function(f));
        let [entry, t, e, join] = blocks[..] else { unreachable!() };
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(t), Some(entry));
        assert_eq!(dom.idom(e), Some(entry));
        assert_eq!(dom.idom(join), Some(entry)); // join has two preds
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(t, join));
        assert!(dom.dominates(join, join));
        assert!(dom.strictly_dominates(entry, t));
        assert!(!dom.strictly_dominates(t, t));
    }

    #[test]
    fn diamond_frontiers() {
        let (m, f, blocks) = diamond();
        let dom = DomTree::compute(m.function(f));
        let [_, t, e, join] = blocks[..] else { unreachable!() };
        assert_eq!(dom.frontier(t), &[join]);
        assert_eq!(dom.frontier(e), &[join]);
        assert!(dom.frontier(join).is_empty());
    }

    #[test]
    fn rpo_starts_at_entry() {
        let (m, f, blocks) = diamond();
        let dom = DomTree::compute(m.function(f));
        assert_eq!(dom.reverse_postorder()[0], blocks[0]);
        assert_eq!(dom.reverse_postorder().len(), 4);
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let dead = b.block("dead");
        b.switch_to(entry);
        let x = b.func().args()[0];
        b.ret(Some(x));
        b.switch_to(dead);
        b.ret(Some(x));
        let dom = DomTree::compute(m.function(f));
        assert!(dom.is_reachable(entry));
        assert!(!dom.is_reachable(dead));
        assert!(!dom.dominates(entry, dead));
    }

    #[test]
    fn loop_dominators() {
        // entry -> header -> body -> header (back edge), header -> exit
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let x = b.func().args()[0];
        let zero = b.iconst(int, 0);
        let c = b.setgt(x, zero);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(x));
        let dom = DomTree::compute(m.function(f));
        assert_eq!(dom.idom(header), Some(entry));
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
        // header is in its own body's frontier (back edge)
        assert!(dom.frontier(body).contains(&header));
        assert!(dom.frontier(header).contains(&header));
    }
}
