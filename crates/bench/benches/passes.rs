//! Optimization-pass cost (paper §5.1: the representation supports
//! classical and interprocedural optimization; here we also measure
//! that it supports them *quickly*, which matters for install-time and
//! idle-time use, §4.2).

use criterion::{criterion_group, criterion_main, Criterion};
use llva_core::layout::TargetConfig;
use llva_opt::ModulePass;

fn module_for(name: &str) -> llva_core::module::Module {
    llva_workloads::by_name(name)
        .expect("workload")
        .compile(TargetConfig::default())
}

fn bench_individual_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("passes");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(30);
    let source = "300.twolf";
    group.bench_function("mem2reg", |b| {
        b.iter_batched(
            || module_for(source),
            |mut m| {
                let mut p = llva_opt::mem2reg::Mem2Reg::new();
                p.run(&mut m);
                m
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("constfold", |b| {
        b.iter_batched(
            || module_for(source),
            |mut m| {
                let mut p = llva_opt::constfold::ConstFold::new();
                p.run(&mut m);
                m
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("gvn", |b| {
        b.iter_batched(
            || {
                let mut m = module_for(source);
                let mut p = llva_opt::mem2reg::Mem2Reg::new();
                p.run(&mut m);
                m
            },
            |mut m| {
                let mut p = llva_opt::gvn::Gvn::new();
                p.run(&mut m);
                m
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("dce", |b| {
        b.iter_batched(
            || module_for(source),
            |mut m| {
                let mut p = llva_opt::dce::Dce::new();
                p.run(&mut m);
                m
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipelines");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for name in ["181.mcf", "255.vortex"] {
        group.bench_function(format!("standard/{name}"), |b| {
            b.iter_batched(
                || module_for(name),
                |mut m| {
                    let mut pm = llva_opt::standard_pipeline();
                    pm.run(&mut m);
                    m
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("link_time/{name}"), |b| {
            b.iter_batched(
                || module_for(name),
                |mut m| {
                    let mut pm = llva_opt::link_time_pipeline(&["main"]);
                    pm.run(&mut m);
                    m
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_analyses(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyses");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(30);
    let m = module_for("255.vortex");
    group.bench_function("callgraph", |b| {
        b.iter(|| llva_opt::callgraph::CallGraph::build(&m));
    });
    let fid = m.function_by_name("main").expect("main");
    group.bench_function("alias_analysis", |b| {
        b.iter(|| llva_opt::alias::AliasAnalysis::compute(&m, fid));
    });
    group.bench_function("dominators", |b| {
        b.iter(|| llva_core::dominators::DomTree::compute(m.function(fid)));
    });
    group.bench_function("verifier", |b| {
        b.iter(|| llva_core::verifier::verify_module(&m));
    });
    group.finish();
}

criterion_group!(benches, bench_individual_passes, bench_pipelines, bench_analyses);
criterion_main!(benches);
