//! Alias analysis over typed LLVA pointers.
//!
//! The paper argues the V-ISA's type, control-flow and SSA information
//! "enable sophisticated alias analysis algorithms in the translator"
//! (§3.3) and demonstrates field-sensitive analyses (§5.1). This module
//! implements a pragmatic subset — a local points-to-root analysis with
//! field sensitivity:
//!
//! * two distinct `alloca`s never alias,
//! * an `alloca` that never escapes never aliases a global or argument
//!   pointer,
//! * two distinct globals never alias,
//! * `getelementptr`s off the same base with different constant index
//!   paths never alias,
//! * pointers to differently-sized/typed scalars are assumed not to
//!   alias (strict typed-memory model: the only way to reinterpret
//!   memory is an explicit `cast`, which conservatively escapes).

use llva_core::function::Function;
use llva_core::instruction::{InstId, Opcode};
use llva_core::module::Module;
use llva_core::value::{Constant, ValueData, ValueId};
use std::collections::{HashMap, HashSet};

/// The abstract root object a pointer points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Root {
    /// A specific stack allocation.
    Alloca(InstId),
    /// A specific global variable.
    Global(llva_core::module::GlobalId),
    /// A pointer argument or any pointer of unknown provenance.
    Unknown,
}

/// Answer of an alias query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AliasResult {
    /// The two pointers definitely address disjoint memory.
    NoAlias,
    /// The two pointers may address overlapping memory.
    MayAlias,
    /// The two pointers are provably the same address.
    MustAlias,
}

/// Per-function alias information.
#[derive(Debug)]
pub struct AliasAnalysis {
    roots: HashMap<ValueId, Root>,
    escaped: HashSet<InstId>,
    /// Constant GEP paths: value -> (base value, path of constant indexes)
    gep_paths: HashMap<ValueId, (ValueId, Vec<Option<u64>>)>,
}

impl AliasAnalysis {
    /// Computes alias information for `func`.
    pub fn compute(module: &Module, fid: llva_core::module::FuncId) -> AliasAnalysis {
        let func = module.function(fid);
        let mut roots: HashMap<ValueId, Root> = HashMap::new();
        let mut gep_paths = HashMap::new();
        let mut escaped: HashSet<InstId> = HashSet::new();

        // Seed roots.
        for (_, inst_id) in func.inst_iter() {
            let inst = func.inst(inst_id);
            if inst.opcode() == Opcode::Alloca {
                if let Some(v) = func.inst_result(inst_id) {
                    roots.insert(v, Root::Alloca(inst_id));
                }
            }
        }
        // Propagate through geps/phis/casts to a fixpoint.
        let mut changed = true;
        while changed {
            changed = false;
            for (_, inst_id) in func.inst_iter() {
                let inst = func.inst(inst_id);
                let Some(result) = func.inst_result(inst_id) else {
                    continue;
                };
                let new_root = match inst.opcode() {
                    Opcode::GetElementPtr => {
                        let base = inst.operands()[0];
                        let path: Vec<Option<u64>> = inst.operands()[1..]
                            .iter()
                            .map(|&i| func.value_as_const(i).and_then(Constant::as_int_bits))
                            .collect();
                        gep_paths.insert(result, (base, path));
                        Some(root_of_value(func, &roots, base))
                    }
                    Opcode::Cast => Some(root_of_value(func, &roots, inst.operands()[0])),
                    Opcode::Phi => {
                        let mut r: Option<Root> = None;
                        for &v in inst.operands() {
                            let vr = root_of_value(func, &roots, v);
                            r = Some(match r {
                                None => vr,
                                Some(prev) if prev == vr => vr,
                                Some(_) => Root::Unknown,
                            });
                        }
                        r
                    }
                    _ => None,
                };
                if let Some(nr) = new_root {
                    if roots.get(&result) != Some(&nr) {
                        roots.insert(result, nr);
                        changed = true;
                    }
                }
            }
        }
        // Escape analysis: an alloca escapes if its value (or a derived
        // pointer) is passed to a call/invoke, stored *as a value*, or
        // cast to a non-pointer.
        for (_, inst_id) in func.inst_iter() {
            let inst = func.inst(inst_id);
            let escaping_ops: Vec<ValueId> = match inst.opcode() {
                Opcode::Call | Opcode::Invoke => inst.operands()[1..].to_vec(),
                Opcode::Store => vec![inst.operands()[0]],
                Opcode::Ret => inst.operands().to_vec(),
                _ => vec![],
            };
            for v in escaping_ops {
                if let Root::Alloca(a) = root_of_value(func, &roots, v) {
                    escaped.insert(a);
                }
            }
        }
        AliasAnalysis {
            roots,
            escaped,
            gep_paths,
        }
    }

    /// The abstract root of pointer `v`.
    pub fn root(&self, func: &Function, v: ValueId) -> Root {
        root_of_value(func, &self.roots, v)
    }

    /// Whether the alloca behind `root` escapes the function.
    pub fn is_escaped(&self, root: Root) -> bool {
        match root {
            Root::Alloca(a) => self.escaped.contains(&a),
            _ => true,
        }
    }

    /// Queries whether pointers `a` and `b` may alias.
    pub fn alias(&self, func: &Function, a: ValueId, b: ValueId) -> AliasResult {
        if a == b {
            return AliasResult::MustAlias;
        }
        let ra = self.root(func, a);
        let rb = self.root(func, b);
        match (ra, rb) {
            (Root::Alloca(x), Root::Alloca(y)) if x != y => return AliasResult::NoAlias,
            (Root::Global(x), Root::Global(y)) if x != y => return AliasResult::NoAlias,
            // non-escaping alloca vs global or unknown pointer
            (Root::Alloca(x), Root::Global(_) | Root::Unknown)
            | (Root::Global(_) | Root::Unknown, Root::Alloca(x))
                if !self.escaped.contains(&x) =>
            {
                return AliasResult::NoAlias
            }
            _ => {}
        }
        // Field sensitivity: same base, fully-constant differing paths.
        if let (Some((ba, pa)), Some((bb, pb))) = (self.gep_paths.get(&a), self.gep_paths.get(&b))
        {
            if ba == bb && pa.len() == pb.len() {
                let all_const = pa.iter().chain(pb.iter()).all(Option::is_some);
                if all_const {
                    return if pa == pb {
                        AliasResult::MustAlias
                    } else {
                        AliasResult::NoAlias
                    };
                }
            }
        }
        AliasResult::MayAlias
    }
}

fn root_of_value(func: &Function, roots: &HashMap<ValueId, Root>, v: ValueId) -> Root {
    if let Some(&r) = roots.get(&v) {
        return r;
    }
    match func.value(v) {
        ValueData::Const(Constant::GlobalAddr { global, .. }) => Root::Global(*global),
        _ => Root::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_core::builder::FunctionBuilder;
    use llva_core::layout::TargetConfig;
    use llva_core::module::Initializer;

    #[test]
    fn distinct_allocas_do_not_alias() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let p = b.alloca(int);
        let q = b.alloca(int);
        let zero = b.iconst(int, 0);
        b.store(zero, p);
        b.store(zero, q);
        let v = b.load(p);
        b.ret(Some(v));
        let aa = AliasAnalysis::compute(&m, f);
        let func = m.function(f);
        assert_eq!(aa.alias(func, p, q), AliasResult::NoAlias);
        assert_eq!(aa.alias(func, p, p), AliasResult::MustAlias);
    }

    #[test]
    fn alloca_vs_global_no_alias_when_not_escaped() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let g = m.add_global("g", int, Initializer::Zero, false);
        let f = m.add_function("f", int, vec![]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let p = b.alloca(int);
        let gp = b.global_addr(g);
        let zero = b.iconst(int, 0);
        b.store(zero, p);
        let v = b.load(gp);
        b.ret(Some(v));
        let aa = AliasAnalysis::compute(&m, f);
        let func = m.function(f);
        assert_eq!(aa.alias(func, p, gp), AliasResult::NoAlias);
    }

    #[test]
    fn escaped_alloca_may_alias_unknown() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let intp = m.types_mut().pointer_to(int);
        let void = m.types_mut().void();
        let callee = m.add_function("taker", void, vec![intp]);
        let f = m.add_function("f", int, vec![intp]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let arg_ptr = b.func().args()[0];
        let p = b.alloca(int);
        b.call(callee, vec![p]); // escapes
        let v = b.load(arg_ptr);
        b.ret(Some(v));
        let aa = AliasAnalysis::compute(&m, f);
        let func = m.function(f);
        assert_eq!(aa.alias(func, p, arg_ptr), AliasResult::MayAlias);
    }

    #[test]
    fn field_sensitive_geps() {
        let src = r#"
%S = type { int, int }

int %f(%S* %p) {
entry:
    %a = getelementptr %S* %p, long 0, ubyte 0
    %b = getelementptr %S* %p, long 0, ubyte 1
    %c = getelementptr %S* %p, long 0, ubyte 1
    %va = load int* %a
    %vb = load int* %b
    %vc = load int* %c
    %s1 = add int %va, %vb
    %s2 = add int %s1, %vc
    ret int %s2
}
"#;
        let m = llva_core::parser::parse_module(src).expect("parses");
        let fid = m.function_by_name("f").expect("f");
        let aa = AliasAnalysis::compute(&m, fid);
        let func = m.function(fid);
        // find the three gep results by scanning
        let geps: Vec<ValueId> = func
            .inst_iter()
            .filter(|&(_, i)| func.inst(i).opcode() == Opcode::GetElementPtr)
            .filter_map(|(_, i)| func.inst_result(i))
            .collect();
        assert_eq!(geps.len(), 3);
        assert_eq!(aa.alias(func, geps[0], geps[1]), AliasResult::NoAlias);
        assert_eq!(aa.alias(func, geps[1], geps[2]), AliasResult::MustAlias);
    }

    #[test]
    fn variable_index_is_conservative() {
        let src = r#"
int %f(int* %p, long %i) {
entry:
    %a = getelementptr int* %p, long %i
    %b = getelementptr int* %p, long 0
    %va = load int* %a
    %vb = load int* %b
    %s = add int %va, %vb
    ret int %s
}
"#;
        let m = llva_core::parser::parse_module(src).expect("parses");
        let fid = m.function_by_name("f").expect("f");
        let aa = AliasAnalysis::compute(&m, fid);
        let func = m.function(fid);
        let geps: Vec<ValueId> = func
            .inst_iter()
            .filter(|&(_, i)| func.inst(i).opcode() == Opcode::GetElementPtr)
            .filter_map(|(_, i)| func.inst_result(i))
            .collect();
        assert_eq!(aa.alias(func, geps[0], geps[1]), AliasResult::MayAlias);
    }
}
