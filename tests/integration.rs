//! Cross-crate integration tests: whole-system scenarios that span the
//! front end, optimizer, bytecode, execution manager, storage, and
//! both simulated processors.

use llva::core::layout::TargetConfig;
use llva::engine::llee::{ExecutionManager, TargetIsa};
use llva::engine::storage::{MemStorage, SharedStorage, Storage};
use llva::engine::Interpreter;

/// The full paper pipeline: C-like source → LLVA → link-time opt →
/// virtual object code → decode → JIT → native run, all consistent.
#[test]
fn whole_paper_pipeline() {
    let src = r#"
int gcd(int a, int b) {
    while (b != 0) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}

int main() {
    int acc = 0;
    for (int i = 1; i <= 60; i++) {
        acc += gcd(i * 7, 36);
    }
    return acc;
}
"#;
    // front end
    let mut m = llva::minic::compile(src, "pipeline", TargetConfig::default()).expect("compiles");
    llva::core::verifier::verify_module(&m).expect("verifies");
    let reference = Interpreter::new(&m).run("main", &[]).expect("interprets");

    // link-time optimization on the V-ISA
    let mut pm = llva::opt::link_time_pipeline(&["main"]);
    pm.verify_after_each(true);
    pm.run(&mut m);

    // persist as virtual object code, reload
    let bytes = llva::core::bytecode::encode_module(&m);
    let m = llva::core::bytecode::decode_module(&bytes).expect("decodes");
    llva::core::verifier::verify_module(&m).expect("decoded module verifies");

    // execute on all three processors through the execution manager
    for isa in TargetIsa::ALL {
        let m = llva::core::bytecode::decode_module(&bytes).expect("decodes");
        let mut mgr = ExecutionManager::new(m, isa);
        assert_eq!(mgr.run("main", &[]).expect("runs").value, reference, "{isa}");
    }
}

/// The storage API lets a second "boot" of the same program skip the
/// JIT entirely; a third boot of a *changed* program does not reuse
/// stale code.
#[test]
fn cache_lifecycle_across_boots() {
    let storage = SharedStorage::new(MemStorage::new());
    let src_v1 = "int main() { int s = 0; for (int i = 0; i < 50; i++) s += i; return s; }";
    let src_v2 = "int main() { int s = 1; for (int i = 0; i < 50; i++) s += i; return s; }";
    let compile = |s: &str| llva::minic::compile(s, "boot", TargetConfig::default()).expect("ok");

    let mut boot1 = ExecutionManager::new(compile(src_v1), TargetIsa::X86);
    boot1.set_storage(Box::new(storage.clone()), "boot");
    assert_eq!(boot1.run("main", &[]).expect("runs").value, 1225);
    assert!(boot1.stats().functions_translated > 0);

    let mut boot2 = ExecutionManager::new(compile(src_v1), TargetIsa::X86);
    boot2.set_storage(Box::new(storage.clone()), "boot");
    assert_eq!(boot2.run("main", &[]).expect("runs").value, 1225);
    assert_eq!(boot2.stats().functions_translated, 0);
    assert!(boot2.stats().cache_hits > 0);

    let mut boot3 = ExecutionManager::new(compile(src_v2), TargetIsa::X86);
    boot3.set_storage(Box::new(storage.clone()), "boot");
    assert_eq!(boot3.run("main", &[]).expect("runs").value, 1226);
    assert!(boot3.stats().functions_translated > 0, "stale cache rejected");
    assert!(storage.cache_size("boot").unwrap_or(0) > 0);
}

/// Profiling + trace formation + reoptimization preserve results while
/// reducing simulated cycles on a call-heavy loop.
#[test]
fn trace_reoptimization_end_to_end() {
    let src = r#"
int f(int x) { return x * 2 + 1; }
int main() {
    int acc = 0;
    for (int i = 0; i < 500; i++) acc += f(i);
    return acc;
}
"#;
    let mut instrumented =
        llva::minic::compile(src, "traced", TargetConfig::default()).expect("compiles");
    let map = llva::engine::profile::instrument(&mut instrumented);
    let mut mgr = ExecutionManager::new(instrumented, TargetIsa::X86);
    let expected = mgr.run("main", &[]).expect("runs").value;
    let counts = llva::engine::profile::read_counters(&mgr, &map);

    let mut clean = llva::minic::compile(src, "traced", TargetConfig::default()).expect("compiles");
    let cache = llva::engine::trace::form_traces(&clean, &map, &counts, 100, 16);
    assert!(!cache.is_empty());
    assert!(cache.traces().iter().any(|t| t.cross_procedure));

    let cycles = |m: &llva::core::module::Module| {
        let mut mgr = ExecutionManager::new(m.clone(), TargetIsa::X86);
        let out = mgr.run("main", &[]).expect("runs");
        (out.value, mgr.exec_stats().cycles)
    };
    let (v0, c0) = cycles(&clean);
    assert_eq!(v0, expected);
    llva::engine::trace::reoptimize(&mut clean, &cache);
    let (v1, c1) = cycles(&clean);
    assert_eq!(v1, expected, "reoptimization preserves results");
    assert!(c1 < c0, "reoptimization reduced cycles: {c0} -> {c1}");
}

/// Retargeting: the same virtual object code runs with 32-bit pointers
/// (little-endian) and 64-bit pointers (big-endian), exercising §3.2's
/// portability argument for type-safe programs.
#[test]
fn object_code_portability_across_targets() {
    let src = r#"
struct Cell { int v; struct Cell* next; };
int main() {
    struct Cell* head = (struct Cell*)0;
    for (int i = 1; i <= 7; i++) {
        struct Cell* c = (struct Cell*)malloc(sizeof(struct Cell));
        c->v = i * i;
        c->next = head;
        head = c;
    }
    int s = 0;
    while (head) { s += head->v; head = head->next; }
    return s;
}
"#;
    // NOTE: sizeof() bakes the target in, so compile per-target — this
    // is exactly the pointer-size exposure the paper describes for
    // non-type-safe code (§3.2).
    let mut results = Vec::new();
    for isa in TargetIsa::ALL {
        let target = match isa {
            TargetIsa::X86 => TargetConfig::ia32(),
            TargetIsa::Sparc => TargetConfig::sparc_v9(),
            TargetIsa::Riscv => TargetConfig::riscv64(),
        };
        let m = llva::minic::compile(src, "portable", target).expect("compiles");
        let mut mgr = ExecutionManager::new(m, isa);
        results.push(mgr.run("main", &[]).expect("runs").value);
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
    assert_eq!(results[0], (1..=7).map(|i| i * i).sum::<u64>());
}

/// The SEC side of §3.4: new code added at run time (a new function
/// installed in the module) is translatable and callable.
#[test]
fn self_extending_code() {
    let src = "int main() { return 1; }";
    let m = llva::minic::compile(src, "sec", TargetConfig::default()).expect("compiles");
    let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
    assert_eq!(mgr.run("main", &[]).expect("runs").value, 1);
    // "main" is rewritten to call newly added code — both changes take
    // effect on the next invocation (§3.4's constrained model)
    mgr.modify_function("main", |m, fid| {
        let int = m.types_mut().int();
        let newf = m.add_function("added_later", int, vec![int]);
        {
            let mut b = llva::core::builder::FunctionBuilder::new(m, newf);
            let e = b.block("entry");
            b.switch_to(e);
            let x = b.func().args()[0];
            let t = b.iconst(int, 41);
            let s = b.add(x, t);
            b.ret(Some(s));
        }
        m.discard_function_body(fid);
        let mut b = llva::core::builder::FunctionBuilder::new(m, fid);
        let e = b.block("entry");
        b.switch_to(e);
        let one = b.iconst(int, 1);
        let r = b.call(newf, vec![one]).expect("non-void");
        b.ret(Some(r));
    });
    assert_eq!(mgr.run("main", &[]).expect("runs").value, 42);
}

/// Differential check of trap behavior: all three executors deliver
/// the same precise trap kind for the same bad program.
#[test]
fn traps_agree_across_executors() {
    let src = r#"
int main(int idx) {
    int a[4];
    for (int i = 0; i < 4; i++) a[i] = i;
    int* p = (int*)0;
    if (idx > 100) p = a;
    return *p;
}
"#;
    let m = llva::minic::compile(src, "trapper", TargetConfig::default()).expect("compiles");
    let mut interp = Interpreter::new(&m);
    let i_err = interp.run("main", &[0]).expect_err("null deref traps");
    let llva::engine::InterpError::Trap(t) = i_err else {
        panic!("expected trap")
    };
    assert_eq!(t.kind, llva::machine::TrapKind::MemoryFault);
    for isa in TargetIsa::ALL {
        let m = llva::minic::compile(src, "trapper", TargetConfig::default()).expect("compiles");
        let mut mgr = ExecutionManager::new(m, isa);
        match mgr.run("main", &[0]) {
            Err(llva::engine::llee::EngineError::Trapped(t)) => {
                assert_eq!(t.kind, llva::machine::TrapKind::MemoryFault, "{isa}");
            }
            other => panic!("{isa}: expected memory fault, got {other:?}"),
        }
    }
}

/// Console I/O through intrinsics is identical everywhere.
#[test]
fn io_identical_across_executors() {
    let src = r#"
void print_int(int v) {
    if (v >= 10) print_int(v / 10);
    putchar('0' + v % 10);
}
int main() {
    print_int(31337);
    putchar('\n');
    return 0;
}
"#;
    let m = llva::minic::compile(src, "io", TargetConfig::default()).expect("compiles");
    let mut interp = Interpreter::new(&m);
    interp.run("main", &[]).expect("runs");
    assert_eq!(interp.env.stdout_string(), "31337\n");
    for isa in TargetIsa::ALL {
        let m = llva::minic::compile(src, "io", TargetConfig::default()).expect("compiles");
        let mut mgr = ExecutionManager::new(m, isa);
        mgr.run("main", &[]).expect("runs");
        assert_eq!(mgr.env.stdout_string(), "31337\n", "{isa}");
    }
}
