//! The localhost TCP front-end.
//!
//! One listener serves two protocols on the same port:
//!
//! * the length-framed binary protocol ([`crate::proto`]) for
//!   module-load and call traffic, and
//! * plain HTTP `GET /metrics` — the first bytes of a connection are
//!   peeked, and anything starting with `GET ` is answered as a
//!   one-shot HTTP scrape (`curl http://addr/metrics` works against
//!   the same port the binary clients use).
//!
//! Connections are thread-per-connection: the real concurrency story
//! lives in [`crate::service`] (per-tenant executors and bounded
//! queues); a connection thread is just a thin codec loop, and a
//! malformed or hostile peer can only hurt its own connection.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::thread::JoinHandle;

use crate::proto::{read_frame, write_frame, Request, Response};
use crate::quota::{ServeError, TenantQuota};
use crate::service::{CallResult, ExecService};
use llva_engine::supervisor::TierOutcome;

/// The TCP server: a listener plus the service it fronts.
pub struct Server {
    service: ExecService,
    listener: TcpListener,
    default_quota: TenantQuota,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral test port).
    /// Tenants named in `Hello` requests that don't exist yet are
    /// auto-registered with `default_quota`.
    ///
    /// # Errors
    ///
    /// IO errors from the bind.
    pub fn bind(
        service: ExecService,
        addr: impl ToSocketAddrs,
        default_quota: TenantQuota,
    ) -> io::Result<Server> {
        Ok(Server {
            service,
            listener: TcpListener::bind(addr)?,
            default_quota,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    ///
    /// # Errors
    ///
    /// IO errors from the socket query.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on this thread until the listener fails or
    /// a [`Request::Drain`] shuts the service down (the draining
    /// connection nudges the listener awake so this loop observes it).
    pub fn run(self) {
        for stream in self.listener.incoming() {
            if self.service.draining() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let service = self.service.clone();
            let quota = self.default_quota;
            std::thread::spawn(move || {
                let _ = serve_connection(&service, stream, quota);
            });
        }
    }

    /// Runs the accept loop on a background thread (tests).
    #[must_use]
    pub fn spawn(self) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name("llva-serve:accept".to_string())
            .spawn(move || self.run())
            .expect("spawn accept loop")
    }
}

/// Converts a call result to its wire response.
fn call_response(result: Result<CallResult, ServeError>) -> Response {
    match result {
        Ok(run) => {
            let tier = run.tier.to_string();
            match run.outcome {
                TierOutcome::Value(value) => Response::Value {
                    value,
                    tier,
                    degraded: run.degraded,
                    retries: run.retries,
                },
                TierOutcome::Trap(kind) => Response::Trap {
                    kind: kind.to_string(),
                    tier,
                },
                TierOutcome::OutOfFuel => Response::OutOfFuel { tier },
            }
        }
        Err(e) => Response::Error { message: e.to_string() },
    }
}

fn serve_connection(
    service: &ExecService,
    stream: TcpStream,
    default_quota: TenantQuota,
) -> io::Result<()> {
    // Protocol sniff: HTTP scrapes start with "GET "; the framed
    // protocol's first frame is at most MAX_FRAME long, so its 4th
    // byte (high length byte) is 0x00/0x01 — never ASCII space.
    let mut head = [0u8; 4];
    let peeked = stream.peek(&mut head)?;
    if &head[..peeked] == b"GET "[..peeked].as_ref() && peeked == 4 {
        return serve_http(service, stream);
    }
    serve_framed(service, stream, default_quota)
}

fn serve_http(service: &ExecService, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    // Read the request head (line + headers) up to a sane bound; the
    // body is irrelevant for GET.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") && head.len() < 8192 {
        if reader.read(&mut byte)? == 0 {
            break;
        }
        head.push(byte[0]);
    }
    let request_line = head
        .split(|&b| b == b'\r')
        .next()
        .map(String::from_utf8_lossy)
        .unwrap_or_default()
        .into_owned();
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let mut writer = BufWriter::new(stream);
    if path == "/metrics" || path == "/metrics/" {
        let body = service.metrics_text();
        write!(
            writer,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else {
        let body = "llva-serve: try GET /metrics\n";
        write!(
            writer,
            "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    }
    writer.flush()
}

fn serve_framed(
    service: &ExecService,
    stream: TcpStream,
    default_quota: TenantQuota,
) -> io::Result<()> {
    // This connection's local address IS the listener address (the
    // server side of an accepted stream); a drain uses it to nudge the
    // blocked accept loop awake after the service is down.
    let listener_addr = stream.local_addr();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut tenant: Option<String> = None;
    let mut drained = false;
    while let Some(payload) = read_frame(&mut reader)? {
        let response = match Request::decode(&payload) {
            Err(e) => Response::Error {
                message: format!("bad request: {e}"),
            },
            Ok(Request::Hello { tenant: name }) => {
                match service.add_tenant(&name, default_quota) {
                    Ok(()) | Err(ServeError::TenantExists(_)) => {
                        tenant = Some(name.clone());
                        Response::Text {
                            body: format!("llva-serve ready, tenant {name}"),
                        }
                    }
                    Err(e) => Response::Error { message: e.to_string() },
                }
            }
            Ok(Request::Metrics) => Response::Text {
                body: service.metrics_text(),
            },
            // Admin-scoped like Metrics: no Hello needed. The reply
            // body is the final metrics flush.
            Ok(Request::Drain { deadline_ms }) => {
                let report = service.drain(std::time::Duration::from_millis(deadline_ms));
                drained = true;
                Response::Text {
                    body: report.final_metrics,
                }
            }
            Ok(request) => match &tenant {
                None => Response::Error {
                    message: "bad request: Hello must precede Load/Call".to_string(),
                },
                Some(tenant) => match request {
                    Request::Load { module, source } => {
                        match service.load_module(tenant, &module, &source) {
                            Ok(reply) => Response::Loaded {
                                cache: reply.cache,
                                functions: reply.functions as u64,
                            },
                            Err(e) => Response::Error { message: e.to_string() },
                        }
                    }
                    Request::Call { module, entry, args, fuel } => call_response(
                        service.call_with_fuel(tenant, &module, &entry, &args, fuel),
                    ),
                    Request::Hello { .. } | Request::Metrics | Request::Drain { .. } => {
                        unreachable!("handled above")
                    }
                },
            },
        };
        write_frame(&mut writer, &response.encode())?;
        if drained {
            // Wake the accept loop so it observes the drain and exits.
            if let Ok(addr) = listener_addr {
                let _ = TcpStream::connect(addr);
            }
            break;
        }
    }
    Ok(())
}

/// A minimal blocking client for the framed protocol (tests and the
/// `llva-serve` binary's selfcheck use it; real clients can, too).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects and sends `Hello` for `tenant`.
    ///
    /// # Errors
    ///
    /// IO/protocol errors.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        };
        match client.request(&Request::Hello { tenant: tenant.to_string() })? {
            Response::Text { .. } => Ok(client),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected hello reply: {other:?}"),
            )),
        }
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// IO errors, or `InvalidData` on an undecodable reply.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}
