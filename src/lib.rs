//! # llva — reproduction of "LLVA: A Low-level Virtual Instruction Set
//! Architecture" (MICRO 2003)
//!
//! This facade crate re-exports every subsystem of the workspace:
//!
//! * [`core`] — the V-ISA itself: types, the 28 instructions, builder,
//!   verifier, dominators, textual printer/parser, binary bytecode,
//!   intrinsics (paper §3).
//! * [`opt`] — the optimization framework: pass manager, mem2reg,
//!   constant folding, GVN, LICM, DCE, SimplifyCFG, inlining,
//!   internalize, global DCE, alias analysis (paper §4.2, §5.1).
//! * [`backend`] — the translator: IA-32-like and SPARC-V9-like code
//!   generators (paper §5.2).
//! * [`machine`] — the simulated hardware processors and their memory.
//! * [`engine`] — LLEE: the reference interpreter, JIT-on-demand
//!   execution manager, OS-independent storage API, profiling and the
//!   software trace cache (paper §4.1–§4.2).
//! * [`minic`] — a C-like front end standing in for the paper's
//!   GCC-based one.
//! * [`workloads`] — the 17 Table 2 benchmarks as minic analogs.
//! * [`conform`] — the N-way differential conformance harness:
//!   seeded program generation, the cross-representation /
//!   cross-processor oracle, and failure shrinking.
//!
//! See the repository README for a tour and DESIGN.md / EXPERIMENTS.md
//! for the reproduction methodology and results.
//!
//! ```
//! use llva::engine::llee::{ExecutionManager, TargetIsa};
//!
//! let m = llva::minic::compile(
//!     "int main() { return 6 * 7; }",
//!     "demo",
//!     llva::core::layout::TargetConfig::default(),
//! ).expect("compiles");
//! let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
//! assert_eq!(mgr.run("main", &[]).unwrap().value, 42);
//! ```

pub use llva_backend as backend;
pub use llva_conform as conform;
pub use llva_core as core;
pub use llva_engine as engine;
pub use llva_machine as machine;
pub use llva_minic as minic;
pub use llva_opt as opt;
pub use llva_workloads as workloads;
